//! The AHNTP model: hypergraph construction, embedding pipeline, training
//! objective, and the [`TrustModel`] implementation.

use crate::{AhntpConfig, AhntpVariant};
use ahntp_autograd::Var;
use ahntp_data::{sample_edges, LabeledPair};
use ahntp_eval::{BatchPlan, BatchTrustModel, ResumableModel, TrainProgress, TrustModel};
use ahntp_graph::{motif_pagerank, pagerank, DiGraph, MotifPageRankConfig, PageRankConfig};
use ahntp_hypergraph::{
    attribute_hypergroup, multi_hop_hypergroup_capped, pairwise_hypergroup,
    social_influence_hypergroup, AggregationCache, AggregationOps, Hypergraph,
};
use ahntp_nn::loss::{
    bce_from_similarity, combined_loss, similarity_to_probability, smoothness_penalty,
    supervised_contrastive, ContrastiveBatch, COSINE_CALIBRATION,
};
use ahntp_nn::{
    Adam, AdaptiveHypergraphConv, HypergraphConv, Mlp, Module, Optimizer, Param, Session,
    TrainState, TrustArtifact,
};
use ahntp_stream::{AppliedEvent, HeadPatch, HyperGroup, LiveTrustModel, StreamError, TrustEvent};
use ahntp_tensor::{CsrMatrix, SplitMix64, Tensor};
use std::cell::RefCell;
use std::rc::Rc;

/// Cap on multi-hop hyperedge cardinality (closest-first, see
/// [`multi_hop_hypergroup_capped`]). Keeps attention over incidence pairs
/// linear in the graph size at high hop counts.
const MAX_HOP_EDGE_SIZE: usize = 32;

/// FNV-1a over bytes; `| 1` keeps 0 reserved for "untagged".
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h | 1
}

/// The precomputed scoring head: comprehensive embeddings and both tower
/// outputs under the *current* parameters. Cached between parameter
/// updates so single-pair queries and artifact export don't re-run the
/// full hypergraph forward.
struct HeadCache {
    emb: Tensor,
    trustor: Tensor,
    trustee: Tensor,
}

/// One stack of hypergraph convolutions over a fixed hypergraph — adaptive
/// (Eqs. 14–16) for the full model, plain (Eqs. 10–13) for `AHNTP_noatt`.
enum ConvStack {
    Adaptive(Vec<AdaptiveHypergraphConv>),
    Plain(Vec<HypergraphConv>),
}

impl ConvStack {
    /// Builds the stack over a shared full operator set, so all layers of
    /// the stack reuse one extraction (and mini-batch slices of it).
    fn new(
        name: &str,
        ops: &Rc<AggregationOps>,
        in_dim: usize,
        dims: &[usize],
        adaptive: bool,
        seed: u64,
    ) -> ConvStack {
        let mut prev = in_dim;
        if adaptive {
            let mut layers = Vec::with_capacity(dims.len());
            for (i, &d) in dims.iter().enumerate() {
                layers.push(AdaptiveHypergraphConv::with_ops(
                    &format!("{name}.conv{i}"),
                    Rc::clone(ops),
                    prev,
                    d,
                    seed,
                ));
                prev = d;
            }
            ConvStack::Adaptive(layers)
        } else {
            let mut layers = Vec::with_capacity(dims.len());
            for (i, &d) in dims.iter().enumerate() {
                layers.push(HypergraphConv::with_ops(
                    &format!("{name}.conv{i}"),
                    Rc::clone(ops),
                    prev,
                    d,
                    seed,
                ));
                prev = d;
            }
            ConvStack::Plain(layers)
        }
    }

    /// Forward pass against an explicit operator set — the full extraction
    /// or a sampled hyperedge slice.
    fn forward_on(&self, s: &Session, ops: &AggregationOps, x: &Var) -> Var {
        let mut h = x.clone();
        match self {
            ConvStack::Adaptive(layers) => {
                for l in layers {
                    h = l.forward_on(s, ops, &h);
                }
            }
            ConvStack::Plain(layers) => {
                for l in layers {
                    h = l.forward_on(s, ops, &h);
                }
            }
        }
        h
    }

    fn params(&self) -> Vec<Param> {
        match self {
            ConvStack::Adaptive(layers) => layers.iter().flat_map(Module::params).collect(),
            ConvStack::Plain(layers) => layers.iter().flat_map(Module::params).collect(),
        }
    }

    /// The per-layer hyperedge-weight columns (`m × 1` each). Live
    /// structural mutation resizes these in step with the hypergraph.
    fn edge_weight_params(&self) -> Vec<Param> {
        match self {
            ConvStack::Adaptive(layers) => {
                layers.iter().map(|l| l.edge_weights().clone()).collect()
            }
            ConvStack::Plain(layers) => {
                layers.iter().map(|l| l.edge_weights().clone()).collect()
            }
        }
    }
}

/// The Adaptive Hypergraph Network for Trust Prediction.
///
/// Construction precomputes everything structural — Motif-based PageRank,
/// the four hypergroups, the aggregation operators, and the hypergraph
/// Laplacian — from the *training* graph only (test edges never shape the
/// structure). Training is Adam over the combined objective of Eqs. 20–24,
/// full-batch through [`TrustModel::train_epoch`] or planned mini-batches
/// through [`BatchTrustModel::train_epoch_planned`] (the full-batch path
/// is the identity plan of the mini-batch one, bitwise).
pub struct Ahntp {
    cfg: AhntpConfig,
    features: Tensor,
    node_mlp: Mlp,
    struct_mlp: Mlp,
    node_stack: ConvStack,
    struct_stack: ConvStack,
    tower_a: Mlp,
    tower_b: Mlp,
    /// Cached operators of the node-level hypergroups (Eqs. 6–7).
    node_cache: AggregationCache,
    /// Cached operators of the structure-level hypergroups (Eqs. 8–9).
    struct_cache: AggregationCache,
    /// Cached Laplacian of the concatenated trust hypergraph (Eq. 24).
    smooth_cache: AggregationCache,
    optimizer: Adam,
    influence: Vec<f64>,
    /// Architecture fingerprint: hash of the config and hypergraph shapes,
    /// stamped into checkpoints and serving artifacts.
    fingerprint: u64,
    /// Lazily computed scoring head; invalidated whenever parameters
    /// change through [`Ahntp::train_epoch`] or [`Ahntp::load`].
    head_cache: RefCell<Option<Rc<HeadCache>>>,
    /// Set once a live event adds or removes a hyperedge. Training is
    /// refused afterwards: the Adam moment buffers and the smoothness
    /// cache are bound to the construction-time edge set.
    structure_mutated: bool,
}

impl Ahntp {
    /// Builds the model over the training graph.
    ///
    /// * `features` — the `n × C` user feature matrix `X`,
    /// * `attributes` — observable attribute ids per user (Eq. 7 input),
    /// * `graph` — the social graph visible at training time.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or dimensions disagree.
    pub fn new(
        features: &Tensor,
        attributes: &[Vec<usize>],
        graph: &DiGraph,
        cfg: &AhntpConfig,
    ) -> Ahntp {
        cfg.validate().expect("invalid AhntpConfig");
        assert_eq!(
            features.rows(),
            graph.n(),
            "Ahntp::new: {} feature rows for {} users",
            features.rows(),
            graph.n()
        );
        assert_eq!(
            attributes.len(),
            graph.n(),
            "Ahntp::new: {} attribute lists for {} users",
            attributes.len(),
            graph.n()
        );

        // §IV-B-1: social influence ranking. The nompr ablation swaps
        // Motif-based PageRank for plain PageRank.
        let influence = if cfg.variant == AhntpVariant::NoMpr {
            pagerank(graph, &PageRankConfig::default())
        } else {
            motif_pagerank(
                graph,
                cfg.motif,
                &MotifPageRankConfig {
                    alpha: cfg.alpha,
                    pagerank: PageRankConfig::default(),
                },
            )
        };

        // §IV-B: the two-tier hypergroups.
        let hss = social_influence_hypergroup(graph, &influence, cfg.top_k_influence);
        let attr = attribute_hypergroup(graph.n(), attributes);
        let node_hg = Hypergraph::concat(&[&hss, &attr]);
        let pair = pairwise_hypergroup(graph);
        let hop = multi_hop_hypergroup_capped(graph, cfg.multi_hops, MAX_HOP_EDGE_SIZE);
        let struct_hg = Hypergraph::concat(&[&pair, &hop]);
        let full_hg = Hypergraph::concat(&[&node_hg, &struct_hg]);

        // Architecture fingerprint: everything that determines parameter
        // names and shapes (config widths, variant, input width) plus the
        // hypergraph shapes the convolutions are bound to. Seeds and
        // optimizer settings are deliberately excluded — checkpoints move
        // freely between differently-seeded builds of the same shape.
        let fingerprint = fnv1a(
            format!(
                "ahntp-arch-v1|variant={}|conv={:?}|tower={:?}|k={}|hops={}|motif={:?}|\
                 users={}|feats={}|node_hg={}x{}|struct_hg={}x{}",
                cfg.variant,
                cfg.conv_dims,
                cfg.tower_dims,
                cfg.top_k_influence,
                cfg.multi_hops,
                cfg.motif,
                graph.n(),
                features.cols(),
                node_hg.n_vertices(),
                node_hg.n_edges(),
                struct_hg.n_vertices(),
                struct_hg.n_edges(),
            )
            .bytes(),
        );

        let adaptive = cfg.variant != AhntpVariant::NoAttention;
        let c = features.cols();
        let d0 = cfg.conv_dims[0];
        let node_mlp = Mlp::new("node_mlp", &[c, d0], true, cfg.seed);
        let struct_mlp = Mlp::new("struct_mlp", &[c, d0], true, cfg.seed ^ 0x5f5f);
        let node_cache = AggregationCache::new(node_hg);
        let struct_cache = AggregationCache::new(struct_hg);
        let smooth_cache = AggregationCache::new(full_hg);
        let node_stack = ConvStack::new(
            "node",
            &node_cache.full_ops(),
            d0,
            &cfg.conv_dims,
            adaptive,
            cfg.seed,
        );
        let struct_stack = ConvStack::new(
            "struct",
            &struct_cache.full_ops(),
            d0,
            &cfg.conv_dims,
            adaptive,
            cfg.seed ^ 0xa5a5,
        );

        // Eqs. 17–18: pairwise towers. The final layer is linear (no ReLU)
        // so tower outputs span both signs and the cosine head (Eq. 19)
        // covers the full [-1, 1] range — with a ReLU output every cosine
        // would be non-negative and "distrust" unrepresentable.
        let emb_dim = 2 * *cfg.conv_dims.last().expect("validated non-empty");
        let mut tower_dims = vec![emb_dim];
        tower_dims.extend_from_slice(&cfg.tower_dims);
        let tower_a = Mlp::new("tower_a", &tower_dims, false, cfg.seed ^ 0x1111);
        let tower_b = Mlp::new("tower_b", &tower_dims, false, cfg.seed ^ 0x2222);

        let mut params = Vec::new();
        params.extend(node_mlp.params());
        params.extend(struct_mlp.params());
        params.extend(node_stack.params());
        params.extend(struct_stack.params());
        params.extend(tower_a.params());
        params.extend(tower_b.params());
        let optimizer = Adam::new(params, cfg.adam);

        // Centre the input features column-wise. Raw behavioural features
        // are non-negative; through stacked mean aggregations they collapse
        // into a narrow positive cone where cosine similarity saturates.
        // Centring restores a signed space in which the cosine head can
        // discriminate (a standard preprocessing step; the paper's inputs
        // go through the same normalisation inside PyTorch pipelines).
        let col_means = features.col_sums().scale(1.0 / features.rows() as f32);
        let mut centered = features.clone();
        for r in 0..centered.rows() {
            let row = centered.row_mut(r);
            for (v, &m) in row.iter_mut().zip(col_means.as_slice()) {
                *v -= m;
            }
        }
        Ahntp {
            cfg: cfg.clone(),
            features: centered,
            node_mlp,
            struct_mlp,
            node_stack,
            struct_stack,
            tower_a,
            tower_b,
            node_cache,
            struct_cache,
            smooth_cache,
            optimizer,
            influence,
            fingerprint,
            head_cache: RefCell::new(None),
            structure_mutated: false,
        }
    }

    /// The social-influence scores used to build the influence hypergroup
    /// (Motif-based PageRank, or plain PageRank under `AHNTP_nompr`).
    pub fn influence_scores(&self) -> &[f64] {
        &self.influence
    }

    /// The active configuration.
    pub fn config(&self) -> &AhntpConfig {
        &self.cfg
    }

    /// Forward pass to the comprehensive user embedding (node-level and
    /// structure-level paths concatenated). Runs against the caches'
    /// *current* operators, so live mutations are picked up immediately
    /// (with an unmutated cache this hands back the very operators the
    /// layers were constructed over — bitwise the historical path).
    fn embed(&self, s: &Session) -> Var {
        self.embed_on(
            s,
            &self.node_cache.full_ops(),
            &self.struct_cache.full_ops(),
        )
    }

    /// [`Ahntp::embed`] against explicit operator sets (sampled hyperedge
    /// slices during mini-batch training). With the full sets this is
    /// exactly `embed` — the cache hands back the very same operators.
    fn embed_on(
        &self,
        s: &Session,
        node_ops: &AggregationOps,
        struct_ops: &AggregationOps,
    ) -> Var {
        let x = s.constant(self.features.clone());
        let node = self
            .node_stack
            .forward_on(s, node_ops, &self.node_mlp.forward(s, &x));
        let stru = self
            .struct_stack
            .forward_on(s, struct_ops, &self.struct_mlp.forward(s, &x));
        s.graph().concat_cols(&[&node, &stru])
    }

    /// Cosine similarity per pair (Eq. 19) on a given session.
    fn pair_similarities(&self, s: &Session, pairs: &[LabeledPair]) -> Var {
        let emb = self.embed(s);
        self.similarities_from(s, &emb, pairs)
    }

    /// Pair similarities from an already-built embedding.
    fn similarities_from(&self, s: &Session, emb: &Var, pairs: &[LabeledPair]) -> Var {
        let ta_all = self.tower_a.forward(s, emb);
        let tb_all = self.tower_b.forward(s, emb);
        let trustors = Rc::new(pairs.iter().map(|p| p.trustor).collect::<Vec<_>>());
        let trustees = Rc::new(pairs.iter().map(|p| p.trustee).collect::<Vec<_>>());
        let ta = ta_all.gather_rows(&trustors);
        let tb = tb_all.gather_rows(&trustees);
        ta.pairwise_cosine(&tb)
    }

    /// All trainable parameters in a stable order (for optimizers,
    /// checkpoints, and inspection).
    pub fn parameters(&self) -> Vec<Param> {
        self.optimizer.params().to_vec()
    }

    /// Architecture fingerprint: a hash of the configuration and
    /// hypergraph shapes, written into checkpoint and artifact headers so
    /// wrong-architecture loads fail up front with a clear error.
    pub fn architecture_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Serialises the trained parameters into a checkpoint
    /// (state-dict-style; see `ahntp_nn::save_params_tagged`). The frame
    /// carries this model's [architecture fingerprint](Self::architecture_fingerprint).
    pub fn save(&self) -> Vec<u8> {
        ahntp_nn::save_params_tagged(self.optimizer.params(), self.fingerprint).to_vec()
    }

    /// Loads a checkpoint produced by [`Ahntp::save`] into this model.
    /// The model must have been built with the same architecture (config
    /// and hypergraph shapes).
    ///
    /// # Errors
    ///
    /// Returns [`ahntp_nn::CheckpointError::WrongArchitecture`] when the
    /// checkpoint's fingerprint disagrees with this model's — before any
    /// parameter is touched — and otherwise the usual format, name, or
    /// shape errors.
    pub fn load(&self, checkpoint: &[u8]) -> Result<(), ahntp_nn::CheckpointError> {
        ahntp_nn::load_params_tagged(self.optimizer.params(), checkpoint, self.fingerprint)?;
        self.head_cache.borrow_mut().take();
        Ok(())
    }

    /// The scoring head under the current parameters, computed on first
    /// use and cached until the next parameter update.
    fn head(&self) -> Rc<HeadCache> {
        if let Some(head) = self.head_cache.borrow().as_ref() {
            return Rc::clone(head);
        }
        let s = Session::new();
        let emb = self.embed(&s);
        let trustor = self.tower_a.forward(&s, &emb).value();
        let trustee = self.tower_b.forward(&s, &emb).value();
        let head = Rc::new(HeadCache {
            emb: emb.value(),
            trustor,
            trustee,
        });
        *self.head_cache.borrow_mut() = Some(Rc::clone(&head));
        head
    }

    /// The comprehensive user embedding matrix (`n × 2·conv_dims.last()`),
    /// computed with the current parameters. Exposed for downstream use
    /// (clustering, visualisation, the examples).
    pub fn embeddings(&self) -> Tensor {
        let s = Session::new();
        self.embed(&s).value()
    }

    /// Trust probability for a single user pair.
    ///
    /// Reuses the cached scoring head instead of re-running the full
    /// hypergraph forward per call, so repeated point queries between
    /// parameter updates cost `O(d)` each. The result is identical to the
    /// batched [`Ahntp::predict`] on the same pair (same kernels, same
    /// order of operations).
    ///
    /// # Panics
    ///
    /// Panics if either user id is out of range.
    pub fn predict_pair(&self, trustor: usize, trustee: usize) -> f32 {
        let head = self.head();
        let n = head.trustor.rows();
        assert!(
            trustor < n && trustee < n,
            "predict_pair: pair ({trustor}, {trustee}) out of range for {n} users"
        );
        let cs = head.trustor.cosine_rows(trustor, &head.trustee, trustee);
        let s = Session::new();
        let cs = s.constant(Tensor::vector(vec![cs]));
        similarity_to_probability(&cs).value().as_slice()[0]
    }

    /// Exports the serveable artifact: the comprehensive embedding matrix
    /// plus the pair-scoring head, baked down for the online half of the
    /// stack (`ahntp-serve`). Head rows are L2-normalised so a server
    /// scores a pair with one dot product; see
    /// [`ahntp_nn::artifact::TrustArtifact`] for the `AHNTPSRV1` frame.
    pub fn export_artifact(&self) -> TrustArtifact {
        let head = self.head();
        TrustArtifact {
            model: self.name(),
            fingerprint: self.fingerprint,
            calibration: COSINE_CALIBRATION,
            n_users: head.emb.rows(),
            emb_dim: head.emb.cols(),
            head_dim: head.trustor.cols(),
            embeddings: head.emb.clone().into_vec().into(),
            trustor_head: head.trustor.normalize_rows().into_vec().into(),
            trustee_head: head.trustee.normalize_rows().into_vec().into(),
        }
    }

    /// Hyperedge counts of the two convolution hypergraphs,
    /// `(node_level, structure_level)` — the sampling universes of the
    /// mini-batch path (used by benchmarks to report resident rows).
    pub fn hyperedge_counts(&self) -> (usize, usize) {
        (self.node_cache.n_edges(), self.struct_cache.n_edges())
    }

    /// The combined training objective (Eqs. 20–24) of one micro-batch on
    /// session `s`, against the given (possibly sliced) operators.
    fn batch_loss(
        &self,
        s: &Session,
        pairs: &[LabeledPair],
        node_ops: &AggregationOps,
        struct_ops: &AggregationOps,
        smooth_lap: Option<&Rc<CsrMatrix<f32>>>,
    ) -> Var {
        let emb = self.embed_on(s, node_ops, struct_ops);
        let cs = self.similarities_from(s, &emb, pairs);
        let labels = Tensor::vector(pairs.iter().map(|p| f32::from(p.label)).collect());
        let l2 = bce_from_similarity(s, &cs, &labels);
        let mut loss = if self.cfg.variant == AhntpVariant::NoContrastive {
            l2
        } else {
            // Eq. 20: anchors are trustors; positives are their trusted
            // partners, negatives the sampled non-partners.
            let anchors: Vec<usize> = pairs.iter().map(|p| p.trustor).collect();
            let is_pos: Vec<bool> = pairs.iter().map(|p| p.label).collect();
            let batch = ContrastiveBatch::new(&anchors, &is_pos);
            let l1 = supervised_contrastive(s, &cs, &batch, self.cfg.temperature);
            combined_loss(&l1, &l2, self.cfg.lambda1, self.cfg.lambda2)
        };
        if let Some(lap) = smooth_lap {
            // Eq. 23: label smoothing over the (sampled) trust hypergraph.
            // Applied to the similarity-space embeddings (the
            // classification function f of Eq. 24). A fresh embedding
            // forward keeps the tape identical to the historical
            // full-batch objective.
            let emb = self.embed_on(s, node_ops, struct_ops);
            let f = self.tower_a.forward(s, &emb);
            let reg = smoothness_penalty(s, lap, &f)
                .scale(self.cfg.smoothness_weight / self.features.rows() as f32);
            loss = loss.add(&reg);
        }
        loss
    }

    /// Exact post-stack rows for `users` computed over a closed cone of
    /// the hypergraph instead of the full extraction.
    ///
    /// With `L` convolution layers, the rows that must stay exact after
    /// layer `k` are `closure(users, L-k)`; the cone therefore carries the
    /// vertices of `closure(users, L)` and every hyperedge incident to
    /// `closure(users, L-1)`. Inside that cone each target vertex sees its
    /// complete incident-edge set (attention softmax groups are whole) and
    /// every contributing hyperedge sees all its members, so the selected
    /// rows are bitwise what the full forward produces.
    fn cone_rows(
        &self,
        s: &Session,
        cache: &AggregationCache,
        stack: &ConvStack,
        mlp: &Mlp,
        users: &[usize],
    ) -> Var {
        let hops = self.cfg.conv_dims.len();
        let v_need = cache.closure(users, hops.saturating_sub(1));
        let edge_ids = cache.incident_edges(&v_need);
        let v_comp = cache.closure(users, hops);
        let ops = cache.cone_ops(&edge_ids, &v_comp);
        let idx = Rc::new(v_comp.clone());
        let x = s.constant(self.features.clone()).gather_rows(&idx);
        let h = stack.forward_on(s, &ops, &mlp.forward(s, &x));
        let local: Vec<usize> = users
            .iter()
            .map(|u| {
                v_comp
                    .binary_search(u)
                    .expect("refresh targets are in their own closure")
            })
            .collect();
        h.gather_rows(&Rc::new(local))
    }

    /// Recomputed head rows (embedding + both towers, *unnormalised*) for
    /// `users`, via per-tier cones.
    fn refreshed_head_rows(&self, users: &[usize]) -> (Tensor, Tensor, Tensor) {
        let s = Session::new();
        let node = self.cone_rows(&s, &self.node_cache, &self.node_stack, &self.node_mlp, users);
        let stru = self.cone_rows(
            &s,
            &self.struct_cache,
            &self.struct_stack,
            &self.struct_mlp,
            users,
        );
        let emb = s.graph().concat_cols(&[&node, &stru]);
        let trustor = self.tower_a.forward(&s, &emb).value();
        let trustee = self.tower_b.forward(&s, &emb).value();
        (emb.value(), trustor, trustee)
    }
}

impl LiveTrustModel for Ahntp {
    fn n_users(&self) -> usize {
        self.features.rows()
    }

    /// Folds one live event into the delta-maintained caches.
    ///
    /// Structural events (add/remove) resize the per-layer hyperedge
    /// weight columns in step with the hypergraph — a new edge starts at
    /// the initialisation weight `1.0`, a removed edge's slot is taken by
    /// the renamed last edge, mirroring the swap-remove id rename — and
    /// mark the model as structurally mutated (training is refused
    /// afterwards). Weight-only events (reweight/decay) touch degrees and
    /// Laplacians but no operator, so they leave every head row exact and
    /// report no affected users; they are mirrored into the smoothness
    /// cache so weight-only streams remain trainable.
    ///
    /// Until [`LiveTrustModel::refresh_heads`] runs, the *cached* head
    /// rows of affected users (used by [`Ahntp::predict_pair`] and
    /// [`Ahntp::export_artifact`]) are stale; the batched
    /// [`TrustModel::predict`] recomputes the forward and is always live.
    fn apply_event(&mut self, event: &TrustEvent) -> Result<AppliedEvent, StreamError> {
        let hops = self.cfg.conv_dims.len();
        let affected_users = match event {
            TrustEvent::AddEdge {
                group,
                members,
                weight,
            } => {
                let (cache, stack) = match group {
                    HyperGroup::Node => (&mut self.node_cache, &self.node_stack),
                    HyperGroup::Structure => (&mut self.struct_cache, &self.struct_stack),
                };
                cache.apply_add(members, *weight)?;
                for p in stack.edge_weight_params() {
                    let t = p.value();
                    let rows = t.rows();
                    let mut data = t.into_vec();
                    data.push(1.0);
                    p.set_value(Tensor::matrix(rows + 1, 1, data));
                }
                self.structure_mutated = true;
                let cache = match group {
                    HyperGroup::Node => &self.node_cache,
                    HyperGroup::Structure => &self.struct_cache,
                };
                cache.closure(members, hops)
            }
            TrustEvent::RemoveEdge { group, edge } => {
                let (cache, stack) = match group {
                    HyperGroup::Node => (&mut self.node_cache, &self.node_stack),
                    HyperGroup::Structure => (&mut self.struct_cache, &self.struct_stack),
                };
                let removed = cache.apply_remove(*edge)?;
                for p in stack.edge_weight_params() {
                    let t = p.value();
                    let rows = t.rows();
                    let mut data = t.into_vec();
                    let last = rows - 1;
                    data[*edge] = data[last];
                    data.truncate(last);
                    p.set_value(Tensor::matrix(last, 1, data));
                }
                self.structure_mutated = true;
                // The renamed edge changes its members' incident-edge
                // summation order, so they count as affected alongside the
                // removed edge's members.
                let mut seed = removed.members.clone();
                if let Some(moved) = &removed.moved {
                    seed.extend_from_slice(&moved.members);
                }
                let cache = match group {
                    HyperGroup::Node => &self.node_cache,
                    HyperGroup::Structure => &self.struct_cache,
                };
                cache.closure(&seed, hops)
            }
            TrustEvent::ReweightEdge {
                group,
                edge,
                weight,
            } => {
                let (cache, offset) = match group {
                    HyperGroup::Node => (&mut self.node_cache, 0),
                    HyperGroup::Structure => {
                        let offset = self.node_cache.n_edges();
                        (&mut self.struct_cache, offset)
                    }
                };
                cache.apply_reweight(*edge, *weight)?;
                if !self.structure_mutated {
                    // The smoothness hypergraph is the concatenation of
                    // the two tiers; id alignment holds until a structural
                    // mutation renames edges (after which training — the
                    // only consumer — is refused anyway).
                    self.smooth_cache.apply_reweight(edge + offset, *weight)?;
                }
                Vec::new()
            }
            TrustEvent::Decay { factor } => {
                self.node_cache.apply_decay(*factor)?;
                self.struct_cache.apply_decay(*factor)?;
                self.smooth_cache.apply_decay(*factor)?;
                Vec::new()
            }
        };
        Ok(AppliedEvent { affected_users })
    }

    /// Recomputes the head rows of `users` over closed cones (see
    /// [`Ahntp::cone_rows`]) and patches the model's own cached head in
    /// place, so `predict_pair`/`export_artifact` and the returned patch
    /// agree. Rows in the patch are L2-normalised exactly as artifact
    /// export normalises them.
    fn refresh_heads(&self, users: &[usize]) -> HeadPatch {
        let emb_dim = 2 * *self.cfg.conv_dims.last().expect("validated non-empty");
        let head_dim = *self.cfg.tower_dims.last().expect("validated non-empty");
        if users.is_empty() {
            return HeadPatch::empty(emb_dim, head_dim);
        }
        let (emb_rows, trustor_rows, trustee_rows) = self.refreshed_head_rows(users);
        let warm = self.head_cache.borrow().clone();
        if let Some(head) = warm {
            let mut emb = head.emb.clone();
            let mut trustor = head.trustor.clone();
            let mut trustee = head.trustee.clone();
            for (k, &u) in users.iter().enumerate() {
                emb.row_mut(u).copy_from_slice(emb_rows.row(k));
                trustor.row_mut(u).copy_from_slice(trustor_rows.row(k));
                trustee.row_mut(u).copy_from_slice(trustee_rows.row(k));
            }
            *self.head_cache.borrow_mut() = Some(Rc::new(HeadCache {
                emb,
                trustor,
                trustee,
            }));
        }
        HeadPatch {
            users: users.to_vec(),
            emb_dim,
            head_dim,
            emb_rows: emb_rows.into_vec(),
            trustor_rows: trustor_rows.normalize_rows().into_vec(),
            trustee_rows: trustee_rows.normalize_rows().into_vec(),
        }
    }

    fn export_artifact(&self) -> TrustArtifact {
        Ahntp::export_artifact(self)
    }

    /// From-scratch oracle: fresh operator extractions over the *current*
    /// (mutated) hypergraphs, bypassing every cache — what a cold rebuild
    /// of the serving artifact would produce.
    fn rebuild_artifact(&self) -> TrustArtifact {
        let s = Session::new();
        let node_ops = AggregationOps::full(self.node_cache.hypergraph());
        let struct_ops = AggregationOps::full(self.struct_cache.hypergraph());
        let emb = self.embed_on(&s, &node_ops, &struct_ops);
        let trustor = self.tower_a.forward(&s, &emb).value();
        let trustee = self.tower_b.forward(&s, &emb).value();
        let emb = emb.value();
        TrustArtifact {
            model: self.name(),
            fingerprint: self.fingerprint,
            calibration: COSINE_CALIBRATION,
            n_users: emb.rows(),
            emb_dim: emb.cols(),
            head_dim: trustor.cols(),
            embeddings: emb.clone().into_vec().into(),
            trustor_head: trustor.normalize_rows().into_vec().into(),
            trustee_head: trustee.normalize_rows().into_vec().into(),
        }
    }
}

impl TrustModel for Ahntp {
    fn name(&self) -> String {
        self.cfg.variant.to_string()
    }

    fn train_epoch(&mut self, pairs: &[LabeledPair]) -> f32 {
        assert!(!pairs.is_empty(), "train_epoch: no pairs");
        // The full-batch epoch *is* the identity plan: every hyperedge,
        // one in-order batch, one optimizer step. The caches recognise the
        // identity selection and hand back the full operators, so this
        // path is bitwise what a dedicated full-batch implementation was.
        self.train_epoch_planned(&BatchPlan::full(pairs))
    }

    fn predict(&self, pairs: &[LabeledPair]) -> Vec<f32> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let s = Session::new();
        let cs = self.pair_similarities(&s, pairs);
        similarity_to_probability(&cs).value().into_vec()
    }

    fn n_parameters(&self) -> usize {
        self.optimizer.params().iter().map(Param::numel).sum()
    }
}

impl ResumableModel for Ahntp {
    /// Captures the full training state — parameters, Adam moments and
    /// step clock, the sampler seed, and the loop ledger — as a CRC-sealed
    /// `AHNTP002` frame (see [`ahntp_nn::TrainState`]).
    fn encode_train_state(&self, progress: &TrainProgress) -> Vec<u8> {
        TrainState::capture(
            &self.optimizer,
            self.fingerprint,
            self.cfg.seed,
            progress.epochs_done as u32,
            progress.best_loss,
            progress.stale as u32,
            &progress.epoch_losses,
        )
        .encode()
        .to_vec()
    }

    /// Restores an `AHNTP002` frame into this model: the architecture
    /// fingerprint and the sampler seed must both match — resuming with
    /// either changed would silently produce a different trajectory than
    /// the uninterrupted run the checkpoint belongs to.
    fn decode_train_state(&mut self, bytes: &[u8]) -> Result<TrainProgress, String> {
        let state = TrainState::decode(bytes).map_err(|e| e.to_string())?;
        if state.rng_state != self.cfg.seed {
            return Err(format!(
                "checkpoint was written with sampler seed {} but this model is \
                 configured with {}; resuming would change the mini-batch \
                 trajectory",
                state.rng_state, self.cfg.seed
            ));
        }
        state
            .apply(&mut self.optimizer, self.fingerprint)
            .map_err(|e| e.to_string())?;
        // Parameters changed under the cached scoring head.
        self.head_cache.borrow_mut().take();
        Ok(TrainProgress {
            epochs_done: state.epochs_done as usize,
            best_loss: state.best_loss,
            stale: state.stale as usize,
            epoch_losses: state.epoch_losses,
        })
    }
}

impl BatchTrustModel for Ahntp {
    /// One planned epoch: sample hyperedges once (per hypergraph, seeded
    /// from the plan), slice the cached operators, then run the plan's
    /// micro-batches with gradient accumulation — `plan.accumulation`
    /// batches per optimizer step, each batch's gradient weighted by its
    /// share of the step's pairs.
    ///
    /// The identity plan (ratio `1.0`, one batch, accumulation `1`) takes
    /// the exact full-batch path: the caches return the full operators,
    /// the loss is backpropagated unscaled, and
    /// [`Session::harvest_accumulate`] after `zero_grad` is
    /// `Session::harvest` — bitwise identical to historical full-batch
    /// training at any thread count.
    fn train_epoch_planned(&mut self, plan: &BatchPlan) -> f32 {
        assert!(plan.n_pairs() > 0, "train_epoch_planned: no pairs");
        assert!(
            !self.structure_mutated,
            "train_epoch: the hypergraph structure was mutated by live \
             events; the Adam moment buffers and the smoothness cache are \
             bound to the construction-time edge set — rebuild the model \
             to continue training"
        );
        // Per-epoch hyperedge sample, one per hypergraph so node-level and
        // structure-level draws are independent. Ratio 1.0 never touches
        // the RNG and yields the identity selection.
        let node_ids = sample_edges(
            self.node_cache.n_edges(),
            plan.edge_ratio,
            SplitMix64::derive(plan.seed, "minibatch.node"),
            plan.epoch,
        );
        let struct_ids = sample_edges(
            self.struct_cache.n_edges(),
            plan.edge_ratio,
            SplitMix64::derive(plan.seed, "minibatch.struct"),
            plan.epoch,
        );
        ahntp_telemetry::counter_add(
            "batch.sampled_edges",
            (node_ids.len() + struct_ids.len()) as u64,
        );
        let node_ops = self.node_cache.slice_ops(&node_ids);
        let struct_ops = self.struct_cache.slice_ops(&struct_ids);
        let smooth_lap = if self.cfg.smoothness_weight > 0.0 {
            // The smoothness hypergraph is the concatenation of the two,
            // so the sampled sub-hypergraph keeps exactly the sampled
            // hyperedges: node ids verbatim, structure ids offset past the
            // node-level block. Both halves are sorted, so the identity
            // sample concatenates to the identity selection.
            let m_node = self.node_cache.n_edges();
            let full_ids: Vec<usize> = node_ids
                .iter()
                .copied()
                .chain(struct_ids.iter().map(|&e| e + m_node))
                .collect();
            Some(self.smooth_cache.slice_laplacian(&full_ids))
        } else {
            None
        };

        let mut batch_losses: Vec<(usize, f32)> = Vec::with_capacity(plan.n_batches());
        for group in plan.batches.chunks(plan.accumulation.max(1)) {
            self.optimizer.zero_grad();
            let group_pairs: usize = group.iter().map(Vec::len).sum();
            for batch in group {
                let s = Session::new();
                let loss =
                    self.batch_loss(&s, batch, &node_ops, &struct_ops, smooth_lap.as_ref());
                let loss_value = loss.value().as_slice()[0];
                // A lone batch backpropagates the loss itself (its weight
                // is exactly 1.0), keeping the tape identical to the
                // full-batch path; accumulated batches are weighted by
                // their share of the step's pairs so the summed gradient
                // is the gradient of the group's pair-weighted mean loss.
                let objective = if group.len() == 1 {
                    loss
                } else {
                    loss.scale(batch.len() as f32 / group_pairs as f32)
                };
                objective.backward();
                s.harvest_accumulate();
                ahntp_telemetry::counter_add("batch.micro_batches.run", 1);
                batch_losses.push((batch.len(), loss_value));
            }
            self.optimizer.step();
            ahntp_telemetry::counter_add("batch.optimizer_steps", 1);
        }
        // Parameters moved: the cached scoring head is stale.
        self.head_cache.borrow_mut().take();
        // Epoch loss: the batch loss itself for a single batch (bitwise
        // the full-batch loss), else the pair-weighted mean.
        if batch_losses.len() == 1 {
            batch_losses[0].1
        } else {
            let total: usize = batch_losses.iter().map(|&(n, _)| n).sum();
            batch_losses
                .iter()
                .map(|&(n, l)| l * (n as f32 / total as f32))
                .sum()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahntp_data::{DatasetConfig, TrustDataset};
    use ahntp_eval::{train_and_evaluate, TrainConfig};

    fn tiny_setup() -> (TrustDataset, ahntp_data::Split) {
        let ds = TrustDataset::generate(&DatasetConfig::ciao_like(80, 5));
        let split = ds.split(0.8, 0.2, 2, 42);
        (ds, split)
    }

    fn tiny_config() -> AhntpConfig {
        AhntpConfig {
            conv_dims: vec![16, 8],
            tower_dims: vec![8],
            ..AhntpConfig::default()
        }
    }

    #[test]
    fn model_builds_and_reports_parameters() {
        let (ds, split) = tiny_setup();
        let model = Ahntp::new(&ds.features, &ds.attributes, &split.train_graph, &tiny_config());
        assert!(model.n_parameters() > 500);
        assert_eq!(model.name(), "AHNTP");
        assert_eq!(model.influence_scores().len(), 80);
    }

    #[test]
    fn predictions_are_probabilities() {
        let (ds, split) = tiny_setup();
        let model = Ahntp::new(&ds.features, &ds.attributes, &split.train_graph, &tiny_config());
        let scores = model.predict(&split.test);
        assert_eq!(scores.len(), split.test.len());
        assert!(scores.iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert!(model.predict(&[]).is_empty());
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let (ds, split) = tiny_setup();
        let mut model =
            Ahntp::new(&ds.features, &ds.attributes, &split.train_graph, &tiny_config());
        let first = model.train_epoch(&split.train);
        let mut last = first;
        for _ in 0..8 {
            last = model.train_epoch(&split.train);
        }
        assert!(last < first, "loss should fall: first {first}, last {last}");
        assert!(last.is_finite());
    }

    #[test]
    fn training_beats_chance_on_tiny_data() {
        let (ds, split) = tiny_setup();
        let mut model =
            Ahntp::new(&ds.features, &ds.attributes, &split.train_graph, &tiny_config());
        let report = train_and_evaluate(
            &mut model,
            &split.train,
            &split.test,
            &TrainConfig {
                epochs: 40,
                ..TrainConfig::default()
            },
        );
        // 1/3 positives, 2/3 negatives → majority-class accuracy is 2/3.
        // Even the tiny model must rank better than random.
        assert!(
            report.test.auc > 0.6,
            "AUC {:.3} should beat chance",
            report.test.auc
        );
    }

    #[test]
    fn ablation_variants_train() {
        let (ds, split) = tiny_setup();
        for cfg in [
            tiny_config().no_mpr(),
            tiny_config().no_attention(),
            tiny_config().no_contrastive(),
        ] {
            let mut model = Ahntp::new(&ds.features, &ds.attributes, &split.train_graph, &cfg);
            let loss = model.train_epoch(&split.train);
            assert!(loss.is_finite(), "{} diverged", model.name());
            assert_eq!(model.name(), cfg.variant.to_string());
        }
    }

    #[test]
    fn embeddings_have_expected_shape() {
        let (ds, split) = tiny_setup();
        let model =
            Ahntp::new(&ds.features, &ds.attributes, &split.train_graph, &tiny_config());
        let emb = model.embeddings();
        assert_eq!(emb.rows(), 80);
        assert_eq!(emb.cols(), 16); // 2 × last conv dim (8)
        assert!(emb.all_finite());
    }

    #[test]
    fn predict_pair_is_symmetric_api() {
        let (ds, split) = tiny_setup();
        let model =
            Ahntp::new(&ds.features, &ds.attributes, &split.train_graph, &tiny_config());
        let p = model.predict_pair(0, 1);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn predict_pair_matches_batched_predict() {
        let (ds, split) = tiny_setup();
        let mut model =
            Ahntp::new(&ds.features, &ds.attributes, &split.train_graph, &tiny_config());
        model.train_epoch(&split.train);
        let pairs: Vec<LabeledPair> = split.test.iter().take(12).copied().collect();
        let batched = model.predict(&pairs);
        for (pair, &expected) in pairs.iter().zip(&batched) {
            let single = model.predict_pair(pair.trustor, pair.trustee);
            assert_eq!(
                single, expected,
                "predict_pair({}, {}) disagrees with batched predict",
                pair.trustor, pair.trustee
            );
        }
    }

    #[test]
    fn predict_pair_cache_invalidates_on_training() {
        let (ds, split) = tiny_setup();
        let mut model =
            Ahntp::new(&ds.features, &ds.attributes, &split.train_graph, &tiny_config());
        let before = model.predict_pair(0, 1);
        for _ in 0..3 {
            model.train_epoch(&split.train);
        }
        let after = model.predict_pair(0, 1);
        assert_ne!(before, after, "training must refresh the cached head");
        // And the refreshed cache still agrees with the batched path.
        let pair = LabeledPair { trustor: 0, trustee: 1, label: false };
        assert_eq!(after, model.predict(&[pair])[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn predict_pair_rejects_out_of_range_users() {
        let (ds, split) = tiny_setup();
        let model =
            Ahntp::new(&ds.features, &ds.attributes, &split.train_graph, &tiny_config());
        model.predict_pair(0, 10_000);
    }

    #[test]
    fn exported_artifact_matches_predict_within_tolerance() {
        let (ds, split) = tiny_setup();
        let mut model =
            Ahntp::new(&ds.features, &ds.attributes, &split.train_graph, &tiny_config());
        for _ in 0..2 {
            model.train_epoch(&split.train);
        }
        let artifact = model.export_artifact();
        artifact.validate().expect("exported artifact is consistent");
        assert_eq!(artifact.n_users, 80);
        assert_eq!(artifact.emb_dim, 16);
        assert_eq!(artifact.fingerprint, model.architecture_fingerprint());
        // Round-trips through the AHNTPSRV1 frame.
        let decoded = ahntp_nn::TrustArtifact::decode(&artifact.encode()).unwrap();
        assert_eq!(decoded, artifact);
        // Scoring from the frozen head reproduces the model's predictions.
        let d = artifact.head_dim;
        for pair in split.test.iter().take(10) {
            let (u, v) = (pair.trustor, pair.trustee);
            let dot: f32 = artifact.trustor_head[u * d..(u + 1) * d]
                .iter()
                .zip(&artifact.trustee_head[v * d..(v + 1) * d])
                .map(|(a, b)| a * b)
                .sum();
            let score = 1.0 / (1.0 + (-dot / artifact.calibration).exp());
            let expected = model.predict_pair(u, v);
            assert!(
                (score - expected).abs() < 1e-6,
                "artifact score {score} vs model {expected} for ({u}, {v})"
            );
        }
    }

    #[test]
    fn exact_plan_epoch_is_bitwise_full_batch() {
        let (ds, split) = tiny_setup();
        let mut full =
            Ahntp::new(&ds.features, &ds.attributes, &split.train_graph, &tiny_config());
        let mut mini =
            Ahntp::new(&ds.features, &ds.attributes, &split.train_graph, &tiny_config());
        use ahntp_data::MiniBatchConfig;
        for epoch in 0..3 {
            let l_full = full.train_epoch(&split.train);
            let plan =
                BatchPlan::for_epoch(&split.train, &MiniBatchConfig::exact(7), epoch);
            let l_mini = mini.train_epoch_planned(&plan);
            assert_eq!(
                l_full.to_bits(),
                l_mini.to_bits(),
                "epoch {epoch}: exact plan must reproduce full-batch loss bitwise"
            );
        }
        let pf = full.predict(&split.test);
        let pm = mini.predict(&split.test);
        assert_eq!(pf, pm, "parameters must end up identical");
    }

    #[test]
    fn sampled_plan_trains_and_covers_all_pairs() {
        let (ds, split) = tiny_setup();
        let mut model =
            Ahntp::new(&ds.features, &ds.attributes, &split.train_graph, &tiny_config());
        use ahntp_data::MiniBatchConfig;
        let cfg = MiniBatchConfig::sampled(0.5, 16, 2, 11);
        let mut last = f32::INFINITY;
        for epoch in 0..4 {
            let plan = BatchPlan::for_epoch(&split.train, &cfg, epoch);
            assert!(plan.n_batches() > 1, "tiny split still multi-batch");
            last = model.train_epoch_planned(&plan);
            assert!(last.is_finite(), "sampled epoch {epoch} diverged");
        }
        // Deterministic: a twin model on the same plans lands on the same
        // parameters.
        let mut twin =
            Ahntp::new(&ds.features, &ds.attributes, &split.train_graph, &tiny_config());
        let mut twin_last = f32::NAN;
        for epoch in 0..4 {
            let plan = BatchPlan::for_epoch(&split.train, &cfg, epoch);
            twin_last = twin.train_epoch_planned(&plan);
        }
        assert_eq!(last.to_bits(), twin_last.to_bits());
        assert_eq!(model.predict(&split.test), twin.predict(&split.test));
    }

    #[test]
    #[should_panic(expected = "feature rows")]
    fn mismatched_features_rejected() {
        let (ds, split) = tiny_setup();
        let bad = Tensor::zeros(10, ds.features.cols());
        Ahntp::new(&bad, &ds.attributes, &split.train_graph, &tiny_config());
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;
    use ahntp_data::{DatasetConfig, TrustDataset};

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let ds = TrustDataset::generate(&DatasetConfig::ciao_like(80, 5));
        let split = ds.split(0.8, 0.2, 2, 42);
        let cfg = AhntpConfig {
            conv_dims: vec![16, 8],
            tower_dims: vec![8],
            ..AhntpConfig::default()
        };
        let mut trained = Ahntp::new(&ds.features, &ds.attributes, &split.train_graph, &cfg);
        for _ in 0..3 {
            trained.train_epoch(&split.train);
        }
        let blob = trained.save();
        // A fresh model with a different seed predicts differently…
        let mut fresh_cfg = cfg.clone();
        fresh_cfg.seed ^= 0xffff;
        let fresh = Ahntp::new(&ds.features, &ds.attributes, &split.train_graph, &fresh_cfg);
        assert_ne!(fresh.predict(&split.test), trained.predict(&split.test));
        // …until the checkpoint is loaded.
        fresh.load(&blob).expect("same architecture");
        assert_eq!(fresh.predict(&split.test), trained.predict(&split.test));
        assert!(!trained.parameters().is_empty());
    }

    #[test]
    fn train_state_roundtrip_restores_trajectory_and_gates_the_seed() {
        let ds = TrustDataset::generate(&DatasetConfig::ciao_like(80, 5));
        let split = ds.split(0.8, 0.2, 2, 42);
        let cfg = AhntpConfig {
            conv_dims: vec![16, 8],
            tower_dims: vec![8],
            ..AhntpConfig::default()
        };
        let mut a = Ahntp::new(&ds.features, &ds.attributes, &split.train_graph, &cfg);
        let mut b = Ahntp::new(&ds.features, &ds.attributes, &split.train_graph, &cfg);
        let mut losses = Vec::new();
        for _ in 0..2 {
            losses.push(a.train_epoch(&split.train));
            b.train_epoch(&split.train);
        }
        // Checkpoint `a` after epoch 2, restore into an *untrained* twin,
        // run one more epoch on both: bitwise-identical losses and
        // predictions (Adam moments travelled with the state).
        let progress = TrainProgress {
            epochs_done: 2,
            best_loss: losses[1],
            stale: 0,
            epoch_losses: losses.clone(),
        };
        let blob = a.encode_train_state(&progress);
        let mut fresh = Ahntp::new(&ds.features, &ds.attributes, &split.train_graph, &cfg);
        let restored = fresh.decode_train_state(&blob).expect("same config");
        assert_eq!(restored, progress);
        let la = a.train_epoch(&split.train);
        let lb = b.train_epoch(&split.train);
        let lf = fresh.train_epoch(&split.train);
        assert_eq!(la.to_bits(), lb.to_bits(), "twin runs agree");
        assert_eq!(
            la.to_bits(),
            lf.to_bits(),
            "resumed epoch must be bitwise identical"
        );
        assert_eq!(a.predict(&split.test), fresh.predict(&split.test));

        // A different sampler seed refuses the state.
        let mut other_cfg = cfg.clone();
        other_cfg.seed ^= 0x77;
        let mut other =
            Ahntp::new(&ds.features, &ds.attributes, &split.train_graph, &other_cfg);
        let err = other.decode_train_state(&blob).unwrap_err();
        assert!(err.contains("seed"), "{err}");

        // Corruption is caught by the CRC seal.
        let mut bad = blob.clone();
        bad[20] ^= 0x10;
        let mut victim = Ahntp::new(&ds.features, &ds.attributes, &split.train_graph, &cfg);
        let err = victim.decode_train_state(&bad).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
    }

    #[test]
    fn load_rejects_different_architecture() {
        let ds = TrustDataset::generate(&DatasetConfig::ciao_like(80, 5));
        let split = ds.split(0.8, 0.2, 2, 42);
        let small = Ahntp::new(
            &ds.features,
            &ds.attributes,
            &split.train_graph,
            &AhntpConfig {
                conv_dims: vec![16, 8],
                tower_dims: vec![8],
                ..AhntpConfig::default()
            },
        );
        let wide = Ahntp::new(
            &ds.features,
            &ds.attributes,
            &split.train_graph,
            &AhntpConfig {
                conv_dims: vec![32, 8],
                tower_dims: vec![8],
                ..AhntpConfig::default()
            },
        );
        assert_ne!(
            small.architecture_fingerprint(),
            wide.architecture_fingerprint()
        );
        match wide.load(&small.save()) {
            Err(ahntp_nn::CheckpointError::WrongArchitecture { expected, found }) => {
                assert_eq!(expected, wide.architecture_fingerprint());
                assert_eq!(found, small.architecture_fingerprint());
            }
            other => panic!("expected WrongArchitecture, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod live_tests {
    use super::*;
    use ahntp_data::{DatasetConfig, TrustDataset};

    fn trained_model() -> Ahntp {
        let ds = TrustDataset::generate(&DatasetConfig::ciao_like(80, 5));
        let split = ds.split(0.8, 0.2, 2, 42);
        let cfg = AhntpConfig {
            conv_dims: vec![16, 8],
            tower_dims: vec![8],
            ..AhntpConfig::default()
        };
        let mut model = Ahntp::new(&ds.features, &ds.attributes, &split.train_graph, &cfg);
        for _ in 0..2 {
            model.train_epoch(&split.train);
        }
        model
    }

    /// Folds `patch` into the flat head matrices of `artifact`.
    fn apply_patch(artifact: &mut TrustArtifact, patch: &HeadPatch) {
        patch.check().expect("well-formed patch");
        for (k, &u) in patch.users.iter().enumerate() {
            let (ed, hd) = (patch.emb_dim, patch.head_dim);
            artifact.embeddings.to_mut()[u * ed..(u + 1) * ed]
                .copy_from_slice(&patch.emb_rows[k * ed..(k + 1) * ed]);
            artifact.trustor_head.to_mut()[u * hd..(u + 1) * hd]
                .copy_from_slice(&patch.trustor_rows[k * hd..(k + 1) * hd]);
            artifact.trustee_head.to_mut()[u * hd..(u + 1) * hd]
                .copy_from_slice(&patch.trustee_rows[k * hd..(k + 1) * hd]);
        }
    }

    fn assert_artifacts_close(live: &TrustArtifact, oracle: &TrustArtifact, what: &str) {
        for (name, a, b) in [
            ("embeddings", &live.embeddings, &oracle.embeddings),
            ("trustor_head", &live.trustor_head, &oracle.trustor_head),
            ("trustee_head", &live.trustee_head, &oracle.trustee_head),
        ] {
            assert_eq!(a.len(), b.len(), "{what}: {name} length");
            for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                assert!(
                    (x - y).abs() <= 1e-6,
                    "{what}: {name}[{i}] live {x} vs rebuilt {y}"
                );
            }
        }
    }

    #[test]
    fn live_mutations_patch_to_the_rebuilt_artifact() {
        let mut model = trained_model();
        let mut artifact = Ahntp::export_artifact(&model);
        let events = [
            TrustEvent::AddEdge {
                group: HyperGroup::Node,
                members: vec![3, 9, 21],
                weight: 1.4,
            },
            TrustEvent::RemoveEdge {
                group: HyperGroup::Structure,
                edge: 0,
            },
            TrustEvent::ReweightEdge {
                group: HyperGroup::Node,
                edge: 2,
                weight: 0.6,
            },
            TrustEvent::AddEdge {
                group: HyperGroup::Structure,
                members: vec![0, 44],
                weight: 0.8,
            },
            TrustEvent::Decay { factor: 0.93 },
            TrustEvent::RemoveEdge {
                group: HyperGroup::Node,
                edge: 5,
            },
        ];
        for (i, event) in events.iter().enumerate() {
            let applied = model.apply_event(event).expect("valid event");
            let patch = model.refresh_heads(&applied.affected_users);
            apply_patch(&mut artifact, &patch);
            let oracle = model.rebuild_artifact();
            assert_artifacts_close(&artifact, &oracle, &format!("event {i} ({})", event.op()));
            // The in-place patched head cache agrees with the oracle too.
            assert_artifacts_close(
                &Ahntp::export_artifact(&model),
                &oracle,
                &format!("export after event {i}"),
            );
        }
    }

    #[test]
    fn weight_only_events_affect_no_heads_and_keep_training_alive() {
        let mut model = trained_model();
        let before = Ahntp::export_artifact(&model);
        for event in [
            TrustEvent::ReweightEdge {
                group: HyperGroup::Structure,
                edge: 1,
                weight: 2.5,
            },
            TrustEvent::Decay { factor: 0.9 },
        ] {
            let applied = model.apply_event(&event).expect("valid event");
            assert!(applied.affected_users.is_empty(), "{}", event.op());
        }
        // Heads are untouched bitwise.
        let after = Ahntp::export_artifact(&model);
        assert_eq!(before.trustor_head, after.trustor_head);
        assert_eq!(before.trustee_head, after.trustee_head);
        // Weight-only streams keep the model trainable (the smoothness
        // cache was mirrored).
        let ds = TrustDataset::generate(&DatasetConfig::ciao_like(80, 5));
        let split = ds.split(0.8, 0.2, 2, 42);
        let loss = model.train_epoch(&split.train);
        assert!(loss.is_finite());
    }

    #[test]
    fn invalid_events_leave_the_model_untouched() {
        let mut model = trained_model();
        let before = Ahntp::export_artifact(&model);
        let (m_node, m_struct) = model.hyperedge_counts();
        for event in [
            TrustEvent::RemoveEdge {
                group: HyperGroup::Node,
                edge: m_node + 7,
            },
            TrustEvent::ReweightEdge {
                group: HyperGroup::Structure,
                edge: m_struct,
                weight: 1.0,
            },
            TrustEvent::AddEdge {
                group: HyperGroup::Node,
                members: vec![0, 1],
                weight: f32::NAN,
            },
            TrustEvent::Decay { factor: -1.0 },
        ] {
            let err = model.apply_event(&event).unwrap_err();
            assert!(matches!(err, StreamError::Hypergraph(_)), "{err}");
        }
        assert_eq!(model.hyperedge_counts(), (m_node, m_struct));
        let after = model.rebuild_artifact();
        assert_eq!(before.trustor_head, after.trustor_head);
        // Failed events never forbid training.
        let ds = TrustDataset::generate(&DatasetConfig::ciao_like(80, 5));
        let split = ds.split(0.8, 0.2, 2, 42);
        assert!(model.train_epoch(&split.train).is_finite());
    }

    #[test]
    #[should_panic(expected = "structure was mutated")]
    fn training_after_structural_mutation_is_refused() {
        let ds = TrustDataset::generate(&DatasetConfig::ciao_like(80, 5));
        let split = ds.split(0.8, 0.2, 2, 42);
        let cfg = AhntpConfig {
            conv_dims: vec![16, 8],
            tower_dims: vec![8],
            ..AhntpConfig::default()
        };
        let mut model = Ahntp::new(&ds.features, &ds.attributes, &split.train_graph, &cfg);
        model
            .apply_event(&TrustEvent::AddEdge {
                group: HyperGroup::Node,
                members: vec![1, 2],
                weight: 1.0,
            })
            .expect("valid event");
        model.train_epoch(&split.train);
    }
}
