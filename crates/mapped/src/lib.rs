//! Read-only memory-mapped byte buffers with aligned typed views.
//!
//! Every other crate in this workspace carries `#![forbid(unsafe_code)]`;
//! this crate is the single, deliberately tiny exception. It owns the two
//! pieces of `unsafe` the zero-copy artifact path needs:
//!
//! 1. **`mmap`**: [`MappedBytes::open`] maps a file read-only through the
//!    raw `mmap(2)`/`munmap(2)` FFI (no `libc` crate in this offline
//!    build). The mapping is `PROT_READ` + `MAP_PRIVATE`, so the bytes can
//!    never be written through it and page-ins are lazy — a shard
//!    (re)start touches only the pages it actually reads.
//! 2. **typed views**: [`MappedBytes::f32s`] reinterprets an aligned byte
//!    range as `&[f32]` without copying. The view is only handed out when
//!    the range is in bounds, 4-byte aligned, and the target is
//!    little-endian (the on-disk format); otherwise callers get `None`
//!    and fall back to a parsing decode.
//!
//! When `mmap` is unavailable (or the platform is not unix), `open` falls
//! back to reading the file into an owned buffer that is 8-byte aligned
//! by construction (`Vec<u64>` backing), so `f32s` views work identically
//! — the only difference is the copy.
//!
//! # Safety argument
//!
//! * The mapping is read-only and private; no alias can mutate it through
//!   this type. The file *could* be truncated by another process while
//!   mapped (SIGBUS on access); this workspace only maps artifacts it
//!   writes once and renames into place, matching the checkpoint
//!   discipline.
//! * `f32` has no invalid bit patterns, so reinterpreting any aligned,
//!   in-bounds byte range as `&[f32]` is defined behavior.
//! * The pointer/length pair is owned by `MappedBytes` and unmapped
//!   exactly once on `Drop`; `Send + Sync` are sound because the memory
//!   is immutable for the lifetime of the value.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub fn map_failed(p: *mut c_void) -> bool {
        p as isize == -1
    }
}

/// How the bytes are held.
#[derive(Debug)]
enum Repr {
    /// A live `mmap(2)` mapping, unmapped on drop.
    #[cfg(unix)]
    Mmap { ptr: *const u8, len: usize },
    /// An owned buffer, 8-byte aligned by its `Vec<u64>` backing. `len`
    /// is the byte length (the last backing word may be partial).
    Owned { buf: Vec<u64>, len: usize },
}

/// An immutable byte buffer that is either a read-only file mapping or an
/// owned aligned copy, with zero-copy `&[f32]` views into it.
#[derive(Debug)]
pub struct MappedBytes {
    repr: Repr,
}

// SAFETY: the bytes are immutable for the lifetime of the value — the
// mapping is PROT_READ and the owned buffer is never exposed mutably —
// so sharing references across threads cannot race.
#[allow(unsafe_code)]
unsafe impl Send for MappedBytes {}
#[allow(unsafe_code)]
unsafe impl Sync for MappedBytes {}

impl MappedBytes {
    /// Maps `path` read-only. On unix this is a true `mmap` (lazy paging,
    /// no allocation proportional to the file); elsewhere, or if the map
    /// call fails, it falls back to [`MappedBytes::read_aligned`].
    ///
    /// # Errors
    ///
    /// Propagates file-open/metadata/read errors.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<MappedBytes> {
        let path = path.as_ref();
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let file = File::open(path)?;
            let len = file.metadata()?.len();
            if len > usize::MAX as u64 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "file too large to map",
                ));
            }
            let len = len as usize;
            if len == 0 {
                return Ok(MappedBytes { repr: Repr::Owned { buf: Vec::new(), len: 0 } });
            }
            // SAFETY: fd is a valid open file for the duration of the
            // call; mmap either returns MAP_FAILED or a mapping of
            // exactly `len` bytes that we own until munmap in Drop.
            #[allow(unsafe_code)]
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if !sys::map_failed(ptr) {
                return Ok(MappedBytes { repr: Repr::Mmap { ptr: ptr as *const u8, len } });
            }
            // Fall through to the copying path (e.g. exotic filesystems).
        }
        MappedBytes::read_aligned(path)
    }

    /// Reads `path` into an owned, 8-byte-aligned buffer. Same views as a
    /// mapping, paid for with one copy; the portable fallback.
    ///
    /// # Errors
    ///
    /// Propagates file read errors.
    pub fn read_aligned<P: AsRef<Path>>(path: P) -> io::Result<MappedBytes> {
        let mut file = File::open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        Ok(MappedBytes::from_bytes(&bytes))
    }

    /// Copies `bytes` into an owned, 8-byte-aligned buffer (tests and
    /// in-memory round-trips).
    pub fn from_bytes(bytes: &[u8]) -> MappedBytes {
        let words = bytes.len().div_ceil(8);
        let mut buf: Vec<u64> = vec![0; words];
        // SAFETY: u64 → u8 reinterpretation of an owned buffer; the byte
        // view covers exactly the allocation we just made.
        #[allow(unsafe_code)]
        let dst =
            unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, words * 8) };
        dst[..bytes.len()].copy_from_slice(bytes);
        MappedBytes { repr: Repr::Owned { buf, len: bytes.len() } }
    }

    /// Byte length of the buffer.
    pub fn len(&self) -> usize {
        match &self.repr {
            #[cfg(unix)]
            Repr::Mmap { len, .. } => *len,
            Repr::Owned { len, .. } => *len,
        }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the bytes are a live file mapping (as opposed to an owned
    /// in-memory copy).
    pub fn is_mapped(&self) -> bool {
        match &self.repr {
            #[cfg(unix)]
            Repr::Mmap { .. } => true,
            Repr::Owned { .. } => false,
        }
    }

    /// The full byte view.
    pub fn bytes(&self) -> &[u8] {
        match &self.repr {
            #[cfg(unix)]
            Repr::Mmap { ptr, len } => {
                // SAFETY: the mapping is `len` bytes, valid until Drop,
                // and immutable (PROT_READ).
                #[allow(unsafe_code)]
                unsafe {
                    std::slice::from_raw_parts(*ptr, *len)
                }
            }
            Repr::Owned { buf, len } => {
                if *len == 0 {
                    return &[];
                }
                // SAFETY: u64 → u8 view of the owned allocation; `len` ≤
                // `buf.len() * 8` by construction.
                #[allow(unsafe_code)]
                unsafe {
                    std::slice::from_raw_parts(buf.as_ptr() as *const u8, *len)
                }
            }
        }
    }

    /// A zero-copy `&[f32]` view of `n` floats starting at `byte_off`.
    ///
    /// Returns `None` when the range is out of bounds, the absolute
    /// address is not 4-byte aligned, or the target is big-endian (the
    /// on-disk floats are little-endian; big-endian callers must fall
    /// back to a parsing decode).
    pub fn f32s(&self, byte_off: usize, n: usize) -> Option<&[f32]> {
        if cfg!(target_endian = "big") {
            return None;
        }
        let bytes = self.bytes();
        let end = byte_off.checked_add(n.checked_mul(4)?)?;
        if end > bytes.len() {
            return None;
        }
        if n == 0 {
            return Some(&[]);
        }
        let ptr = bytes[byte_off..].as_ptr();
        if (ptr as usize) % std::mem::align_of::<f32>() != 0 {
            return None;
        }
        // SAFETY: in bounds, aligned, immutable for the buffer's
        // lifetime, and every bit pattern is a valid f32.
        #[allow(unsafe_code)]
        Some(unsafe { std::slice::from_raw_parts(ptr as *const f32, n) })
    }
}

impl std::ops::Deref for MappedBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

impl Drop for MappedBytes {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Repr::Mmap { ptr, len } = self.repr {
            // SAFETY: this pointer/length pair came from a successful
            // mmap in `open` and is unmapped exactly once, here.
            #[allow(unsafe_code)]
            unsafe {
                let _ = sys::munmap(ptr as *mut std::ffi::c_void, len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "ahntp-mapped-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        p
    }

    #[test]
    fn from_bytes_round_trips_and_is_aligned() {
        let data: Vec<u8> = (0..37).collect();
        let m = MappedBytes::from_bytes(&data);
        assert_eq!(&*m, &data[..]);
        assert_eq!(m.len(), 37);
        assert!(!m.is_mapped());
        assert_eq!(m.bytes().as_ptr() as usize % 8, 0);
    }

    #[test]
    fn open_maps_a_file_and_reads_it_back() {
        let path = tmp_path("open");
        let data: Vec<u8> = (0..=255).cycle().take(5000).collect();
        std::fs::write(&path, &data).unwrap();
        let m = MappedBytes::open(&path).unwrap();
        assert_eq!(&*m, &data[..]);
        #[cfg(unix)]
        assert!(m.is_mapped(), "unix open should produce a real mapping");
        drop(m);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_files_map_to_empty_buffers() {
        let path = tmp_path("empty");
        std::fs::write(&path, b"").unwrap();
        let m = MappedBytes::open(&path).unwrap();
        assert!(m.is_empty());
        assert_eq!(&*m, b"");
        assert_eq!(m.f32s(0, 0), Some(&[][..]));
        assert_eq!(m.f32s(0, 1), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_files_are_io_errors() {
        assert!(MappedBytes::open(tmp_path("definitely-not-created")).is_err());
    }

    #[test]
    fn f32_views_see_the_same_bits_as_a_parse() {
        let values = [1.0f32, -2.5, 0.0, f32::MIN_POSITIVE, 1e30];
        let mut bytes = vec![0u8; 4]; // 4-byte prefix keeps the view aligned
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let m = MappedBytes::from_bytes(&bytes);
        let view = m.f32s(4, values.len()).expect("aligned in-bounds view");
        for (a, b) in view.iter().zip(values.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn misaligned_or_out_of_bounds_views_are_refused() {
        let m = MappedBytes::from_bytes(&[0u8; 64]);
        assert!(m.f32s(1, 2).is_none(), "misaligned offset");
        assert!(m.f32s(2, 2).is_none(), "misaligned offset");
        assert!(m.f32s(0, 17).is_none(), "past the end");
        assert!(m.f32s(64, 1).is_none(), "starts at the end");
        assert!(m.f32s(usize::MAX, 1).is_none(), "offset overflow");
        assert!(m.f32s(0, usize::MAX).is_none(), "length overflow");
        assert!(m.f32s(0, 16).is_some(), "the full buffer is viewable");
        assert!(m.f32s(60, 1).is_some(), "the last word is viewable");
    }

    #[test]
    fn views_work_across_threads() {
        let m = std::sync::Arc::new(MappedBytes::from_bytes(&1.5f32.to_le_bytes()));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || m.f32s(0, 1).unwrap()[0].to_bits())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 1.5f32.to_bits());
        }
    }
}
