//! Scatter-gather serving over range-sharded shard servers.
//!
//! A *shard* is an ordinary [`crate::serve`] server started with
//! [`crate::ServeConfig::shard_range`] set: it maps the **full** artifact
//! (so `/score` answers any pair) but its `/topk` scans only the owned
//! contiguous trustee range, always with the exact scalar arithmetic. The
//! *front tier* started by [`serve_sharded`] discovers the shards through
//! their `/healthz` (fingerprints must agree, ranges must partition
//! `[0, n)`), then serves the same HTTP surface as a single node:
//!
//! * `POST /score` — pairs are validated against the cluster id space
//!   (same typed errors as a single node), grouped by the shard owning
//!   each trustee, scored in parallel, and reassembled in request order.
//! * `GET /topk` — fanned out to every shard; the per-shard heaps merge
//!   under the documented **(score desc, user id asc)** total order and
//!   truncate to `k`. Shard scans return global user ids and run the
//!   exact scalar kernel, and JSON numbers round-trip bit-exactly, so
//!   the merged body is **byte-identical** to the single-node exact
//!   backend's response — the invariant `tests/shard_exactness.rs`
//!   sweeps.
//! * `POST /admin/swap` — serialized through a front-level lock and
//!   forwarded to every shard; each shard builds the new snapshot before
//!   taking its write lock ([`crate::SharedIndex::swap`]), so reads never
//!   drop during a swap and a mismatched fingerprint is refused with
//!   `409` cluster-wide.
//! * `POST /events` — broadcast to every shard (each holds the full
//!   artifact, so live patches must land everywhere); the highest-status
//!   reply wins, surfacing any shard's failure.
//! * `GET /healthz` — aggregates shard health (`"ok"` / `"degraded"`),
//!   `GET /metrics` serves the front's registry and
//!   `GET /metrics/shards` fans out to the shards' registries.
//!
//! # Fault model
//!
//! Any shard unreachable (or the `shard.rpc` failpoint armed) makes
//! fan-out reads answer `503` + `Retry-After` *deterministically* — a
//! partial top-k merge would be silently wrong, so the front never
//! serves one. `tests/shard_chaos.rs` drives these paths.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ahntp_telemetry::json::{parse, Json};
use ahntp_telemetry::{
    counter_add, debug, histogram_record, info, metrics_prometheus_text, metrics_snapshot_json,
    warn,
};

use crate::http::{read_request, write_response, write_response_with, HttpError, Request};
use crate::index::ScoreError;
use crate::server::{parse_pairs, Response, ServeConfig};

/// One discovered shard: where it listens and which trustee ids it owns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardInfo {
    /// The shard server's address.
    pub addr: SocketAddr,
    /// First owned trustee id (inclusive).
    pub lo: usize,
    /// One past the last owned trustee id.
    pub hi: usize,
}

/// Splits `[0, n_users)` into `n_shards` contiguous, near-even ranges
/// (the first `n_users % n_shards` shards take one extra id). Use these
/// as the [`ServeConfig::shard_range`] of each shard server.
///
/// # Panics
///
/// Panics when `n_shards` is zero or exceeds `n_users` (an empty shard
/// range is invalid).
pub fn shard_ranges(n_users: usize, n_shards: usize) -> Vec<(usize, usize)> {
    assert!(n_shards > 0, "need at least one shard");
    assert!(
        n_shards <= n_users,
        "{n_shards} shards over {n_users} users would leave a shard empty"
    );
    let base = n_users / n_shards;
    let extra = n_users % n_shards;
    let mut ranges = Vec::with_capacity(n_shards);
    let mut lo = 0;
    for s in 0..n_shards {
        let hi = lo + base + usize::from(s < extra);
        ranges.push((lo, hi));
        lo = hi;
    }
    ranges
}

/// What the front learned from the shards at startup, shared (read-only
/// except the swap lock) by every front worker.
struct Front {
    shards: Vec<ShardInfo>,
    n_users: usize,
    model: String,
    fingerprint: String,
    backend: String,
    live: bool,
    rpc_timeout: Duration,
    retry_after: Duration,
    /// Serializes `/admin/swap` broadcasts: one cluster-wide swap at a
    /// time, so two concurrent swaps cannot interleave across shards.
    swap_lock: Mutex<()>,
}

impl Front {
    /// Which shard owns trustee id `v`. Ranges partition `[0, n_users)`
    /// (validated at startup), so this always resolves for valid ids.
    fn owner(&self, v: usize) -> usize {
        self.shards
            .iter()
            .position(|s| s.lo <= v && v < s.hi)
            .expect("ranges partition the id space")
    }
}

/// One blocking HTTP exchange with a shard. `Connection: close` per call:
/// correctness first — connection pooling is a measured optimization the
/// bench harness can motivate later.
///
/// # Errors
///
/// Socket-level failures (connect/read/write, including the `shard.rpc`
/// failpoint) — the caller maps these to a deterministic `503`.
fn rpc(addr: SocketAddr, request: &[u8], timeout: Duration) -> io::Result<(u16, String)> {
    ahntp_faultz::failpoint!("shard.rpc");
    counter_add("front.rpc.calls", 1);
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    writer.write_all(request)?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad status line {status_line:?}"))
        })?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof inside shard headers"));
        }
        if line.trim_end().is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v
                .trim()
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "shard body not UTF-8"))?;
    Ok((status, body))
}

fn get_request(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").into_bytes()
}

fn post_request(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Queries every shard in parallel; index `i` of the result pairs with
/// `front.shards[i]`.
fn fan_out(front: &Front, request: &[u8]) -> Vec<io::Result<(u16, String)>> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = front
            .shards
            .iter()
            .map(|shard| {
                let request = &request;
                scope.spawn(move || rpc(shard.addr, request, front.rpc_timeout))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rpc thread panicked")).collect()
    })
}

/// The deterministic degraded answer when any shard is unreachable:
/// `503` + `Retry-After`, naming the shard. Partial fan-out results are
/// never served.
fn shard_unavailable(front: &Front, shard: &ShardInfo, e: &io::Error) -> Response {
    counter_add("front.shard_unavailable", 1);
    warn!("front", "shard {} unreachable: {e}", shard.addr);
    Response::error(
        503,
        "Service Unavailable",
        &format!("shard {} (users [{}, {})) unavailable", shard.addr, shard.lo, shard.hi),
    )
    .retry_after(front.retry_after)
}

/// `POST /score` on the front: validate ids against the cluster id space
/// (byte-identical typed errors to a single node), group by the trustee's
/// owning shard, score in parallel, reassemble in request order.
fn front_score(req: &Request, front: &Front) -> Response {
    let pairs = match parse_pairs(&req.body) {
        Ok(p) => p,
        Err(m) => return Response::error(400, "Bad Request", &m),
    };
    // Mirror TrustIndex::score_pairs' validation order (trustor then
    // trustee, first offender wins) so error bodies match bitwise.
    for &(u, v) in &pairs {
        for user in [u, v] {
            if user >= front.n_users {
                let e = ScoreError::UserOutOfRange { user, n_users: front.n_users };
                return Response::error(400, "Bad Request", &e.to_string());
            }
        }
    }
    // Group pair positions by owning shard; relative order within a
    // group preserves request order, so reassembly is a scatter write.
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); front.shards.len()];
    for (i, &(_, v)) in pairs.iter().enumerate() {
        groups[front.owner(v)].push(i);
    }
    let replies = std::thread::scope(|scope| {
        let handles: Vec<_> = front
            .shards
            .iter()
            .zip(&groups)
            .map(|(shard, group)| {
                let pairs = &pairs;
                scope.spawn(move || {
                    if group.is_empty() {
                        return Ok(None);
                    }
                    let body = Json::obj([(
                        "pairs",
                        Json::Arr(
                            group
                                .iter()
                                .map(|&i| {
                                    Json::Arr(vec![pairs[i].0.into(), pairs[i].1.into()])
                                })
                                .collect(),
                        ),
                    )])
                    .to_line();
                    rpc(shard.addr, &post_request("/score", &body), front.rpc_timeout)
                        .map(Some)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rpc thread panicked"))
            .collect::<Vec<_>>()
    });
    let mut scores: Vec<Option<Json>> = vec![None; pairs.len()];
    for ((shard, group), reply) in front.shards.iter().zip(&groups).zip(replies) {
        let Some((status, body)) = (match reply {
            Ok(r) => r,
            Err(e) => return shard_unavailable(front, shard, &e),
        }) else {
            continue;
        };
        if status != 200 {
            // A shard-side refusal (shed, deadline, injected fault):
            // propagate the first one rather than serving partial scores.
            counter_add("front.shard_errors", 1);
            return passthrough(status, &body, front);
        }
        let doc = match parse(&body) {
            Ok(d) => d,
            Err(e) => return bad_gateway(shard, &format!("unparseable /score body: {e}")),
        };
        let Some(Json::Arr(got)) = doc.get("scores") else {
            return bad_gateway(shard, "no scores in /score body");
        };
        if got.len() != group.len() {
            return bad_gateway(shard, "shard returned a different number of scores");
        }
        for (&i, s) in group.iter().zip(got) {
            scores[i] = Some(s.clone());
        }
    }
    let scores: Vec<Json> = scores
        .into_iter()
        .map(|s| s.expect("every pair was grouped to exactly one shard"))
        .collect();
    Response::new(
        200,
        "OK",
        Json::obj([
            ("scores", Json::Arr(scores)),
            ("backend", front.backend.as_str().into()),
        ]),
    )
}

/// `GET /topk` on the front: fan out to every shard, merge the per-shard
/// candidate heaps under (score desc, user id asc), truncate to `k`.
fn front_topk(req: &Request, front: &Front) -> Response {
    let user = match req.query_usize("user") {
        Ok(u) => u,
        Err(m) => return Response::error(400, "Bad Request", &m),
    };
    let k = match req.query.get("k") {
        Some(_) => match req.query_usize("k") {
            Ok(k) => k,
            Err(m) => return Response::error(400, "Bad Request", &m),
        },
        None => 10,
    };
    let path = match req.query.get("k") {
        Some(_) => format!("/topk?user={user}&k={k}"),
        None => format!("/topk?user={user}"),
    };
    let replies = fan_out(front, &get_request(&path));
    // (score f64, user id, the score's parsed Json for re-rendering).
    // f32→f64 is exact and the JSON renderer prints shortest-roundtrip
    // doubles, so sorting the parsed doubles and re-rendering them
    // reproduces the single-node body bytes.
    let mut merged: Vec<(f64, usize, Json)> = Vec::new();
    for (shard, reply) in front.shards.iter().zip(replies) {
        let (status, body) = match reply {
            Ok(r) => r,
            Err(e) => return shard_unavailable(front, shard, &e),
        };
        if status != 200 {
            counter_add("front.shard_errors", 1);
            return passthrough(status, &body, front);
        }
        let doc = match parse(&body) {
            Ok(d) => d,
            Err(e) => return bad_gateway(shard, &format!("unparseable /topk body: {e}")),
        };
        let Some(Json::Arr(trustees)) = doc.get("trustees") else {
            return bad_gateway(shard, "no trustees in /topk body");
        };
        for t in trustees {
            let (Some(v), Some(s)) = (
                t.get("user").and_then(Json::as_f64),
                t.get("score").and_then(Json::as_f64),
            ) else {
                return bad_gateway(shard, "malformed trustee entry");
            };
            let score = t.get("score").cloned().unwrap_or(Json::Null);
            merged.push((s, v as usize, score));
        }
    }
    // The documented tie-break across shard boundaries: score
    // descending, then user id ascending. Shard ids are global, so no
    // per-shard offset arithmetic happens here (or anywhere).
    merged.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    merged.truncate(k);
    Response::new(
        200,
        "OK",
        Json::obj([
            ("user", user.into()),
            (
                "trustees",
                Json::Arr(
                    merged
                        .into_iter()
                        .map(|(_, v, score)| {
                            Json::obj([("user", v.into()), ("score", score)])
                        })
                        .collect(),
                ),
            ),
            ("backend", front.backend.as_str().into()),
        ]),
    )
}

/// `POST /admin/swap` on the front: serialized broadcast; every shard
/// must accept. A refusal or failure surfaces with that shard named —
/// shards already swapped stay swapped (snapshots are compatible by
/// construction; the refusing shard is the operator's signal).
fn front_swap(req: &Request, front: &Front) -> Response {
    let _one_at_a_time = front.swap_lock.lock().expect("swap lock poisoned");
    let body = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "Bad Request", "body is not UTF-8"),
    };
    let request = post_request("/admin/swap", body);
    let mut results = Vec::with_capacity(front.shards.len());
    for shard in &front.shards {
        let (status, reply) = match rpc(shard.addr, &request, front.rpc_timeout) {
            Ok(r) => r,
            Err(e) => return shard_unavailable(front, shard, &e),
        };
        if status != 200 {
            counter_add("front.swap.refused", 1);
            let error = parse(&reply)
                .ok()
                .and_then(|d| d.get("error").and_then(Json::as_str).map(str::to_string))
                .unwrap_or(reply);
            let (_, reason) = reason_for(status);
            return Response::new(
                status,
                reason,
                Json::obj([
                    ("error", error.into()),
                    ("shard", shard.addr.to_string().into()),
                ]),
            );
        }
        results.push(parse(&reply).unwrap_or(Json::Null));
    }
    counter_add("front.swap.ok", 1);
    info!("front", "snapshot swapped across {} shards", front.shards.len());
    Response::new(
        200,
        "OK",
        Json::obj([("swapped", true.into()), ("shards", Json::Arr(results))]),
    )
}

/// `POST /events` on the front: broadcast (every shard holds the full
/// artifact, so live patches must land on all of them); the
/// highest-status reply is returned so any shard's failure surfaces.
fn front_events(req: &Request, front: &Front) -> Response {
    let body = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "Bad Request", "body is not UTF-8"),
    };
    let replies = fan_out(front, &post_request("/events", body));
    let mut worst: Option<(u16, String)> = None;
    for (shard, reply) in front.shards.iter().zip(replies) {
        let (status, body) = match reply {
            Ok(r) => r,
            Err(e) => return shard_unavailable(front, shard, &e),
        };
        if worst.as_ref().map_or(true, |(w, _)| status > *w) {
            worst = Some((status, body));
        }
    }
    let (status, body) = worst.expect("at least one shard");
    passthrough(status, &body, front)
}

/// `GET /healthz` on the front: aggregate shard health. Always `200` —
/// the front itself is alive — with `"status": "degraded"` when any
/// shard is down.
fn front_healthz(front: &Front) -> Response {
    let replies = fan_out(front, &get_request("/healthz"));
    let mut all_ok = true;
    let shards: Vec<Json> = front
        .shards
        .iter()
        .zip(replies)
        .map(|(shard, reply)| {
            let status = match reply {
                Ok((200, _)) => "ok",
                Ok(_) => {
                    all_ok = false;
                    "unhealthy"
                }
                Err(_) => {
                    all_ok = false;
                    "down"
                }
            };
            Json::obj([
                ("addr", shard.addr.to_string().into()),
                ("lo", shard.lo.into()),
                ("hi", shard.hi.into()),
                ("status", status.into()),
            ])
        })
        .collect();
    Response::new(
        200,
        "OK",
        Json::obj([
            ("status", if all_ok { "ok" } else { "degraded" }.into()),
            ("model", front.model.as_str().into()),
            ("n_users", front.n_users.into()),
            ("fingerprint", front.fingerprint.as_str().into()),
            ("live", front.live.into()),
            ("backend", front.backend.as_str().into()),
            ("sharded", true.into()),
            ("shards", Json::Arr(shards)),
        ]),
    )
}

/// `GET /metrics/shards`: every shard's metrics registry, labeled.
fn front_shard_metrics(front: &Front) -> Response {
    let replies = fan_out(front, &get_request("/metrics"));
    let shards: Vec<Json> = front
        .shards
        .iter()
        .zip(replies)
        .map(|(shard, reply)| {
            let metrics = match reply {
                Ok((200, body)) => parse(&body).unwrap_or(Json::Null),
                _ => Json::Null,
            };
            Json::obj([
                ("addr", shard.addr.to_string().into()),
                ("metrics", metrics),
            ])
        })
        .collect();
    Response::new(200, "OK", Json::obj([("shards", Json::Arr(shards))]))
}

/// Maps a status code to its canonical reason phrase for passthrough.
fn reason_for(status: u16) -> (u16, &'static str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Upstream Status",
    };
    (status, reason)
}

/// Forwards a shard reply as the front's own response, re-rendering the
/// parsed JSON (bit-exact for numeric payloads).
fn passthrough(status: u16, body: &str, front: &Front) -> Response {
    let (status, reason) = reason_for(status);
    let doc = parse(body).unwrap_or_else(|_| Json::obj([("error", body.into())]));
    let resp = Response::new(status, reason, doc);
    if status == 503 || status == 504 {
        resp.retry_after(front.retry_after)
    } else {
        resp
    }
}

/// A shard reply the front cannot make sense of: `502`, naming the shard.
fn bad_gateway(shard: &ShardInfo, message: &str) -> Response {
    counter_add("front.shard_errors", 1);
    Response::error(
        502,
        "Bad Gateway",
        &format!("shard {}: {message}", shard.addr),
    )
}

fn front_route(req: &Request, front: &Front) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/score") => front_score(req, front),
        ("GET", "/topk") => front_topk(req, front),
        ("POST", "/admin/swap") => front_swap(req, front),
        ("POST", "/events") => front_events(req, front),
        ("GET", "/healthz") => front_healthz(front),
        ("GET", "/metrics") => match req.query.get("format").map(String::as_str) {
            Some("prometheus") => {
                Response::text("text/plain; version=0.0.4", metrics_prometheus_text())
            }
            Some(other) => Response::error(
                400,
                "Bad Request",
                &format!("unknown metrics format {other:?} (try \"prometheus\")"),
            ),
            None => Response::new(200, "OK", metrics_snapshot_json()),
        },
        ("GET", "/metrics/prometheus") => {
            Response::text("text/plain; version=0.0.4", metrics_prometheus_text())
        }
        ("GET", "/metrics/shards") => front_shard_metrics(front),
        (_, "/score") | (_, "/topk") | (_, "/admin/swap") | (_, "/events") | (_, "/healthz")
        | (_, "/metrics") | (_, "/metrics/prometheus") | (_, "/metrics/shards") => {
            Response::error(405, "Method Not Allowed", "method not allowed")
        }
        _ => Response::error(404, "Not Found", "no such endpoint"),
    }
}

/// Handle to a running scatter-gather front. Dropping it shuts the front
/// down (the shard servers it talks to are owned by their own
/// [`crate::ServerHandle`]s and are not touched).
pub struct ShardedHandle {
    addr: SocketAddr,
    shards: Vec<ShardInfo>,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ShardedHandle {
    /// The front tier's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The discovered shard layout, sorted by range.
    pub fn shards(&self) -> &[ShardInfo] {
        &self.shards
    }

    /// Graceful shutdown: stops accepting, finishes in-flight requests,
    /// joins every thread. Shard servers keep running.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        info!("front", "front on {} stopped", self.addr);
    }
}

impl Drop for ShardedHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Discovers one shard through its `/healthz`.
fn discover(addr: SocketAddr, timeout: Duration) -> io::Result<(ShardInfo, Json)> {
    let (status, body) = rpc(addr, &get_request("/healthz"), timeout)?;
    if status != 200 {
        return Err(io::Error::other(format!("shard {addr} /healthz answered {status}")));
    }
    let doc = parse(&body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("shard {addr}: {e}")))?;
    let n_users = doc.get("n_users").and_then(Json::as_f64).unwrap_or(0.0) as usize;
    // A shard without an explicit range owns the whole id space (a
    // one-shard cluster over a plain server works).
    let lo = doc.get("shard_lo").and_then(Json::as_f64).unwrap_or(0.0) as usize;
    let hi = doc.get("shard_hi").and_then(Json::as_f64).unwrap_or(n_users as f64) as usize;
    Ok((ShardInfo { addr, lo, hi }, doc))
}

/// Starts the scatter-gather front tier over already-running shard
/// servers (see the module docs for the serving surface).
///
/// Discovery runs once at startup: every shard's `/healthz` must answer,
/// all fingerprints / models / backends / `n_users` must agree, and the
/// advertised ranges must partition `[0, n_users)` exactly — a cluster
/// whose shards could disagree on a single byte of a response is refused
/// before it serves anything.
///
/// Front-specific [`ServeConfig`] knobs: `addr`, `workers`,
/// `read_timeout`, `retry_after`, and `deadline` (the per-RPC timeout to
/// a shard). Batcher knobs are unused — the front does not score.
///
/// # Errors
///
/// Binding failures, unreachable shards, and layout validation failures.
pub fn serve_sharded(shards: &[SocketAddr], config: &ServeConfig) -> io::Result<ShardedHandle> {
    if shards.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "no shards given"));
    }
    let rpc_timeout = config.deadline;
    let mut infos: Vec<(ShardInfo, Json)> = Vec::with_capacity(shards.len());
    for &addr in shards {
        infos.push(discover(addr, rpc_timeout)?);
    }
    // Cluster-wide invariants: identical snapshot everywhere.
    let field = |doc: &Json, name: &str| -> String {
        doc.get(name).and_then(Json::as_str).unwrap_or("").to_string()
    };
    let first = &infos[0].1;
    let (model, fingerprint, backend) =
        (field(first, "model"), field(first, "fingerprint"), field(first, "backend"));
    let n_users = first.get("n_users").and_then(Json::as_f64).unwrap_or(0.0) as usize;
    let live = first.get("live") == Some(&Json::Bool(true));
    for (info, doc) in &infos {
        for (name, want) in
            [("model", &model), ("fingerprint", &fingerprint), ("backend", &backend)]
        {
            let got = field(doc, name);
            if &got != want {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("shard {} {name} {got:?} != {want:?}", info.addr),
                ));
            }
        }
        let got = doc.get("n_users").and_then(Json::as_f64).unwrap_or(0.0) as usize;
        if got != n_users {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("shard {} holds {got} users, expected {n_users}", info.addr),
            ));
        }
    }
    // Ranges must partition [0, n_users) with no gap or overlap.
    let mut layout: Vec<ShardInfo> = infos.into_iter().map(|(i, _)| i).collect();
    layout.sort_by_key(|s| s.lo);
    let mut expect = 0usize;
    for shard in &layout {
        if shard.lo != expect || shard.hi <= shard.lo {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "shard ranges do not partition [0, {n_users}): shard {} owns [{}, {})\
                     but [{expect}, ..) is next",
                    shard.addr, shard.lo, shard.hi
                ),
            ));
        }
        expect = shard.hi;
    }
    if expect != n_users {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("shard ranges cover [0, {expect}) but the index holds {n_users} users"),
        ));
    }

    let front = Arc::new(Front {
        shards: layout,
        n_users,
        model,
        fingerprint,
        backend,
        live,
        rpc_timeout,
        retry_after: config.retry_after,
        swap_lock: Mutex::new(()),
    });

    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let (conn_tx, conn_rx) = std::sync::mpsc::channel::<TcpStream>();
    let conn_rx = Arc::new(Mutex::new(conn_rx));

    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    if conn_tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) => {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    warn!("front", "accept failed: {e}");
                }
            }
        })
    };

    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|_| {
            let conn_rx = Arc::clone(&conn_rx);
            let front = Arc::clone(&front);
            let shutdown = Arc::clone(&shutdown);
            let read_timeout = config.read_timeout;
            std::thread::spawn(move || loop {
                let stream = match conn_rx.lock().unwrap().recv() {
                    Ok(s) => s,
                    Err(_) => return,
                };
                if let Err(e) = front_connection(stream, &front, &shutdown, read_timeout) {
                    warn!("front", "connection dropped: {e}");
                }
            })
        })
        .collect();

    info!(
        "front",
        "scatter-gather front on {addr} over {} shards ({} users, {} backend)",
        front.shards.len(),
        front.n_users,
        front.backend
    );
    Ok(ShardedHandle {
        addr,
        shards: front.shards.clone(),
        shutdown,
        acceptor: Some(acceptor),
        workers,
    })
}

/// The front's keep-alive connection loop — the same shape as the shard
/// servers' ([`crate::server`]) minus the trace ring and batch queue.
fn front_connection(
    stream: TcpStream,
    front: &Front,
    shutdown: &AtomicBool,
    read_timeout: Duration,
) -> io::Result<()> {
    stream.set_read_timeout(Some(read_timeout))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(Some(req)) => {
                let started = Instant::now();
                counter_add("front.http.requests", 1);
                let trace_id = ahntp_telemetry::next_trace_id();
                let resp = {
                    let _scope = ahntp_telemetry::set_trace_id_scope(trace_id);
                    front_route(&req, front)
                };
                if resp.status >= 400 {
                    counter_add("front.http.errors", 1);
                }
                let mut headers: Vec<(&str, String)> = vec![
                    ("X-Ahntp-Trace-Id", format!("{trace_id:016x}")),
                    ("X-Ahntp-Backend", front.backend.clone()),
                ];
                if let Some(secs) = resp.retry_after {
                    headers.push(("Retry-After", secs.to_string()));
                }
                let keep_alive = !req.wants_close() && !shutdown.load(Ordering::SeqCst);
                let (content_type, body) = match resp.text {
                    Some((ct, text)) => (ct, text.into_bytes()),
                    None => ("application/json", resp.body.to_line().into_bytes()),
                };
                write_response_with(
                    &mut writer,
                    resp.status,
                    resp.reason,
                    content_type,
                    &headers,
                    &body,
                    keep_alive,
                )?;
                let us = started.elapsed().as_micros() as u64;
                histogram_record("front.request.us", us);
                debug!(
                    "front.access",
                    "{} {} {} {us}us trace={trace_id:016x}",
                    req.method,
                    req.path,
                    resp.status
                );
                if !keep_alive {
                    return Ok(());
                }
            }
            Ok(None) => return Ok(()),
            Err(HttpError::Io(e))
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(HttpError::Io(e)) => return Err(e),
            Err(HttpError::BadRequest(m)) => {
                counter_add("front.http.errors", 1);
                let body = Json::obj([("error", Json::from(m.as_str()))]).to_line();
                write_response(&mut writer, 400, "Bad Request", "application/json",
                    body.as_bytes(), false)?;
                return Ok(());
            }
            Err(HttpError::TooLarge) => {
                counter_add("front.http.errors", 1);
                let body = Json::obj([("error", Json::from("body too large"))]).to_line();
                write_response(&mut writer, 413, "Payload Too Large", "application/json",
                    body.as_bytes(), false)?;
                return Ok(());
            }
        }
        writer.flush()?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_partition_evenly() {
        assert_eq!(shard_ranges(10, 1), vec![(0, 10)]);
        assert_eq!(shard_ranges(10, 2), vec![(0, 5), (5, 10)]);
        // 10 = 4 + 3 + 3: the remainder lands on the first shards.
        assert_eq!(shard_ranges(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(
            shard_ranges(7, 7),
            (0..7).map(|i| (i, i + 1)).collect::<Vec<_>>()
        );
        // Every split partitions exactly.
        for n in [1usize, 5, 24, 1000] {
            for s in 1..=n.min(9) {
                let ranges = shard_ranges(n, s);
                assert_eq!(ranges.len(), s);
                assert_eq!(ranges[0].0, 0);
                assert_eq!(ranges[s - 1].1, n);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "contiguous");
                }
                let sizes: Vec<usize> = ranges.iter().map(|(lo, hi)| hi - lo).collect();
                let (min, max) =
                    (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "near-even: {sizes:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "leave a shard empty")]
    fn more_shards_than_users_is_refused() {
        let _ = shard_ranges(3, 4);
    }

    #[test]
    fn reason_phrases_cover_passthrough_statuses() {
        for status in [200, 400, 409, 422, 500, 501, 503, 504] {
            let (s, reason) = reason_for(status);
            assert_eq!(s, status);
            assert!(!reason.is_empty());
        }
        assert_eq!(reason_for(418).1, "Upstream Status");
    }
}
