//! Trust-inference serving stack for the AHNTP reproduction.
//!
//! Training (the `ahntp` crate) produces a model whose forward pass needs
//! hypergraph convolutions; answering "does u trust v?" online does not.
//! This crate is the online half:
//!
//! * [`TrustIndex`] — loads an `AHNTPSRV1` artifact (exported by
//!   `ahntp::Ahntp::export_artifact`, format in `ahntp_nn::artifact`) and
//!   scores pairs with one `O(d)` dot product per query. Head rows are
//!   L2-normalised at export, so the dot *is* the cosine of Eq. 19;
//!   [`TrustIndex::top_k_trustees`] ranks candidates with a bounded heap
//!   over one row scan.
//! * [`serve`] — a zero-dependency HTTP/1.1 server on
//!   `std::net::TcpListener`: a fixed worker pool, a bounded micro-batch
//!   queue that coalesces concurrent `POST /score` requests for the
//!   batcher thread, and cooperative graceful shutdown that finishes
//!   in-flight requests. Endpoints: `POST /score`, `GET /topk`,
//!   `GET /healthz`, `GET /metrics` (all JSON, via
//!   `ahntp_telemetry::json`), plus the observability surface below.
//! * [`serve_live`] — the same server bound to a mutable
//!   [`ahntp_stream::LiveTrustModel`]: `POST /events` ingests trust
//!   events (add/remove/reweight/decay hyperedges), a dedicated applier
//!   thread folds them into the model's delta-maintained caches, and the
//!   refreshed head rows are patched into the [`SharedIndex`] under
//!   short write locks — `/score` and `/topk` answer from the live index
//!   throughout. The `ahntp_stream::StalenessBound` decides how much
//!   staleness may accumulate between refreshes; the default refreshes
//!   after every event, keeping the index exact.
//! * [`serve_sharded`] — a scatter-gather front tier over shard servers
//!   that each own a contiguous trustee id range
//!   ([`ServeConfig::shard_range`]): `/score` requests are re-grouped by
//!   owning shard, `/topk` fans out to every shard and merges the
//!   per-shard heaps under the documented (score desc, id asc) order —
//!   bitwise identical to the single-node exact scan. `POST /admin/swap`
//!   (on shards and the front) hot-swaps a new artifact snapshot behind
//!   the [`SharedIndex`] write lock with zero dropped requests, refusing
//!   fingerprint or shape mismatches with `409`; v2 artifacts load
//!   zero-copy ([`TrustIndex::open`]), so a shard (re)start maps instead
//!   of parsing.
//!
//! Request latency (`serve.request.us`), batch sizes
//! (`serve.score.batch_size`), queue depth (`serve.queue.depth`) and
//! request/error counters land in the `ahntp_telemetry` metrics registry,
//! so `GET /metrics` and the training run ledger share one vocabulary.
//!
//! # Observability
//!
//! Every request is assigned a trace id, echoed back in the
//! `X-Ahntp-Trace-Id` response header and recorded (with the request's
//! per-stage timing breakdown) in a bounded in-memory ring served at
//! `GET /debug/traces`. When trace collection is on
//! (`AHNTP_TRACE_OUT`, or `ahntp_telemetry::set_trace_collect`), each
//! request also emits Chrome trace events — one `serve.request` span per
//! request with its queue/batch/score stages nested under the same trace
//! id — retrievable live at `GET /debug/trace.json` or written to
//! `AHNTP_TRACE_OUT` on shutdown. `GET /metrics?format=prometheus` and
//! `GET /metrics/prometheus` expose the registry in Prometheus text
//! format. An access-log line per request is emitted at `debug` level
//! under the `serve.access` target (off by default; enable with
//! `AHNTP_LOG=serve.access=debug`).
//!
//! # Scoring backends
//!
//! *How* the index computes its dots and candidate scans is pluggable
//! (module [`backend`]): `exact` (scalar f32 reference), `simd`
//! (lane-unrolled kernels, bitwise-equal to exact), `int8` (quantized
//! heads, ~4× smaller, measured error bound), and `ivf` (coarse
//! clustering for sublinear `/topk`). Select one with the
//! `AHNTP_BACKEND` environment variable (e.g. `AHNTP_BACKEND=ivf`, or
//! `ivf:nlist=64,nprobe=8`), [`ServeConfig::backend`], or
//! [`TrustIndex::from_artifact_with`]. Responses carry the active
//! backend in their `backend` JSON field and the `X-Ahntp-Backend`
//! header, and `/healthz` reports it alongside its memory footprint and
//! error envelope.
//!
//! # Defended scoring
//!
//! A [`DefensePrior`] (per-node trust mass from personalized PageRank
//! over honest seeds, `ahntp_graph::trust_prior`) can be attached to the
//! index ([`TrustIndex::with_defense`]) or to the server
//! ([`ServeConfig::defense`]). `/score` and `/topk` then serve
//! `(1 − α) · learned + α · prior[trustee]` blended probabilities: mass
//! entering a Sybil region under PPR is bounded by the attack-edge cut,
//! so the blend caps how much trust a fake cluster can manufacture out
//! of a fooled model. Defended `/topk` always ranks through the exact
//! full candidate scan (the prior reweights candidates, so approximate
//! backends cannot pre-rank for it); pair scoring keeps each backend's
//! error envelope scaled by `1 − α`. `/healthz` advertises `defended`
//! and `defense_alpha`, and a hot `/admin/swap` keeps the active defense
//! unless the incoming snapshot carries its own.
//!
//! # Threads
//!
//! Scoring itself is data-parallel: once a batch or candidate scan is
//! large enough, [`TrustIndex`] fans it out over the process-wide
//! `ahntp-par` worker pool (`serve.score_pairs.par_calls` /
//! `serve.topk.par_calls` count those dispatches). The pool is sized by
//! the `AHNTP_THREADS` environment variable (unset or `0` = one thread
//! per core, `1` = plain serial execution); [`ServeConfig::threads`]
//! overrides it at server startup when nonzero. Banding never reorders
//! the per-score arithmetic, so responses are bitwise identical at every
//! thread count.
//!
//! ```no_run
//! use ahntp_serve::{serve, ServeConfig, TrustIndex};
//!
//! let bytes = std::fs::read("model.ahntpsrv").unwrap();
//! let index = TrustIndex::load(&bytes).unwrap();
//! let server = serve(index, &ServeConfig::default()).unwrap();
//! println!("listening on {}", server.addr());
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod http;
mod index;
mod server;
mod shard;
mod trace_ring;

pub use backend::{BackendKind, IvfParams};
pub use index::{DefensePrior, ScoreError, SharedIndex, SwapError, TrustIndex};
pub use server::{serve, serve_live, ServeConfig, ServerHandle};
pub use shard::{serve_sharded, shard_ranges, ShardInfo, ShardedHandle};
