//! Trust-inference serving stack for the AHNTP reproduction.
//!
//! Training (the `ahntp` crate) produces a model whose forward pass needs
//! hypergraph convolutions; answering "does u trust v?" online does not.
//! This crate is the online half:
//!
//! * [`TrustIndex`] — loads an `AHNTPSRV1` artifact (exported by
//!   `ahntp::Ahntp::export_artifact`, format in `ahntp_nn::artifact`) and
//!   scores pairs with one `O(d)` dot product per query. Head rows are
//!   L2-normalised at export, so the dot *is* the cosine of Eq. 19;
//!   [`TrustIndex::top_k_trustees`] ranks candidates with a bounded heap
//!   over one row scan.
//! * [`serve`] — a zero-dependency HTTP/1.1 server on
//!   `std::net::TcpListener`: a fixed worker pool, a bounded micro-batch
//!   queue that coalesces concurrent `POST /score` requests for the
//!   batcher thread, and cooperative graceful shutdown that finishes
//!   in-flight requests. Endpoints: `POST /score`, `GET /topk`,
//!   `GET /healthz`, `GET /metrics` (all JSON, via
//!   `ahntp_telemetry::json`).
//!
//! Request latency (`serve.request.us`), batch sizes
//! (`serve.score.batch_size`), queue depth (`serve.queue.depth`) and
//! request/error counters land in the `ahntp_telemetry` metrics registry,
//! so `GET /metrics` and the training run ledger share one vocabulary.
//!
//! # Threads
//!
//! Scoring itself is data-parallel: once a batch or candidate scan is
//! large enough, [`TrustIndex`] fans it out over the process-wide
//! `ahntp-par` worker pool (`serve.score_pairs.par_calls` /
//! `serve.topk.par_calls` count those dispatches). The pool is sized by
//! the `AHNTP_THREADS` environment variable (unset or `0` = one thread
//! per core, `1` = plain serial execution); [`ServeConfig::threads`]
//! overrides it at server startup when nonzero. Banding never reorders
//! the per-score arithmetic, so responses are bitwise identical at every
//! thread count.
//!
//! ```no_run
//! use ahntp_serve::{serve, ServeConfig, TrustIndex};
//!
//! let bytes = std::fs::read("model.ahntpsrv").unwrap();
//! let index = TrustIndex::load(&bytes).unwrap();
//! let server = serve(index, &ServeConfig::default()).unwrap();
//! println!("listening on {}", server.addr());
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
mod index;
mod server;

pub use index::{ScoreError, TrustIndex};
pub use server::{serve, ServeConfig, ServerHandle};
