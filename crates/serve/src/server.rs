//! The serving loop: acceptor, worker pool, and the scoring micro-batcher.
//!
//! ```text
//! TcpListener ──accept──▶ acceptor thread ──mpsc──▶ worker pool (N threads)
//!                                                      │ POST /score
//!                                                      ▼
//!                                       bounded batch queue (Mutex+Condvar)
//!                                                      │ drain ≤ max_batch
//!                                                      ▼
//!                                             batcher thread ──▶ TrustIndex
//! ```
//!
//! Workers parse HTTP and answer `GET` endpoints directly; `POST /score`
//! jobs go through the batch queue so concurrent clients share index
//! scans. Shutdown is cooperative: a flag flip plus one self-connection
//! unblocks the acceptor, workers finish their in-flight requests, and
//! the batcher drains the queue before exiting — no request is dropped.
//!
//! Metrics (all under the `serve.` prefix): `serve.http.requests` /
//! `serve.http.errors` counters, `serve.request.us` latency histogram,
//! `serve.score.batch_size` histogram, and the `serve.queue.depth` gauge.
//!
//! # Fault tolerance
//!
//! Every `/score` request carries a deadline ([`ServeConfig::deadline`]):
//! a reply that does not arrive in time answers `504` with a
//! `Retry-After` header and bumps `serve.deadline_exceeded`, so a stalled
//! or slow batcher can never hang a client past the deadline. A full (or
//! stopped) batch queue sheds load with `503` + `Retry-After` and bumps
//! `serve.shed`. When the `serve.batch` failpoint trips, the batcher
//! degrades from the fused batch kernel to per-pair scalar scoring
//! (`serve.degraded` counts the batches served that way) rather than
//! failing the jobs. `GET /healthz` never touches the queue, so liveness
//! probes keep answering under every failure mode. Failpoints
//! (`ahntp-faultz`): `serve.request`, `serve.enqueue`, `serve.batch`,
//! plus `serve.read` / `serve.write` in the HTTP layer.

use std::collections::VecDeque;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ahntp_telemetry::json::{parse, Json};
use ahntp_telemetry::{
    counter_add, gauge_set, histogram_record, info, metrics_snapshot_json, warn,
};

use crate::http::{read_request, write_response, write_response_with, HttpError, Request};
use crate::index::{ScoreError, TrustIndex};

/// Tuning knobs for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// HTTP worker threads.
    pub workers: usize,
    /// Maximum pairs scored per batcher wake-up.
    pub max_batch: usize,
    /// How long the batcher waits for more jobs once it has one.
    pub batch_wait: Duration,
    /// Maximum queued scoring jobs before `POST /score` answers 503.
    pub queue_capacity: usize,
    /// Socket read timeout; bounds how long an idle keep-alive connection
    /// can delay shutdown.
    pub read_timeout: Duration,
    /// Kernel worker threads for the `ahntp-par` pool that large scoring
    /// batches and top-k scans fan out over. `0` (the default) leaves the
    /// process-wide setting alone (`AHNTP_THREADS`, or one thread per
    /// core); any other value overrides it at startup. Results are
    /// bitwise identical at every setting.
    pub threads: usize,
    /// Per-request deadline for `POST /score`: if the batcher has not
    /// replied within this budget (measured from request parse), the
    /// worker answers `504 Gateway Timeout` with a `Retry-After` header
    /// instead of blocking forever.
    pub deadline: Duration,
    /// Value of the `Retry-After` header (whole seconds, minimum 1) on
    /// load-shed (`503`) and deadline (`504`) responses.
    pub retry_after: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_batch: 64,
            batch_wait: Duration::from_millis(2),
            queue_capacity: 1024,
            read_timeout: Duration::from_millis(50),
            threads: 0,
            deadline: Duration::from_secs(2),
            retry_after: Duration::from_secs(1),
        }
    }
}

/// One endpoint answer: status line plus JSON body, with an optional
/// `Retry-After` value (seconds) for backpressure responses.
struct Response {
    status: u16,
    reason: &'static str,
    body: Json,
    retry_after: Option<u64>,
}

impl Response {
    fn new(status: u16, reason: &'static str, body: Json) -> Response {
        Response { status, reason, body, retry_after: None }
    }

    fn error(status: u16, reason: &'static str, message: &str) -> Response {
        Response::new(status, reason, Json::obj([("error", message.into())]))
    }

    fn retry_after(mut self, after: Duration) -> Response {
        self.retry_after = Some(after.as_secs().max(1));
        self
    }
}

/// Everything a worker needs to answer one request.
struct RequestCtx<'a> {
    index: &'a TrustIndex,
    queue: &'a BatchQueue,
    deadline: Duration,
    retry_after: Duration,
}

/// One queued `POST /score` request.
struct ScoreJob {
    pairs: Vec<(usize, usize)>,
    reply: mpsc::Sender<Result<Vec<f32>, ScoreError>>,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<ScoreJob>,
    stopped: bool,
}

/// Bounded job queue between workers and the batcher.
struct BatchQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
    capacity: usize,
}

impl BatchQueue {
    fn new(capacity: usize) -> BatchQueue {
        BatchQueue {
            state: Mutex::new(QueueState::default()),
            cond: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues a job; `false` means full or stopping (caller answers 503).
    fn push(&self, job: ScoreJob) -> bool {
        let mut state = self.state.lock().unwrap();
        if state.stopped || state.jobs.len() >= self.capacity {
            return false;
        }
        state.jobs.push_back(job);
        gauge_set("serve.queue.depth", state.jobs.len() as f64);
        self.cond.notify_one();
        true
    }

    fn stop(&self) {
        self.state.lock().unwrap().stopped = true;
        self.cond.notify_all();
    }
}

/// The batcher loop: sleep until work arrives, linger `batch_wait` to let
/// a batch form, drain up to `max_batch` pairs, score, reply.
fn run_batcher(queue: &BatchQueue, index: &TrustIndex, max_batch: usize, batch_wait: Duration) {
    loop {
        let mut state = queue.state.lock().unwrap();
        while state.jobs.is_empty() && !state.stopped {
            state = queue.cond.wait(state).unwrap();
        }
        if state.jobs.is_empty() && state.stopped {
            return; // drained and told to stop
        }
        // Linger briefly so concurrent clients coalesce into one batch —
        // unless we're already full or shutting down.
        let deadline = Instant::now() + batch_wait;
        loop {
            let queued: usize = state.jobs.iter().map(|j| j.pairs.len()).sum();
            if queued >= max_batch || state.stopped {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (next, _timeout) = queue.cond.wait_timeout(state, deadline - now).unwrap();
            state = next;
        }
        // Drain whole jobs until the batch is full (always at least one).
        let mut batch: Vec<ScoreJob> = Vec::new();
        let mut batch_pairs = 0usize;
        while let Some(job) = state.jobs.front() {
            if !batch.is_empty() && batch_pairs + job.pairs.len() > max_batch {
                break;
            }
            batch_pairs += job.pairs.len();
            batch.push(state.jobs.pop_front().unwrap());
        }
        gauge_set("serve.queue.depth", state.jobs.len() as f64);
        drop(state);

        histogram_record("serve.score.batch_size", batch_pairs as u64);
        // Chaos hook: an Err action degrades this batch from the fused
        // kernel to per-pair scalar scoring (jobs still get answers); a
        // Delay action just slows the batch down — the per-request
        // deadline in `score_endpoint` bounds what clients see.
        if ahntp_faultz::armed() && ahntp_faultz::hit("serve.batch").is_some() {
            counter_add("serve.degraded", 1);
            warn!("serve", "batch kernel faulted; degrading to per-pair scoring");
            for job in batch {
                let scores: Result<Vec<f32>, ScoreError> = job
                    .pairs
                    .iter()
                    .map(|&(trustor, trustee)| index.score(trustor, trustee))
                    .collect();
                let _ = job.reply.send(scores);
            }
            continue;
        }
        let all: Vec<(usize, usize)> = batch
            .iter()
            .flat_map(|j| j.pairs.iter().copied())
            .collect();
        match index.score_pairs(&all) {
            Ok(scores) => {
                let mut offset = 0;
                for job in batch {
                    let n = job.pairs.len();
                    let slice = scores[offset..offset + n].to_vec();
                    offset += n;
                    let _ = job.reply.send(Ok(slice));
                }
            }
            Err(_) => {
                // Some job smuggled in a bad id; rescore per job so only
                // the offender sees the error.
                for job in batch {
                    let _ = job.reply.send(index.score_pairs(&job.pairs));
                }
            }
        }
    }
}

/// Handle to a running server. Dropping it shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    queue: Arc<BatchQueue>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port when the config asked
    /// for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stops accepting, lets in-flight requests
    /// finish, drains the scoring queue, joins every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return; // already stopped
        }
        // Unblock the acceptor's accept() with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
        // Acceptor exit drops the connection sender; workers drain the
        // channel, finish their in-flight requests, and exit.
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        // No worker can enqueue anymore: drain the batcher and stop it.
        self.queue.stop();
        if let Some(t) = self.batcher.take() {
            let _ = t.join();
        }
        info!("serve", "server on {} stopped", self.addr);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Starts the server and returns once the socket is bound and every
/// thread is running.
///
/// # Errors
///
/// Fails when the address cannot be bound.
pub fn serve(index: TrustIndex, config: &ServeConfig) -> io::Result<ServerHandle> {
    if config.threads > 0 {
        ahntp_par::set_threads(config.threads);
    }
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let index = Arc::new(index);
    let shutdown = Arc::new(AtomicBool::new(false));
    let queue = Arc::new(BatchQueue::new(config.queue_capacity.max(1)));

    let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
    let conn_rx = Arc::new(Mutex::new(conn_rx));

    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if shutdown.load(Ordering::SeqCst) {
                            break; // the wake-up connection, or late arrival
                        }
                        if conn_tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(e) => {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        warn!("serve", "accept failed: {e}");
                    }
                }
            }
        })
    };

    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|_| {
            let conn_rx = Arc::clone(&conn_rx);
            let index = Arc::clone(&index);
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&shutdown);
            let read_timeout = config.read_timeout;
            let (deadline, retry_after) = (config.deadline, config.retry_after);
            std::thread::spawn(move || loop {
                // Don't hold the receiver lock while serving a connection.
                let stream = match conn_rx.lock().unwrap().recv() {
                    Ok(s) => s,
                    Err(_) => return, // acceptor gone and channel drained
                };
                let ctx = RequestCtx {
                    index: &index,
                    queue: &queue,
                    deadline,
                    retry_after,
                };
                if let Err(e) = handle_connection(stream, &ctx, &shutdown, read_timeout) {
                    warn!("serve", "connection dropped: {e}");
                }
            })
        })
        .collect();

    let batcher = {
        let index = Arc::clone(&index);
        let queue = Arc::clone(&queue);
        let (max_batch, batch_wait) = (config.max_batch.max(1), config.batch_wait);
        std::thread::spawn(move || run_batcher(&queue, &index, max_batch, batch_wait))
    };

    info!(
        "serve",
        "serving {} users of model {:?} on {addr} with {} workers",
        index.n_users(),
        index.model(),
        config.workers.max(1)
    );
    Ok(ServerHandle {
        addr,
        shutdown,
        queue,
        acceptor: Some(acceptor),
        workers,
        batcher: Some(batcher),
    })
}

/// Serves one connection (keep-alive loop) until close, error, or
/// shutdown.
fn handle_connection(
    stream: TcpStream,
    ctx: &RequestCtx<'_>,
    shutdown: &AtomicBool,
    read_timeout: Duration,
) -> io::Result<()> {
    stream.set_read_timeout(Some(read_timeout))?;
    // Responses are one small write each; Nagle + delayed ACK would add
    // ~40ms per exchange.
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(Some(req)) => {
                let started = Instant::now();
                counter_add("serve.http.requests", 1);
                let resp = route(&req, ctx);
                if resp.status >= 400 {
                    counter_add("serve.http.errors", 1);
                }
                let retry_header: Vec<(&str, String)> = resp
                    .retry_after
                    .map(|secs| ("Retry-After", secs.to_string()))
                    .into_iter()
                    .collect();
                // Finish the in-flight response even during shutdown, but
                // don't invite another request.
                let keep_alive = !req.wants_close() && !shutdown.load(Ordering::SeqCst);
                write_response_with(
                    &mut writer,
                    resp.status,
                    resp.reason,
                    "application/json",
                    &retry_header,
                    resp.body.to_line().as_bytes(),
                    keep_alive,
                )?;
                histogram_record("serve.request.us", started.elapsed().as_micros() as u64);
                if !keep_alive {
                    return Ok(());
                }
            }
            Ok(None) => return Ok(()), // peer closed between requests
            Err(HttpError::Io(e))
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                // Idle keep-alive poll tick; only exit once shutdown is on.
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(HttpError::Io(e)) => return Err(e),
            Err(HttpError::BadRequest(m)) => {
                counter_add("serve.http.errors", 1);
                let body = Json::obj([("error", Json::from(m.as_str()))]).to_line();
                write_response(&mut writer, 400, "Bad Request", "application/json",
                    body.as_bytes(), false)?;
                return Ok(());
            }
            Err(HttpError::TooLarge) => {
                counter_add("serve.http.errors", 1);
                let body =
                    Json::obj([("error", Json::from("body too large"))]).to_line();
                write_response(&mut writer, 413, "Payload Too Large", "application/json",
                    body.as_bytes(), false)?;
                return Ok(());
            }
        }
        writer.flush()?;
    }
}

/// Dispatches one request to its endpoint.
///
/// `GET /healthz` is answered inline without touching the batch queue:
/// liveness probes keep working while scoring is shedding, degraded, or
/// stalled.
fn route(req: &Request, ctx: &RequestCtx<'_>) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/score") => score_endpoint(req, ctx),
        ("GET", "/topk") => topk_endpoint(req, ctx.index),
        ("GET", "/healthz") => Response::new(
            200,
            "OK",
            Json::obj([
                ("status", "ok".into()),
                ("model", ctx.index.model().into()),
                ("n_users", ctx.index.n_users().into()),
                // Hex string: u64 fingerprints don't fit in JSON's f64.
                ("fingerprint", format!("{:016x}", ctx.index.fingerprint()).into()),
            ]),
        ),
        ("GET", "/metrics") => Response::new(200, "OK", metrics_snapshot_json()),
        (_, "/score") | (_, "/topk") | (_, "/healthz") | (_, "/metrics") => {
            Response::error(405, "Method Not Allowed", "method not allowed")
        }
        _ => Response::error(404, "Not Found", "no such endpoint"),
    }
}

/// Reads `{"pairs": [[u, v], ...]}` out of a `/score` body.
fn parse_pairs(body: &[u8]) -> Result<Vec<(usize, usize)>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = parse(text).map_err(|e| format!("body is not JSON: {e}"))?;
    let Some(Json::Arr(items)) = doc.get("pairs") else {
        return Err("body must be {\"pairs\": [[trustor, trustee], ...]}".to_string());
    };
    let as_user = |v: &Json| -> Result<usize, String> {
        match v.as_f64() {
            Some(n) if n >= 0.0 && n.fract() == 0.0 && n <= u32::MAX as f64 => Ok(n as usize),
            _ => Err(format!("user ids must be non-negative integers, got {}", v.to_line())),
        }
    };
    items
        .iter()
        .map(|item| match item {
            Json::Arr(pair) if pair.len() == 2 => {
                Ok((as_user(&pair[0])?, as_user(&pair[1])?))
            }
            other => Err(format!("each pair must be [trustor, trustee], got {}", other.to_line())),
        })
        .collect()
}

/// A load-shed answer: `503` + `Retry-After`, counted in `serve.shed`.
fn shed(ctx: &RequestCtx<'_>, message: &str) -> Response {
    counter_add("serve.shed", 1);
    Response::error(503, "Service Unavailable", message).retry_after(ctx.retry_after)
}

fn score_endpoint(req: &Request, ctx: &RequestCtx<'_>) -> Response {
    let started = Instant::now();
    ahntp_faultz::failpoint!("serve.request", |_inj| Response::error(
        500,
        "Internal Server Error",
        "injected fault in request handling",
    ));
    let pairs = match parse_pairs(&req.body) {
        Ok(p) => p,
        Err(m) => return Response::error(400, "Bad Request", &m),
    };
    // Chaos hook: pretend the queue rejected the job.
    ahntp_faultz::failpoint!("serve.enqueue", |_inj| shed(ctx, "scoring queue full"));
    let (reply_tx, reply_rx) = mpsc::channel();
    if !ctx.queue.push(ScoreJob { pairs, reply: reply_tx }) {
        return shed(ctx, "scoring queue full");
    }
    // The deadline budget started when the request began parsing; wait
    // only for what is left of it.
    let remaining = ctx.deadline.saturating_sub(started.elapsed());
    match reply_rx.recv_timeout(remaining) {
        Ok(Ok(scores)) => Response::new(
            200,
            "OK",
            Json::obj([(
                "scores",
                Json::Arr(scores.into_iter().map(Json::from).collect()),
            )]),
        ),
        Ok(Err(e)) => Response::error(400, "Bad Request", &e.to_string()),
        Err(mpsc::RecvTimeoutError::Timeout) => {
            // The job may still complete inside the batcher; the reply
            // channel is simply dropped and its send ignored.
            counter_add("serve.deadline_exceeded", 1);
            Response::error(504, "Gateway Timeout", "scoring deadline exceeded")
                .retry_after(ctx.retry_after)
        }
        // Batcher went away mid-flight (shutdown race): overloaded-style
        // answer rather than a hung worker.
        Err(mpsc::RecvTimeoutError::Disconnected) => shed(ctx, "scoring backend stopped"),
    }
}

fn topk_endpoint(req: &Request, index: &TrustIndex) -> Response {
    let user = match req.query_usize("user") {
        Ok(u) => u,
        Err(m) => return Response::error(400, "Bad Request", &m),
    };
    let k = match req.query.get("k") {
        Some(_) => match req.query_usize("k") {
            Ok(k) => k,
            Err(m) => return Response::error(400, "Bad Request", &m),
        },
        None => 10,
    };
    match index.top_k_trustees(user, k) {
        Ok(top) => Response::new(
            200,
            "OK",
            Json::obj([
                ("user", user.into()),
                (
                    "trustees",
                    Json::Arr(
                        top.into_iter()
                            .map(|(v, s)| {
                                Json::obj([("user", v.into()), ("score", s.into())])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        Err(e) => Response::error(400, "Bad Request", &e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahntp_nn::TrustArtifact;
    use std::io::{BufRead, Read};

    fn toy_index(n_users: usize) -> TrustIndex {
        // Unit rows at distinct angles around the circle.
        let row = |i: usize| {
            let a = i as f32 * 0.7;
            vec![a.cos(), a.sin()]
        };
        let artifact = TrustArtifact {
            model: "AHNTP".to_string(),
            fingerprint: 0xfeed_beef_0000_0001,
            calibration: 0.5,
            n_users,
            emb_dim: 2,
            head_dim: 2,
            embeddings: vec![0.0; n_users * 2],
            trustor_head: (0..n_users).flat_map(row).collect(),
            trustee_head: (0..n_users).rev().flat_map(row).collect(),
        };
        TrustIndex::from_artifact(artifact).unwrap()
    }

    fn start(n_users: usize) -> ServerHandle {
        ahntp_telemetry::set_enabled(true);
        serve(
            toy_index(n_users),
            &ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
        )
        .expect("bind 127.0.0.1:0")
    }

    /// Blocking one-shot HTTP exchange; returns (status, body).
    fn exchange(addr: SocketAddr, request: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut reader = BufReader::new(&mut stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line.trim_end().is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        (status, String::from_utf8(body).unwrap())
    }

    fn post_score(addr: SocketAddr, body: &str) -> (u16, String) {
        exchange(
            addr,
            &format!(
                "POST /score HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    #[test]
    fn score_endpoint_matches_the_index() {
        let server = start(6);
        let addr = server.addr();
        let index = toy_index(6);
        let (status, body) = post_score(addr, r#"{"pairs":[[0,1],[2,5],[3,3]]}"#);
        assert_eq!(status, 200, "{body}");
        let doc = parse(&body).unwrap();
        let Some(Json::Arr(scores)) = doc.get("scores") else {
            panic!("no scores in {body}");
        };
        let expected = index.score_pairs(&[(0, 1), (2, 5), (3, 3)]).unwrap();
        assert_eq!(scores.len(), expected.len());
        for (got, want) in scores.iter().zip(&expected) {
            let got = got.as_f64().unwrap();
            assert!((got - f64::from(*want)).abs() < 1e-6, "{got} vs {want}");
        }
        server.shutdown();
    }

    #[test]
    fn bad_requests_get_typed_errors() {
        let server = start(4);
        let addr = server.addr();
        let (status, body) = post_score(addr, "not json at all");
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("JSON"), "{body}");
        let (status, body) = post_score(addr, r#"{"pairs":[[0,99]]}"#);
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("out of range"), "{body}");
        let (status, _) = post_score(addr, r#"{"pairs":[[0,-1]]}"#);
        assert_eq!(status, 400);
        let (status, _) = exchange(addr, "GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 404);
        let (status, _) = exchange(addr, "PUT /score HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 405);
        server.shutdown();
    }

    #[test]
    fn topk_healthz_and_metrics_respond() {
        let server = start(5);
        let addr = server.addr();
        let (status, body) =
            exchange(addr, "GET /topk?user=0&k=3 HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 200, "{body}");
        let doc = parse(&body).unwrap();
        let Some(Json::Arr(trustees)) = doc.get("trustees") else {
            panic!("no trustees in {body}");
        };
        assert_eq!(trustees.len(), 3);
        let expected = toy_index(5).top_k_trustees(0, 3).unwrap();
        for (item, (user, _)) in trustees.iter().zip(&expected) {
            assert_eq!(item.get("user").and_then(Json::as_f64), Some(*user as f64));
        }

        let (status, body) =
            exchange(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 200);
        let doc = parse(&body).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(doc.get("n_users").and_then(Json::as_f64), Some(5.0));
        assert_eq!(
            doc.get("fingerprint").and_then(Json::as_str),
            Some("feedbeef00000001")
        );

        let (status, body) =
            exchange(addr, "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 200);
        let doc = parse(&body).unwrap();
        // At least the requests we just made are visible.
        assert!(
            doc.get("serve.http.requests").and_then(Json::as_f64).unwrap_or(0.0) >= 2.0,
            "{body}"
        );
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests_per_connection() {
        let server = start(4);
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        for _ in 0..3 {
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
                .unwrap();
            let mut reader = BufReader::new(&stream);
            let mut status_line = String::new();
            reader.read_line(&mut status_line).unwrap();
            assert!(status_line.contains("200"), "{status_line}");
            let mut content_length = 0usize;
            loop {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                if line.trim_end().is_empty() {
                    break;
                }
                if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                    content_length = v.trim().parse().unwrap();
                }
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body).unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_completes_inflight_requests() {
        let server = start(8);
        let addr = server.addr();
        // Hammer the server from several client threads while the main
        // thread shuts it down; every exchange must either complete with
        // 200/503 or fail at the socket level — never hang or panic.
        let clients: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut completed = 0usize;
                    for _ in 0..20 {
                        let mut stream = match TcpStream::connect(addr) {
                            Ok(s) => s,
                            Err(_) => break, // listener already closed
                        };
                        let body = r#"{"pairs":[[0,1],[2,3],[4,5]]}"#;
                        let req = format!(
                            "POST /score HTTP/1.1\r\nContent-Length: {}\r\n\
                             Connection: close\r\n\r\n{body}",
                            body.len()
                        );
                        if stream.write_all(req.as_bytes()).is_err() {
                            break;
                        }
                        let mut response = String::new();
                        if BufReader::new(&stream).read_to_string(&mut response).is_err() {
                            break;
                        }
                        if response.is_empty() {
                            break; // connection accepted but never served
                        }
                        assert!(
                            response.starts_with("HTTP/1.1 200")
                                || response.starts_with("HTTP/1.1 503"),
                            "unexpected response: {response:?}"
                        );
                        if response.starts_with("HTTP/1.1 200") {
                            completed += 1;
                        }
                    }
                    completed
                })
            })
            .collect();
        // Let the clients get going, then pull the plug.
        std::thread::sleep(Duration::from_millis(30));
        server.shutdown();
        let total: usize = clients.into_iter().map(|c| c.join().unwrap()).sum();
        assert!(total > 0, "no request completed before shutdown");
    }

    #[test]
    fn full_queue_answers_503() {
        // Capacity-1 queue and a parked batcher thread can't be arranged
        // without hooks; instead stop the queue directly and check the
        // push path degrades to 503.
        let queue = BatchQueue::new(1);
        queue.stop();
        let (tx, _rx) = mpsc::channel();
        assert!(!queue.push(ScoreJob { pairs: vec![(0, 0)], reply: tx }));
    }

    fn score_request() -> Request {
        Request {
            method: "POST".to_string(),
            path: "/score".to_string(),
            query: std::collections::BTreeMap::new(),
            headers: std::collections::BTreeMap::new(),
            body: br#"{"pairs":[[0,1]]}"#.to_vec(),
        }
    }

    #[test]
    fn deadline_and_shed_responses_carry_retry_after() {
        ahntp_telemetry::set_enabled(true);
        let index = toy_index(4);
        // Capacity-1 queue with no batcher: the first job is accepted but
        // never answered (deadline path), which leaves the queue full so
        // the second job is shed.
        let queue = BatchQueue::new(1);
        let ctx = RequestCtx {
            index: &index,
            queue: &queue,
            deadline: Duration::from_millis(20),
            retry_after: Duration::from_secs(2),
        };
        let deadline0 = ahntp_telemetry::counter_get("serve.deadline_exceeded");
        let shed0 = ahntp_telemetry::counter_get("serve.shed");
        let resp = score_endpoint(&score_request(), &ctx);
        assert_eq!(resp.status, 504, "{}", resp.body.to_line());
        assert_eq!(resp.retry_after, Some(2));
        assert!(ahntp_telemetry::counter_get("serve.deadline_exceeded") > deadline0);
        let resp = score_endpoint(&score_request(), &ctx);
        assert_eq!(resp.status, 503, "{}", resp.body.to_line());
        assert_eq!(resp.retry_after, Some(2));
        assert!(ahntp_telemetry::counter_get("serve.shed") > shed0);
    }

    #[test]
    fn healthz_bypasses_the_scoring_queue() {
        let index = toy_index(3);
        let queue = BatchQueue::new(1);
        queue.stop(); // scoring is completely dead...
        let ctx = RequestCtx {
            index: &index,
            queue: &queue,
            deadline: Duration::from_millis(5),
            retry_after: Duration::from_secs(1),
        };
        let req = Request {
            method: "GET".to_string(),
            path: "/healthz".to_string(),
            query: std::collections::BTreeMap::new(),
            headers: std::collections::BTreeMap::new(),
            body: Vec::new(),
        };
        let resp = route(&req, &ctx);
        assert_eq!(resp.status, 200, "...but liveness still answers");
        // While /score correctly sheds.
        let resp = route(&score_request(), &ctx);
        assert_eq!(resp.status, 503);
        assert_eq!(resp.retry_after, Some(1));
    }
}
