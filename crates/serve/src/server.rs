//! The serving loop: acceptor, worker pool, and the scoring micro-batcher.
//!
//! ```text
//! TcpListener ──accept──▶ acceptor thread ──mpsc──▶ worker pool (N threads)
//!                                                      │ POST /score
//!                                                      ▼
//!                                       bounded batch queue (Mutex+Condvar)
//!                                                      │ drain ≤ max_batch
//!                                                      ▼
//!                                             batcher thread ──▶ TrustIndex
//! ```
//!
//! Workers parse HTTP and answer `GET` endpoints directly; `POST /score`
//! jobs go through the batch queue so concurrent clients share index
//! scans. Shutdown is cooperative: a flag flip plus one self-connection
//! unblocks the acceptor, workers finish their in-flight requests, and
//! the batcher drains the queue before exiting — no request is dropped.
//!
//! # Live trust
//!
//! [`serve_live`] additionally runs an **applier thread** owning a
//! [`LiveTrustModel`]: `POST /events` batches flow to it over a channel,
//! it folds them into the model's delta-maintained caches
//! ([`EventApplier`]), and patches the refreshed head rows into the
//! shared index under short write locks ([`SharedIndex`]). One consumer
//! means the event log is totally ordered; `/score` and `/topk` keep
//! answering from the live index throughout. A server started with
//! [`serve`] has no model and answers `/events` with `501`.
//!
//! Metrics (all under the `serve.` prefix): `serve.http.requests` /
//! `serve.http.errors` counters, `serve.request.us` latency histogram,
//! `serve.score.batch_size` histogram, and the `serve.queue.depth` gauge.
//!
//! # Tracing
//!
//! Each request is stamped with a fresh trace id
//! ([`ahntp_telemetry::next_trace_id`]) that travels with the scoring job
//! through the queue into the batcher and back: the worker installs it as
//! the thread's ambient id while handling the request, answers with an
//! `X-Ahntp-Trace-Id` header, and records the request (with its
//! parse / enqueue / queue-wait / score stage timings) in the
//! [`TraceRing`](crate::trace_ring::TraceRing) behind `GET /debug/traces`.
//! With trace collection on, the same stages are emitted as Chrome trace
//! events on a per-request virtual lane (`pid` 2, `tid` = trace id), so a
//! loadgen run opened in Perfetto shows every request as one
//! `serve.request` span with its stages nested inside.
//!
//! # Fault tolerance
//!
//! Every `/score` request carries a deadline ([`ServeConfig::deadline`]):
//! a reply that does not arrive in time answers `504` with a
//! `Retry-After` header and bumps `serve.deadline_exceeded`, so a stalled
//! or slow batcher can never hang a client past the deadline. A full (or
//! stopped) batch queue sheds load with `503` + `Retry-After` and bumps
//! `serve.shed`. When the `serve.batch` failpoint trips, the batcher
//! degrades from the fused batch kernel to per-pair scalar scoring
//! (`serve.degraded` counts the batches served that way) rather than
//! failing the jobs. `GET /healthz` never touches the queue, so liveness
//! probes keep answering under every failure mode. Failpoints
//! (`ahntp-faultz`): `serve.request`, `serve.enqueue`, `serve.batch`,
//! plus `serve.read` / `serve.write` in the HTTP layer.

use std::collections::VecDeque;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ahntp_telemetry::json::{parse, Json};
use ahntp_telemetry::{
    counter_add, debug, gauge_set, histogram_record, info, metrics_prometheus_text,
    metrics_snapshot_json, trace_now_us, warn, KernelKind, KernelSpan,
};

use ahntp_stream::{
    parse_events, EventApplier, HeadPatch, LiveTrustModel, StalenessBound, TrustEvent,
};

use crate::backend::BackendKind;
use crate::http::{read_request, write_response, write_response_with, HttpError, Request};
use crate::index::{ScoreError, SharedIndex, TrustIndex};
use crate::trace_ring::{RequestTrace, Stage, TraceRing};

/// Tuning knobs for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// HTTP worker threads.
    pub workers: usize,
    /// Maximum pairs scored per batcher wake-up.
    pub max_batch: usize,
    /// How long the batcher waits for more jobs once it has one.
    pub batch_wait: Duration,
    /// Maximum queued scoring jobs before `POST /score` answers 503.
    pub queue_capacity: usize,
    /// Socket read timeout; bounds how long an idle keep-alive connection
    /// can delay shutdown.
    pub read_timeout: Duration,
    /// Kernel worker threads for the `ahntp-par` pool that large scoring
    /// batches and top-k scans fan out over. `0` (the default) leaves the
    /// process-wide setting alone (`AHNTP_THREADS`, or one thread per
    /// core); any other value overrides it at startup. Results are
    /// bitwise identical at every setting.
    pub threads: usize,
    /// Per-request deadline for `POST /score`: if the batcher has not
    /// replied within this budget (measured from request parse), the
    /// worker answers `504 Gateway Timeout` with a `Retry-After` header
    /// instead of blocking forever.
    pub deadline: Duration,
    /// Value of the `Retry-After` header (whole seconds, minimum 1) on
    /// load-shed (`503`) and deadline (`504`) responses.
    pub retry_after: Duration,
    /// How many recently served requests `GET /debug/traces` retains
    /// (per-request stage timings, newest last). Minimum 1.
    pub trace_ring: usize,
    /// Scoring backend override. `None` (the default) keeps whatever the
    /// index was built with — for [`serve`] that is the index passed in;
    /// for [`serve_live`] the environment default
    /// ([`BackendKind::from_env`], `AHNTP_BACKEND`). `Some(kind)` rebuilds
    /// onto `kind` at startup.
    pub backend: Option<BackendKind>,
    /// The contiguous trustee id range `[lo, hi)` this server owns as a
    /// shard of a scatter-gather cluster. `None` (the default) serves the
    /// whole id space. A shard still maps the *full* artifact — `/score`
    /// answers any pair — but its `/topk` scans only the owned range
    /// (always with the exact scalar arithmetic), so a front tier can
    /// merge per-shard results into the single-node exact answer
    /// bitwise. The range is advertised as `shard_lo`/`shard_hi` in
    /// `/healthz` for front-tier discovery.
    pub shard_range: Option<(usize, usize)>,
    /// Sybil-defense prior to attach at startup
    /// ([`TrustIndex::with_defense`]): `/score` and `/topk` then serve
    /// `(1 − α) · learned + α · prior[trustee]` blended scores, and
    /// `/healthz` advertises `defended: true` plus the alpha. `None` (the
    /// default) serves raw learned scores. Build one with
    /// [`DefensePrior::from_env`] to pick the alpha up from
    /// `AHNTP_PPR_ALPHA`.
    pub defense: Option<crate::index::DefensePrior>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_batch: 64,
            batch_wait: Duration::from_millis(2),
            queue_capacity: 1024,
            read_timeout: Duration::from_millis(50),
            threads: 0,
            deadline: Duration::from_secs(2),
            retry_after: Duration::from_secs(1),
            trace_ring: 128,
            backend: None,
            shard_range: None,
            defense: None,
        }
    }
}

/// One endpoint answer: status line plus JSON body, with an optional
/// `Retry-After` value (seconds) for backpressure responses. Text
/// endpoints (Prometheus exposition, raw Chrome trace JSON) carry a
/// pre-rendered body instead of a [`Json`] document.
pub(crate) struct Response {
    pub(crate) status: u16,
    pub(crate) reason: &'static str,
    pub(crate) body: Json,
    /// `(content_type, body)` override; when set, wins over `body`.
    pub(crate) text: Option<(&'static str, String)>,
    pub(crate) retry_after: Option<u64>,
}

impl Response {
    pub(crate) fn new(status: u16, reason: &'static str, body: Json) -> Response {
        Response { status, reason, body, text: None, retry_after: None }
    }

    pub(crate) fn text(content_type: &'static str, body: String) -> Response {
        Response {
            status: 200,
            reason: "OK",
            body: Json::Null,
            text: Some((content_type, body)),
            retry_after: None,
        }
    }

    pub(crate) fn error(status: u16, reason: &'static str, message: &str) -> Response {
        Response::new(status, reason, Json::obj([("error", message.into())]))
    }

    pub(crate) fn retry_after(mut self, after: Duration) -> Response {
        self.retry_after = Some(after.as_secs().max(1));
        self
    }
}

/// Everything a worker needs to answer one request.
struct RequestCtx<'a> {
    index: &'a SharedIndex,
    queue: &'a BatchQueue,
    traces: &'a TraceRing,
    /// Channel to the live-event applier thread; `None` on a frozen
    /// server, which answers `POST /events` with `501`.
    ingest: Option<&'a mpsc::Sender<IngestJob>>,
    deadline: Duration,
    retry_after: Duration,
    /// Active scoring backend name, captured once at startup (head
    /// patches never change the backend), echoed in the
    /// `X-Ahntp-Backend` header and response `backend` fields.
    backend: &'static str,
    /// Backend kind matching `backend`; `/admin/swap` rebuilds opened
    /// snapshots onto it so a swap never silently changes the backend.
    backend_kind: BackendKind,
    /// Owned trustee range when serving as a shard
    /// ([`ServeConfig::shard_range`]); restricts `/topk` candidates.
    shard_range: Option<(usize, usize)>,
}

/// What the batcher sends back for one job: the scores plus the
/// timestamps the requesting worker needs to attribute its wait.
struct ScoreReply {
    result: Result<Vec<f32>, ScoreError>,
    /// When the batcher drained the job from the queue.
    picked_up_us: u64,
    /// When the batch's scoring finished.
    scored_us: u64,
    /// Whether the batch fell back to per-pair scalar scoring.
    degraded: bool,
}

/// One queued `POST /score` request.
struct ScoreJob {
    pairs: Vec<(usize, usize)>,
    /// Trace id of the originating request; carried through the queue so
    /// the batcher works under the requester's id.
    trace_id: u64,
    reply: mpsc::Sender<ScoreReply>,
}

/// One queued `POST /events` batch bound for the applier thread.
struct IngestJob {
    events: Vec<TrustEvent>,
    trace_id: u64,
    reply: mpsc::Sender<IngestReply>,
}

/// What the applier sends back for one ingest batch.
struct IngestReply {
    /// Events applied before the first failure (all of them on success).
    applied: usize,
    /// Total affected users across the applied events.
    affected: usize,
    /// Head rows patched into the index while handling this batch.
    refreshed: usize,
    /// Users still dirty after the batch (staleness-bound refresh failed
    /// or was deferred).
    dirty: usize,
    error: Option<String>,
    /// When the applier drained the job from the channel.
    picked_up_us: u64,
    /// When the batch (including its refresh flush) finished.
    done_us: u64,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<ScoreJob>,
    stopped: bool,
}

/// Bounded job queue between workers and the batcher.
struct BatchQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
    capacity: usize,
}

impl BatchQueue {
    fn new(capacity: usize) -> BatchQueue {
        BatchQueue {
            state: Mutex::new(QueueState::default()),
            cond: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues a job; `false` means full or stopping (caller answers 503).
    fn push(&self, job: ScoreJob) -> bool {
        let mut state = self.state.lock().unwrap();
        if state.stopped || state.jobs.len() >= self.capacity {
            return false;
        }
        state.jobs.push_back(job);
        gauge_set("serve.queue.depth", state.jobs.len() as f64);
        self.cond.notify_one();
        true
    }

    fn stop(&self) {
        self.state.lock().unwrap().stopped = true;
        self.cond.notify_all();
    }
}

/// The batcher loop: sleep until work arrives, linger `batch_wait` to let
/// a batch form, drain up to `max_batch` pairs, score, reply.
fn run_batcher(queue: &BatchQueue, index: &SharedIndex, max_batch: usize, batch_wait: Duration) {
    loop {
        let mut state = queue.state.lock().unwrap();
        while state.jobs.is_empty() && !state.stopped {
            state = queue.cond.wait(state).unwrap();
        }
        if state.jobs.is_empty() && state.stopped {
            return; // drained and told to stop
        }
        // Linger briefly so concurrent clients coalesce into one batch —
        // unless we're already full or shutting down.
        let deadline = Instant::now() + batch_wait;
        loop {
            let queued: usize = state.jobs.iter().map(|j| j.pairs.len()).sum();
            if queued >= max_batch || state.stopped {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (next, _timeout) = queue.cond.wait_timeout(state, deadline - now).unwrap();
            state = next;
        }
        // Drain whole jobs until the batch is full (always at least one).
        let mut batch: Vec<ScoreJob> = Vec::new();
        let mut batch_pairs = 0usize;
        while let Some(job) = state.jobs.front() {
            if !batch.is_empty() && batch_pairs + job.pairs.len() > max_batch {
                break;
            }
            batch_pairs += job.pairs.len();
            batch.push(state.jobs.pop_front().unwrap());
        }
        gauge_set("serve.queue.depth", state.jobs.len() as f64);
        drop(state);

        // Pin one index version for the whole batch: the read guard keeps
        // the live applier's write lock out until every job is answered,
        // so a coalesced batch never sees a half-applied patch.
        let index = index.read();
        histogram_record("serve.score.batch_size", batch_pairs as u64);
        let picked_up_us = trace_now_us();
        // Score under the requester's trace id when the batch is one job
        // deep; a coalesced batch belongs to no single request, so the
        // ambient id stays unset and the span attributes to the batcher
        // thread lane only.
        let _scope = (batch.len() == 1)
            .then(|| ahntp_telemetry::set_trace_id_scope(batch[0].trace_id));
        let _batch_span = KernelSpan::enter("serve.batch", KernelKind::Other);
        // Chaos hook: an Err action degrades this batch from the fused
        // kernel to per-pair scalar scoring (jobs still get answers); a
        // Delay action just slows the batch down — the per-request
        // deadline in `score_endpoint` bounds what clients see.
        if ahntp_faultz::armed() && ahntp_faultz::hit("serve.batch").is_some() {
            counter_add("serve.degraded", 1);
            warn!("serve", "batch kernel faulted; degrading to per-pair scoring");
            for job in batch {
                let result: Result<Vec<f32>, ScoreError> = job
                    .pairs
                    .iter()
                    .map(|&(trustor, trustee)| index.score(trustor, trustee))
                    .collect();
                let _ = job.reply.send(ScoreReply {
                    result,
                    picked_up_us,
                    scored_us: trace_now_us(),
                    degraded: true,
                });
            }
            continue;
        }
        let all: Vec<(usize, usize)> = batch
            .iter()
            .flat_map(|j| j.pairs.iter().copied())
            .collect();
        match index.score_pairs(&all) {
            Ok(scores) => {
                let scored_us = trace_now_us();
                let mut offset = 0;
                for job in batch {
                    let n = job.pairs.len();
                    let slice = scores[offset..offset + n].to_vec();
                    offset += n;
                    let _ = job.reply.send(ScoreReply {
                        result: Ok(slice),
                        picked_up_us,
                        scored_us,
                        degraded: false,
                    });
                }
            }
            Err(_) => {
                // Some job smuggled in a bad id; rescore per job so only
                // the offender sees the error.
                for job in batch {
                    let result = index.score_pairs(&job.pairs);
                    let _ = job.reply.send(ScoreReply {
                        result,
                        picked_up_us,
                        scored_us: trace_now_us(),
                        degraded: false,
                    });
                }
            }
        }
    }
}

/// Handle to a running server. Dropping it shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    queue: Arc<BatchQueue>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    /// Live servers only: the ingest channel and the applier thread.
    /// Dropping the sender (after the workers' clones are gone) lets the
    /// applier drain the remaining batches and exit.
    ingest: Option<mpsc::Sender<IngestJob>>,
    applier: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port when the config asked
    /// for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stops accepting, lets in-flight requests
    /// finish, drains the scoring queue, joins every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return; // already stopped
        }
        // Unblock the acceptor's accept() with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
        // Acceptor exit drops the connection sender; workers drain the
        // channel, finish their in-flight requests, and exit.
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        // No worker can enqueue anymore: drain the batcher and stop it.
        self.queue.stop();
        if let Some(t) = self.batcher.take() {
            let _ = t.join();
        }
        // Workers are gone, so the handle holds the last ingest sender:
        // dropping it disconnects the channel and the applier exits once
        // it has drained the already-queued batches.
        drop(self.ingest.take());
        if let Some(t) = self.applier.take() {
            let _ = t.join();
        }
        // Every thread has quiesced: if AHNTP_TRACE_OUT is set, persist
        // the Chrome trace collected over the server's lifetime.
        ahntp_telemetry::flush_trace_to_env();
        info!("serve", "server on {} stopped", self.addr);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Starts a frozen server (no event ingest) and returns once the socket
/// is bound and every thread is running. `POST /events` answers `501`;
/// use [`serve_live`] to serve a mutable model.
///
/// # Errors
///
/// Fails when the address cannot be bound.
pub fn serve(index: TrustIndex, config: &ServeConfig) -> io::Result<ServerHandle> {
    let index = match config.backend {
        Some(kind) if kind != index.backend_kind() => index.with_backend(kind),
        _ => index,
    };
    let index = match &config.defense {
        Some(defense) => index
            .with_defense(defense.clone())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?,
        None => index,
    };
    serve_shared(Arc::new(SharedIndex::new(index)), config, None)
}

/// Starts a live server: like [`serve`], plus a `POST /events` endpoint
/// that folds trust events into a [`LiveTrustModel`] and patches the
/// refreshed head rows into the scoring index.
///
/// The factory runs on a dedicated applier thread (models may hold
/// non-`Send` state): it builds the model there, seeds the index from
/// [`LiveTrustModel::export_artifact`], then applies event batches in
/// arrival order — a single consumer, so the event log is totally
/// ordered. `bound` decides how much staleness may accumulate between
/// head refreshes; [`StalenessBound::immediate`] keeps the index exact
/// after every event.
///
/// # Errors
///
/// Fails when the address cannot be bound, when the model factory
/// panics, or when the exported artifact does not validate.
pub fn serve_live<F>(
    factory: F,
    bound: StalenessBound,
    config: &ServeConfig,
) -> io::Result<ServerHandle>
where
    F: FnOnce() -> Box<dyn LiveTrustModel> + Send + 'static,
{
    let (boot_tx, boot_rx) = mpsc::channel();
    let (ingest_tx, ingest_rx) = mpsc::channel::<IngestJob>();
    let kind = config.backend.unwrap_or_else(BackendKind::from_env);
    let defense = config.defense.clone();
    let applier = std::thread::spawn(move || {
        let model = factory();
        let index = match TrustIndex::from_artifact_with(model.export_artifact(), kind) {
            Ok(index) => index,
            Err(e) => {
                let _ = boot_tx.send(Err(format!("exported artifact invalid: {e}")));
                return;
            }
        };
        let index = match defense {
            Some(defense) => match index.with_defense(defense) {
                Ok(index) => index,
                Err(e) => {
                    let _ = boot_tx.send(Err(format!("defense prior rejected: {e}")));
                    return;
                }
            },
            None => index,
        };
        let shared = Arc::new(SharedIndex::new(index));
        if boot_tx.send(Ok(Arc::clone(&shared))).is_err() {
            return; // serve_shared failed to bind; nothing to apply onto
        }
        run_applier(&ingest_rx, model, bound, &shared);
    });
    let shared = match boot_rx.recv() {
        Ok(Ok(shared)) => shared,
        Ok(Err(msg)) => {
            let _ = applier.join();
            return Err(io::Error::new(io::ErrorKind::InvalidData, msg));
        }
        // The factory panicked before reporting anything.
        Err(_) => {
            let _ = applier.join();
            return Err(io::Error::other("live model construction failed"));
        }
    };
    serve_shared(shared, config, Some((ingest_tx, applier)))
}

/// The applier loop: single consumer of the ingest channel. Each batch
/// folds into the model through an [`EventApplier`]; refreshed head rows
/// are patched into the shared index under short write locks. A mid-batch
/// failure stops the batch, but the successfully applied prefix is still
/// flushed so the reply always describes an index that has caught up with
/// everything that was applied.
fn run_applier(
    jobs: &mpsc::Receiver<IngestJob>,
    model: Box<dyn LiveTrustModel>,
    bound: StalenessBound,
    index: &SharedIndex,
) {
    let mut applier = EventApplier::new(model, bound);
    while let Ok(job) = jobs.recv() {
        let picked_up_us = trace_now_us();
        let _scope = ahntp_telemetry::set_trace_id_scope(job.trace_id);
        let _span = KernelSpan::enter("serve.ingest", KernelKind::Other);
        histogram_record("serve.ingest.batch_size", job.events.len() as u64);
        let mut applied = 0usize;
        let mut affected = 0usize;
        let mut refreshed = 0usize;
        let mut error: Option<String> = None;
        let patch_index = |patch: Option<HeadPatch>, refreshed: &mut usize| match patch {
            Some(patch) => match index.apply_head_patch(&patch) {
                Ok(()) => {
                    *refreshed += patch.users.len();
                    None
                }
                Err(e) => Some(e),
            },
            None => None,
        };
        for event in &job.events {
            match applier.apply(event) {
                Ok(a) => {
                    applied += 1;
                    affected += a.affected_users.len();
                }
                Err(e) => {
                    error = Some(e.to_string());
                    break;
                }
            }
            match applier.maybe_refresh() {
                Ok(patch) => {
                    error = patch_index(patch, &mut refreshed);
                    if error.is_some() {
                        break;
                    }
                }
                Err(e) => {
                    error = Some(e.to_string());
                    break;
                }
            }
        }
        // A fault mid-batch leaves an applied-but-unrefreshed prefix:
        // flush it so the error reply never hides index lag behind the
        // failure. (Healthy batches refresh per the staleness bound; a
        // `stream.refresh` fault keeps the dirty set, so the rows stay
        // consistent-but-stale and the next refresh retries.)
        if let Some(message) = &error {
            if let Ok(patch) = applier.force_refresh() {
                if let Some(e) = patch_index(patch, &mut refreshed) {
                    warn!("serve", "ingest flush failed: {e}");
                }
            }
            counter_add("serve.ingest.errors", 1);
            warn!("serve", "ingest batch failed after {applied} events: {message}");
        }
        let _ = job.reply.send(IngestReply {
            applied,
            affected,
            refreshed,
            dirty: applier.dirty_users().len(),
            error,
            picked_up_us,
            done_us: trace_now_us(),
        });
    }
}

/// Shared startup path for [`serve`] and [`serve_live`].
fn serve_shared(
    index: Arc<SharedIndex>,
    config: &ServeConfig,
    live: Option<(mpsc::Sender<IngestJob>, JoinHandle<()>)>,
) -> io::Result<ServerHandle> {
    if config.threads > 0 {
        ahntp_par::set_threads(config.threads);
    }
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let (ingest_tx, applier) = match live {
        Some((tx, thread)) => (Some(tx), Some(thread)),
        None => (None, None),
    };
    let shutdown = Arc::new(AtomicBool::new(false));
    let queue = Arc::new(BatchQueue::new(config.queue_capacity.max(1)));
    let traces = Arc::new(TraceRing::new(config.trace_ring));

    // Capture the backend surface once: the kind never changes after
    // startup, so workers echo a `&'static str` instead of re-reading it,
    // and the footprint/envelope gauges describe the running process.
    let (backend_name, backend_kind) = {
        let snapshot = index.read();
        gauge_set("serve.backend.bytes_per_user", snapshot.bytes_per_user() as f64);
        gauge_set(
            "serve.backend.score_error_bound",
            f64::from(snapshot.score_error_bound()),
        );
        if let Some((lo, hi)) = config.shard_range {
            if lo >= hi || hi > snapshot.n_users() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "shard range [{lo}, {hi}) invalid for an index of {} users",
                        snapshot.n_users()
                    ),
                ));
            }
        }
        (snapshot.backend_name(), snapshot.backend_kind())
    };
    let shard_range = config.shard_range;

    let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
    let conn_rx = Arc::new(Mutex::new(conn_rx));

    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if shutdown.load(Ordering::SeqCst) {
                            break; // the wake-up connection, or late arrival
                        }
                        if conn_tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(e) => {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        warn!("serve", "accept failed: {e}");
                    }
                }
            }
        })
    };

    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|_| {
            let conn_rx = Arc::clone(&conn_rx);
            let index = Arc::clone(&index);
            let queue = Arc::clone(&queue);
            let traces = Arc::clone(&traces);
            let shutdown = Arc::clone(&shutdown);
            let ingest = ingest_tx.clone();
            let read_timeout = config.read_timeout;
            let (deadline, retry_after) = (config.deadline, config.retry_after);
            std::thread::spawn(move || loop {
                // Don't hold the receiver lock while serving a connection.
                let stream = match conn_rx.lock().unwrap().recv() {
                    Ok(s) => s,
                    Err(_) => return, // acceptor gone and channel drained
                };
                let ctx = RequestCtx {
                    index: &index,
                    queue: &queue,
                    traces: &traces,
                    ingest: ingest.as_ref(),
                    deadline,
                    retry_after,
                    backend: backend_name,
                    backend_kind,
                    shard_range,
                };
                if let Err(e) = handle_connection(stream, &ctx, &shutdown, read_timeout) {
                    warn!("serve", "connection dropped: {e}");
                }
            })
        })
        .collect();

    let batcher = {
        let index = Arc::clone(&index);
        let queue = Arc::clone(&queue);
        let (max_batch, batch_wait) = (config.max_batch.max(1), config.batch_wait);
        std::thread::spawn(move || run_batcher(&queue, &index, max_batch, batch_wait))
    };

    {
        let snapshot = index.read();
        info!(
            "serve",
            "serving {} users of model {:?} on {addr} with {} workers ({}, {} backend)",
            snapshot.n_users(),
            snapshot.model(),
            config.workers.max(1),
            if ingest_tx.is_some() { "live" } else { "frozen" },
            backend_name
        );
    }
    Ok(ServerHandle {
        addr,
        shutdown,
        queue,
        acceptor: Some(acceptor),
        workers,
        batcher: Some(batcher),
        ingest: ingest_tx,
        applier,
    })
}

/// Serves one connection (keep-alive loop) until close, error, or
/// shutdown.
fn handle_connection(
    stream: TcpStream,
    ctx: &RequestCtx<'_>,
    shutdown: &AtomicBool,
    read_timeout: Duration,
) -> io::Result<()> {
    stream.set_read_timeout(Some(read_timeout))?;
    // Responses are one small write each; Nagle + delayed ACK would add
    // ~40ms per exchange.
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(Some(req)) => {
                let started = Instant::now();
                let req_ts_us = trace_now_us();
                counter_add("serve.http.requests", 1);
                let trace_id = ahntp_telemetry::next_trace_id();
                let mut stages: Vec<Stage> = Vec::new();
                let resp = {
                    // Ambient id for any span opened while handling this
                    // request on this thread (top-k scans, metrics, ...).
                    let _scope = ahntp_telemetry::set_trace_id_scope(trace_id);
                    route(&req, ctx, trace_id, &mut stages)
                };
                if resp.status >= 400 {
                    counter_add("serve.http.errors", 1);
                }
                let mut headers: Vec<(&str, String)> = vec![
                    ("X-Ahntp-Trace-Id", format!("{trace_id:016x}")),
                    ("X-Ahntp-Backend", ctx.backend.to_string()),
                ];
                if let Some(secs) = resp.retry_after {
                    headers.push(("Retry-After", secs.to_string()));
                }
                // Finish the in-flight response even during shutdown, but
                // don't invite another request.
                let keep_alive = !req.wants_close() && !shutdown.load(Ordering::SeqCst);
                let (status, reason) = (resp.status, resp.reason);
                let (content_type, body) = match resp.text {
                    Some((ct, text)) => (ct, text.into_bytes()),
                    None => ("application/json", resp.body.to_line().into_bytes()),
                };
                write_response_with(
                    &mut writer,
                    status,
                    reason,
                    content_type,
                    &headers,
                    &body,
                    keep_alive,
                )?;
                let us = started.elapsed().as_micros() as u64;
                histogram_record("serve.request.us", us);
                // Access log: off by default (Info floor); enable with
                // AHNTP_LOG=serve.access=debug.
                debug!(
                    "serve.access",
                    "{} {} {status} {us}us trace={trace_id:016x}",
                    req.method,
                    req.path
                );
                if ahntp_telemetry::trace_collecting() {
                    // Request lane: one serve.request span with the
                    // stages nested under the same (pid, tid).
                    ahntp_telemetry::trace_complete_request(
                        "serve.request",
                        req_ts_us,
                        us,
                        trace_id,
                    );
                    for s in &stages {
                        ahntp_telemetry::trace_complete_request(
                            s.name, s.ts_us, s.dur_us, trace_id,
                        );
                    }
                }
                ctx.traces.push(RequestTrace {
                    trace_id,
                    method: req.method.clone(),
                    path: req.path.clone(),
                    status,
                    ts_us: req_ts_us,
                    dur_us: us,
                    stages,
                });
                if !keep_alive {
                    return Ok(());
                }
            }
            Ok(None) => return Ok(()), // peer closed between requests
            Err(HttpError::Io(e))
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                // Idle keep-alive poll tick; only exit once shutdown is on.
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(HttpError::Io(e)) => return Err(e),
            Err(HttpError::BadRequest(m)) => {
                counter_add("serve.http.errors", 1);
                let body = Json::obj([("error", Json::from(m.as_str()))]).to_line();
                write_response(&mut writer, 400, "Bad Request", "application/json",
                    body.as_bytes(), false)?;
                return Ok(());
            }
            Err(HttpError::TooLarge) => {
                counter_add("serve.http.errors", 1);
                let body =
                    Json::obj([("error", Json::from("body too large"))]).to_line();
                write_response(&mut writer, 413, "Payload Too Large", "application/json",
                    body.as_bytes(), false)?;
                return Ok(());
            }
        }
        writer.flush()?;
    }
}

/// Dispatches one request to its endpoint.
///
/// `GET /healthz` is answered inline without touching the batch queue:
/// liveness probes keep working while scoring is shedding, degraded, or
/// stalled.
fn route(
    req: &Request,
    ctx: &RequestCtx<'_>,
    trace_id: u64,
    stages: &mut Vec<Stage>,
) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/score") => score_endpoint(req, ctx, trace_id, stages),
        ("POST", "/events") => events_endpoint(req, ctx, trace_id, stages),
        ("POST", "/admin/swap") => swap_endpoint(req, ctx),
        ("GET", "/topk") => topk_endpoint(req, &ctx.index.read(), ctx.shard_range),
        ("GET", "/healthz") => {
            let index = ctx.index.read();
            let mut entries = vec![
                ("status", Json::from("ok")),
                ("model", index.model().into()),
                ("n_users", index.n_users().into()),
                // Hex string: u64 fingerprints don't fit in JSON's f64.
                ("fingerprint", format!("{:016x}", index.fingerprint()).into()),
                // Whether this server ingests live trust events.
                ("live", ctx.ingest.is_some().into()),
                // Active scoring backend and its stated envelope.
                ("backend", index.backend_name().into()),
                ("backend_bytes_per_user", index.bytes_per_user().into()),
                ("backend_score_error_bound", index.score_error_bound().into()),
                ("backend_approximate_topk", index.approximate_top_k().into()),
                // Whether the artifact is still a zero-copy mapped view.
                ("mapped", index.is_mapped().into()),
                // Whether served scores are Sybil-defense blended.
                ("defended", index.defended().into()),
            ];
            if let Some(defense) = index.defense() {
                entries.push(("defense_alpha", defense.alpha().into()));
            }
            // Shard servers advertise their owned trustee range so a
            // front tier can discover the cluster layout from /healthz.
            if let Some((lo, hi)) = ctx.shard_range {
                entries.push(("shard_lo", lo.into()));
                entries.push(("shard_hi", hi.into()));
            }
            Response::new(200, "OK", Json::obj(entries))
        }
        ("GET", "/metrics") => match req.query.get("format").map(String::as_str) {
            Some("prometheus") => {
                Response::text("text/plain; version=0.0.4", metrics_prometheus_text())
            }
            Some(other) => Response::error(
                400,
                "Bad Request",
                &format!("unknown metrics format {other:?} (try \"prometheus\")"),
            ),
            None => Response::new(200, "OK", metrics_snapshot_json()),
        },
        ("GET", "/metrics/prometheus") => {
            Response::text("text/plain; version=0.0.4", metrics_prometheus_text())
        }
        // The last trace_ring requests with their stage timings.
        ("GET", "/debug/traces") => Response::new(200, "OK", ctx.traces.to_json()),
        // The live Chrome trace buffer (empty unless collection is on).
        ("GET", "/debug/trace.json") => {
            Response::new(200, "OK", ahntp_telemetry::chrome_trace_json())
        }
        (_, "/score") | (_, "/events") | (_, "/admin/swap") | (_, "/topk") | (_, "/healthz")
        | (_, "/metrics") | (_, "/metrics/prometheus") | (_, "/debug/traces")
        | (_, "/debug/trace.json") => {
            Response::error(405, "Method Not Allowed", "method not allowed")
        }
        _ => Response::error(404, "Not Found", "no such endpoint"),
    }
}

/// Reads `{"pairs": [[u, v], ...]}` out of a `/score` body (shared with
/// the sharded front tier, which re-groups pairs by owning shard).
pub(crate) fn parse_pairs(body: &[u8]) -> Result<Vec<(usize, usize)>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = parse(text).map_err(|e| format!("body is not JSON: {e}"))?;
    let Some(Json::Arr(items)) = doc.get("pairs") else {
        return Err("body must be {\"pairs\": [[trustor, trustee], ...]}".to_string());
    };
    let as_user = |v: &Json| -> Result<usize, String> {
        match v.as_f64() {
            Some(n) if n >= 0.0 && n.fract() == 0.0 && n <= u32::MAX as f64 => Ok(n as usize),
            _ => Err(format!("user ids must be non-negative integers, got {}", v.to_line())),
        }
    };
    items
        .iter()
        .map(|item| match item {
            Json::Arr(pair) if pair.len() == 2 => {
                Ok((as_user(&pair[0])?, as_user(&pair[1])?))
            }
            other => Err(format!("each pair must be [trustor, trustee], got {}", other.to_line())),
        })
        .collect()
}

/// A load-shed answer: `503` + `Retry-After`, counted in `serve.shed`.
fn shed(ctx: &RequestCtx<'_>, message: &str) -> Response {
    counter_add("serve.shed", 1);
    Response::error(503, "Service Unavailable", message).retry_after(ctx.retry_after)
}

fn score_endpoint(
    req: &Request,
    ctx: &RequestCtx<'_>,
    trace_id: u64,
    stages: &mut Vec<Stage>,
) -> Response {
    let started = Instant::now();
    let parse_ts = trace_now_us();
    ahntp_faultz::failpoint!("serve.request", |_inj| Response::error(
        500,
        "Internal Server Error",
        "injected fault in request handling",
    ));
    let pairs = match parse_pairs(&req.body) {
        Ok(p) => p,
        Err(m) => return Response::error(400, "Bad Request", &m),
    };
    stages.push(Stage {
        name: "serve.parse",
        ts_us: parse_ts,
        dur_us: trace_now_us().saturating_sub(parse_ts),
    });
    // Chaos hook: pretend the queue rejected the job.
    ahntp_faultz::failpoint!("serve.enqueue", |_inj| shed(ctx, "scoring queue full"));
    let (reply_tx, reply_rx) = mpsc::channel();
    let enqueue_ts = trace_now_us();
    if !ctx.queue.push(ScoreJob { pairs, trace_id, reply: reply_tx }) {
        return shed(ctx, "scoring queue full");
    }
    let enqueued_us = trace_now_us();
    stages.push(Stage {
        name: "serve.enqueue",
        ts_us: enqueue_ts,
        dur_us: enqueued_us.saturating_sub(enqueue_ts),
    });
    // The deadline budget started when the request began parsing; wait
    // only for what is left of it.
    let remaining = ctx.deadline.saturating_sub(started.elapsed());
    let reply = reply_rx.recv_timeout(remaining);
    if let Ok(reply) = &reply {
        // Attribute the wait: queued until the batcher drained the job,
        // then scoring until the batch kernel finished.
        stages.push(Stage {
            name: "serve.queue.wait",
            ts_us: enqueued_us,
            dur_us: reply.picked_up_us.saturating_sub(enqueued_us),
        });
        stages.push(Stage {
            name: if reply.degraded { "serve.score.degraded" } else { "serve.score" },
            ts_us: reply.picked_up_us,
            dur_us: reply.scored_us.saturating_sub(reply.picked_up_us),
        });
    }
    match reply.map(|r| r.result) {
        Ok(Ok(scores)) => Response::new(
            200,
            "OK",
            Json::obj([
                (
                    "scores",
                    Json::Arr(scores.into_iter().map(Json::from).collect()),
                ),
                ("backend", ctx.backend.into()),
            ]),
        ),
        Ok(Err(e)) => Response::error(400, "Bad Request", &e.to_string()),
        Err(mpsc::RecvTimeoutError::Timeout) => {
            // The job may still complete inside the batcher; the reply
            // channel is simply dropped and its send ignored.
            counter_add("serve.deadline_exceeded", 1);
            Response::error(504, "Gateway Timeout", "scoring deadline exceeded")
                .retry_after(ctx.retry_after)
        }
        // Batcher went away mid-flight (shutdown race): overloaded-style
        // answer rather than a hung worker.
        Err(mpsc::RecvTimeoutError::Disconnected) => shed(ctx, "scoring backend stopped"),
    }
}

/// `POST /events`: parses a trust-event batch, hands it to the applier
/// thread, and reports what was applied. A partial failure (invalid
/// event, armed `stream.*` failpoint) answers `500` with the applied
/// prefix length; the index has still caught up with that prefix.
fn events_endpoint(
    req: &Request,
    ctx: &RequestCtx<'_>,
    trace_id: u64,
    stages: &mut Vec<Stage>,
) -> Response {
    let started = Instant::now();
    let parse_ts = trace_now_us();
    // Chaos hook: fail ingest before anything reaches the applier.
    ahntp_faultz::failpoint!("serve.ingest", |_inj| Response::error(
        500,
        "Internal Server Error",
        "injected fault in event ingest",
    ));
    let Some(ingest) = ctx.ingest else {
        return Response::error(
            501,
            "Not Implemented",
            "this server serves a frozen artifact; start it with serve_live to ingest events",
        );
    };
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "Bad Request", "body is not UTF-8"),
    };
    let events = match parse_events(text) {
        Ok(e) => e,
        Err(m) => return Response::error(400, "Bad Request", &m),
    };
    stages.push(Stage {
        name: "serve.parse",
        ts_us: parse_ts,
        dur_us: trace_now_us().saturating_sub(parse_ts),
    });
    let n_events = events.len();
    let (reply_tx, reply_rx) = mpsc::channel();
    let enqueue_ts = trace_now_us();
    if ingest.send(IngestJob { events, trace_id, reply: reply_tx }).is_err() {
        return shed(ctx, "ingest backend stopped");
    }
    let enqueued_us = trace_now_us();
    stages.push(Stage {
        name: "serve.enqueue",
        ts_us: enqueue_ts,
        dur_us: enqueued_us.saturating_sub(enqueue_ts),
    });
    let remaining = ctx.deadline.saturating_sub(started.elapsed());
    match reply_rx.recv_timeout(remaining) {
        Ok(reply) => {
            stages.push(Stage {
                name: "serve.ingest.wait",
                ts_us: enqueued_us,
                dur_us: reply.picked_up_us.saturating_sub(enqueued_us),
            });
            stages.push(Stage {
                name: "serve.ingest.apply",
                ts_us: reply.picked_up_us,
                dur_us: reply.done_us.saturating_sub(reply.picked_up_us),
            });
            let mut entries = vec![
                ("events", Json::from(n_events)),
                ("applied", Json::from(reply.applied)),
                ("affected_users", Json::from(reply.affected)),
                ("refreshed_users", Json::from(reply.refreshed)),
                ("dirty_users", Json::from(reply.dirty)),
            ];
            match reply.error {
                None => Response::new(200, "OK", Json::obj(entries)),
                Some(e) => {
                    entries.push(("error", Json::from(e)));
                    Response::new(500, "Internal Server Error", Json::obj(entries))
                }
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            // The batch may still land; only this reply is abandoned.
            counter_add("serve.deadline_exceeded", 1);
            Response::error(504, "Gateway Timeout", "ingest deadline exceeded")
                .retry_after(ctx.retry_after)
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => shed(ctx, "ingest backend stopped"),
    }
}

/// `POST /admin/swap`: atomically replaces the served snapshot with one
/// opened (zero-copy when the frame is v2) from `{"path": "..."}`.
///
/// The new index is fully built — mapped/decoded, CRC-checked, validated,
/// backend constructed — *before* the write lock is taken, so in-flight
/// requests keep scoring the old snapshot throughout and a crash anywhere
/// before the final swap leaves the old snapshot serving. Refusals are
/// typed: `409` when the offered snapshot's fingerprint or shape
/// disagrees with the serving one, `422` when the file is torn or
/// corrupt (CRC/offsets-table failures surface here as errors, never
/// panics), `500` when the `shard.swap` failpoint injects a fault.
fn swap_endpoint(req: &Request, ctx: &RequestCtx<'_>) -> Response {
    ahntp_faultz::failpoint!("shard.swap", |_inj| Response::error(
        500,
        "Internal Server Error",
        "injected fault in snapshot swap",
    ));
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "Bad Request", "body is not UTF-8"),
    };
    let doc = match parse(text) {
        Ok(d) => d,
        Err(e) => return Response::error(400, "Bad Request", &format!("body is not JSON: {e}")),
    };
    let Some(path) = doc.get("path").and_then(Json::as_str) else {
        return Response::error(400, "Bad Request", "body must be {\"path\": \"...\"}");
    };
    // Build outside the lock: the expensive part of the swap happens
    // while the old snapshot keeps serving.
    let new = match TrustIndex::open_with(path, ctx.backend_kind) {
        Ok(index) => index,
        Err(e) => {
            counter_add("serve.swap.errors", 1);
            return Response::error(
                422,
                "Unprocessable Entity",
                &format!("snapshot {path:?} unusable: {e}"),
            );
        }
    };
    let summary = Json::obj([
        ("swapped", true.into()),
        ("path", path.into()),
        ("fingerprint", format!("{:016x}", new.fingerprint()).into()),
        ("n_users", new.n_users().into()),
        ("mapped", new.is_mapped().into()),
        ("backend", ctx.backend.into()),
    ]);
    match ctx.index.swap(new) {
        Ok(()) => {
            info!("serve", "snapshot swapped in from {path:?}");
            Response::new(200, "OK", summary)
        }
        Err(e) => {
            counter_add("serve.swap.refused", 1);
            Response::error(409, "Conflict", &e.to_string())
        }
    }
}

fn topk_endpoint(
    req: &Request,
    index: &TrustIndex,
    shard_range: Option<(usize, usize)>,
) -> Response {
    let user = match req.query_usize("user") {
        Ok(u) => u,
        Err(m) => return Response::error(400, "Bad Request", &m),
    };
    let k = match req.query.get("k") {
        Some(_) => match req.query_usize("k") {
            Ok(k) => k,
            Err(m) => return Response::error(400, "Bad Request", &m),
        },
        None => 10,
    };
    // A shard scans only its owned trustee range (exact arithmetic, so a
    // front-tier merge reproduces the single-node exact scan bitwise); a
    // whole-space server scans through its configured backend.
    let result = match shard_range {
        Some((lo, hi)) => index.top_k_trustees_in(user, k, lo, hi),
        None => index.top_k_trustees(user, k),
    };
    match result {
        Ok(top) => Response::new(
            200,
            "OK",
            Json::obj([
                ("user", user.into()),
                (
                    "trustees",
                    Json::Arr(
                        top.into_iter()
                            .map(|(v, s)| {
                                Json::obj([("user", v.into()), ("score", s.into())])
                            })
                            .collect(),
                    ),
                ),
                ("backend", index.backend_name().into()),
            ]),
        ),
        Err(e) => Response::error(400, "Bad Request", &e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahntp_nn::TrustArtifact;
    use std::io::{BufRead, Read};

    fn toy_index(n_users: usize) -> TrustIndex {
        // Unit rows at distinct angles around the circle.
        let row = |i: usize| {
            let a = i as f32 * 0.7;
            vec![a.cos(), a.sin()]
        };
        let artifact = TrustArtifact {
            model: "AHNTP".to_string(),
            fingerprint: 0xfeed_beef_0000_0001,
            calibration: 0.5,
            n_users,
            emb_dim: 2,
            head_dim: 2,
            embeddings: vec![0.0; n_users * 2].into(),
            trustor_head: (0..n_users).flat_map(row).collect(),
            trustee_head: (0..n_users).rev().flat_map(row).collect(),
        };
        TrustIndex::from_artifact(artifact).unwrap()
    }

    fn start(n_users: usize) -> ServerHandle {
        ahntp_telemetry::set_enabled(true);
        serve(
            toy_index(n_users),
            &ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
        )
        .expect("bind 127.0.0.1:0")
    }

    /// Blocking one-shot HTTP exchange; returns (status, body).
    fn exchange(addr: SocketAddr, request: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut reader = BufReader::new(&mut stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line.trim_end().is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        (status, String::from_utf8(body).unwrap())
    }

    fn post_score(addr: SocketAddr, body: &str) -> (u16, String) {
        exchange(
            addr,
            &format!(
                "POST /score HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    #[test]
    fn score_endpoint_matches_the_index() {
        let server = start(6);
        let addr = server.addr();
        let index = toy_index(6);
        let (status, body) = post_score(addr, r#"{"pairs":[[0,1],[2,5],[3,3]]}"#);
        assert_eq!(status, 200, "{body}");
        let doc = parse(&body).unwrap();
        let Some(Json::Arr(scores)) = doc.get("scores") else {
            panic!("no scores in {body}");
        };
        let expected = index.score_pairs(&[(0, 1), (2, 5), (3, 3)]).unwrap();
        assert_eq!(scores.len(), expected.len());
        for (got, want) in scores.iter().zip(&expected) {
            let got = got.as_f64().unwrap();
            assert!((got - f64::from(*want)).abs() < 1e-6, "{got} vs {want}");
        }
        server.shutdown();
    }

    #[test]
    fn bad_requests_get_typed_errors() {
        let server = start(4);
        let addr = server.addr();
        let (status, body) = post_score(addr, "not json at all");
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("JSON"), "{body}");
        let (status, body) = post_score(addr, r#"{"pairs":[[0,99]]}"#);
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("out of range"), "{body}");
        let (status, _) = post_score(addr, r#"{"pairs":[[0,-1]]}"#);
        assert_eq!(status, 400);
        let (status, _) = exchange(addr, "GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 404);
        let (status, _) = exchange(addr, "PUT /score HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 405);
        server.shutdown();
    }

    #[test]
    fn topk_healthz_and_metrics_respond() {
        let server = start(5);
        let addr = server.addr();
        let (status, body) =
            exchange(addr, "GET /topk?user=0&k=3 HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 200, "{body}");
        let doc = parse(&body).unwrap();
        let Some(Json::Arr(trustees)) = doc.get("trustees") else {
            panic!("no trustees in {body}");
        };
        assert_eq!(trustees.len(), 3);
        let expected = toy_index(5).top_k_trustees(0, 3).unwrap();
        for (item, (user, _)) in trustees.iter().zip(&expected) {
            assert_eq!(item.get("user").and_then(Json::as_f64), Some(*user as f64));
        }

        let (status, body) =
            exchange(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 200);
        let doc = parse(&body).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(doc.get("n_users").and_then(Json::as_f64), Some(5.0));
        assert_eq!(
            doc.get("fingerprint").and_then(Json::as_str),
            Some("feedbeef00000001")
        );

        let (status, body) =
            exchange(addr, "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 200);
        let doc = parse(&body).unwrap();
        // At least the requests we just made are visible.
        assert!(
            doc.get("serve.http.requests").and_then(Json::as_f64).unwrap_or(0.0) >= 2.0,
            "{body}"
        );
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests_per_connection() {
        let server = start(4);
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        for _ in 0..3 {
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
                .unwrap();
            let mut reader = BufReader::new(&stream);
            let mut status_line = String::new();
            reader.read_line(&mut status_line).unwrap();
            assert!(status_line.contains("200"), "{status_line}");
            let mut content_length = 0usize;
            loop {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                if line.trim_end().is_empty() {
                    break;
                }
                if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                    content_length = v.trim().parse().unwrap();
                }
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body).unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_completes_inflight_requests() {
        let server = start(8);
        let addr = server.addr();
        // Hammer the server from several client threads while the main
        // thread shuts it down; every exchange must either complete with
        // 200/503 or fail at the socket level — never hang or panic.
        let clients: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut completed = 0usize;
                    for _ in 0..20 {
                        let mut stream = match TcpStream::connect(addr) {
                            Ok(s) => s,
                            Err(_) => break, // listener already closed
                        };
                        let body = r#"{"pairs":[[0,1],[2,3],[4,5]]}"#;
                        let req = format!(
                            "POST /score HTTP/1.1\r\nContent-Length: {}\r\n\
                             Connection: close\r\n\r\n{body}",
                            body.len()
                        );
                        if stream.write_all(req.as_bytes()).is_err() {
                            break;
                        }
                        let mut response = String::new();
                        if BufReader::new(&stream).read_to_string(&mut response).is_err() {
                            break;
                        }
                        if response.is_empty() {
                            break; // connection accepted but never served
                        }
                        assert!(
                            response.starts_with("HTTP/1.1 200")
                                || response.starts_with("HTTP/1.1 503"),
                            "unexpected response: {response:?}"
                        );
                        if response.starts_with("HTTP/1.1 200") {
                            completed += 1;
                        }
                    }
                    completed
                })
            })
            .collect();
        // Let the clients get going, then pull the plug.
        std::thread::sleep(Duration::from_millis(30));
        server.shutdown();
        let total: usize = clients.into_iter().map(|c| c.join().unwrap()).sum();
        assert!(total > 0, "no request completed before shutdown");
    }

    #[test]
    fn full_queue_answers_503() {
        // Capacity-1 queue and a parked batcher thread can't be arranged
        // without hooks; instead stop the queue directly and check the
        // push path degrades to 503.
        let queue = BatchQueue::new(1);
        queue.stop();
        let (tx, _rx) = mpsc::channel();
        assert!(!queue.push(ScoreJob { pairs: vec![(0, 0)], trace_id: 1, reply: tx }));
    }

    fn score_request() -> Request {
        Request {
            method: "POST".to_string(),
            path: "/score".to_string(),
            query: std::collections::BTreeMap::new(),
            headers: std::collections::BTreeMap::new(),
            body: br#"{"pairs":[[0,1]]}"#.to_vec(),
        }
    }

    #[test]
    fn deadline_and_shed_responses_carry_retry_after() {
        ahntp_telemetry::set_enabled(true);
        let index = SharedIndex::new(toy_index(4));
        // Capacity-1 queue with no batcher: the first job is accepted but
        // never answered (deadline path), which leaves the queue full so
        // the second job is shed.
        let queue = BatchQueue::new(1);
        let traces = TraceRing::new(4);
        let ctx = RequestCtx {
            index: &index,
            queue: &queue,
            traces: &traces,
            ingest: None,
            deadline: Duration::from_millis(20),
            retry_after: Duration::from_secs(2),
            backend: "exact",
            backend_kind: BackendKind::Exact,
            shard_range: None,
        };
        let deadline0 = ahntp_telemetry::counter_get("serve.deadline_exceeded");
        let shed0 = ahntp_telemetry::counter_get("serve.shed");
        let resp = score_endpoint(&score_request(), &ctx, 1, &mut Vec::new());
        assert_eq!(resp.status, 504, "{}", resp.body.to_line());
        assert_eq!(resp.retry_after, Some(2));
        assert!(ahntp_telemetry::counter_get("serve.deadline_exceeded") > deadline0);
        let resp = score_endpoint(&score_request(), &ctx, 2, &mut Vec::new());
        assert_eq!(resp.status, 503, "{}", resp.body.to_line());
        assert_eq!(resp.retry_after, Some(2));
        assert!(ahntp_telemetry::counter_get("serve.shed") > shed0);
    }

    #[test]
    fn healthz_bypasses_the_scoring_queue() {
        let index = SharedIndex::new(toy_index(3));
        let queue = BatchQueue::new(1);
        queue.stop(); // scoring is completely dead...
        let traces = TraceRing::new(4);
        let ctx = RequestCtx {
            index: &index,
            queue: &queue,
            traces: &traces,
            ingest: None,
            deadline: Duration::from_millis(5),
            retry_after: Duration::from_secs(1),
            backend: "exact",
            backend_kind: BackendKind::Exact,
            shard_range: None,
        };
        let req = Request {
            method: "GET".to_string(),
            path: "/healthz".to_string(),
            query: std::collections::BTreeMap::new(),
            headers: std::collections::BTreeMap::new(),
            body: Vec::new(),
        };
        let resp = route(&req, &ctx, 1, &mut Vec::new());
        assert_eq!(resp.status, 200, "...but liveness still answers");
        // While /score correctly sheds.
        let resp = route(&score_request(), &ctx, 2, &mut Vec::new());
        assert_eq!(resp.status, 503);
        assert_eq!(resp.retry_after, Some(1));
    }

    /// One-shot exchange that also returns the response headers.
    fn exchange_with_headers(
        addr: SocketAddr,
        request: &str,
    ) -> (u16, Vec<(String, String)>, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut reader = BufReader::new(&mut stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line.trim_end().is_empty() {
                break;
            }
            let (name, value) = line.split_once(':').expect("header line");
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap();
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        (status, headers, String::from_utf8(body).unwrap())
    }

    #[test]
    fn every_response_carries_a_trace_id_recorded_in_the_debug_ring() {
        let server = start(4);
        let addr = server.addr();
        let body = r#"{"pairs":[[0,1]]}"#;
        let (status, headers, _) = exchange_with_headers(
            addr,
            &format!(
                "POST /score HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            ),
        );
        assert_eq!(status, 200);
        let trace_id = headers
            .iter()
            .find(|(n, _)| n == "x-ahntp-trace-id")
            .map(|(_, v)| v.clone())
            .expect("X-Ahntp-Trace-Id header on every response");
        assert_eq!(trace_id.len(), 16, "hex wire format: {trace_id}");
        assert!(trace_id.chars().all(|c| c.is_ascii_hexdigit()));

        // The ring remembers the request, with its stage breakdown.
        let (status, body) =
            exchange(addr, "GET /debug/traces HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 200);
        let doc = parse(&body).unwrap();
        let Some(Json::Arr(traces)) = doc.get("traces") else {
            panic!("no traces in {body}");
        };
        let scored = traces
            .iter()
            .find(|t| t.get("path").and_then(Json::as_str) == Some("/score"))
            .expect("the /score request is in the ring");
        assert_eq!(scored.get("trace_id").and_then(Json::as_str), Some(trace_id.as_str()));
        let Some(Json::Arr(stages)) = scored.get("stages") else {
            panic!("no stages in {}", scored.to_line());
        };
        let names: Vec<_> = stages
            .iter()
            .filter_map(|s| s.get("name").and_then(Json::as_str).map(str::to_string))
            .collect();
        for want in ["serve.parse", "serve.enqueue", "serve.queue.wait", "serve.score"] {
            assert!(names.iter().any(|n| n == want), "missing {want} in {names:?}");
        }
        server.shutdown();
    }

    /// Satellite: the active backend is visible on the wire — `backend`
    /// JSON field on `/score`, `/topk`, `/healthz`, plus an
    /// `X-Ahntp-Backend` header on every response — and
    /// [`ServeConfig::backend`] actually switches it.
    #[test]
    fn responses_carry_the_active_backend() {
        ahntp_telemetry::set_enabled(true);
        for kind in [None, Some(BackendKind::Int8)] {
            let server = serve(
                toy_index(6),
                &ServeConfig { workers: 2, backend: kind, ..ServeConfig::default() },
            )
            .unwrap();
            let addr = server.addr();
            let want = kind.unwrap_or_default().name();

            let body = r#"{"pairs":[[0,1]]}"#;
            let (status, headers, body) = exchange_with_headers(
                addr,
                &format!(
                    "POST /score HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                ),
            );
            assert_eq!(status, 200, "{body}");
            let header = headers
                .iter()
                .find(|(n, _)| n == "x-ahntp-backend")
                .map(|(_, v)| v.as_str())
                .expect("X-Ahntp-Backend header on every response");
            assert_eq!(header, want);
            let doc = parse(&body).unwrap();
            assert_eq!(doc.get("backend").and_then(Json::as_str), Some(want), "{body}");

            let (_, body) =
                exchange(addr, "GET /topk?user=0&k=2 HTTP/1.1\r\nConnection: close\r\n\r\n");
            let doc = parse(&body).unwrap();
            assert_eq!(doc.get("backend").and_then(Json::as_str), Some(want), "{body}");

            let (_, body) =
                exchange(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
            let doc = parse(&body).unwrap();
            assert_eq!(doc.get("backend").and_then(Json::as_str), Some(want), "{body}");
            assert!(
                doc.get("backend_bytes_per_user").and_then(Json::as_f64).unwrap_or(0.0) > 0.0,
                "{body}"
            );
            let bound = doc
                .get("backend_score_error_bound")
                .and_then(Json::as_f64)
                .expect("error bound in healthz");
            if kind.is_some() {
                assert!(bound > 0.0, "int8 must state a nonzero envelope: {body}");
            } else {
                assert_eq!(bound, 0.0, "{body}");
            }
            // The error paths carry the header too.
            let (status, headers, _) = exchange_with_headers(
                addr,
                "GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n",
            );
            assert_eq!(status, 404);
            assert!(headers.iter().any(|(n, v)| n == "x-ahntp-backend" && v == want));
            server.shutdown();
        }
    }

    #[test]
    fn prometheus_and_debug_trace_endpoints_respond() {
        let server = start(4);
        let addr = server.addr();
        for path in ["/metrics/prometheus", "/metrics?format=prometheus"] {
            let (status, headers, body) = exchange_with_headers(
                addr,
                &format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n"),
            );
            assert_eq!(status, 200, "{path}: {body}");
            let ct = headers
                .iter()
                .find(|(n, _)| n == "content-type")
                .map(|(_, v)| v.as_str())
                .unwrap();
            assert!(ct.starts_with("text/plain"), "{path}: {ct}");
            assert!(body.contains("# TYPE serve_http_requests counter"), "{path}: {body}");
        }
        let (status, body) = exchange(
            addr,
            "GET /metrics?format=msgpack HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 400, "{body}");

        // /debug/trace.json always parses, even with collection off.
        let (status, body) =
            exchange(addr, "GET /debug/trace.json HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 200);
        let doc = parse(&body).unwrap();
        assert!(doc.get("traceEvents").is_some(), "{body}");
        server.shutdown();
    }

    use ahntp_hypergraph::HypergraphError;
    use ahntp_stream::AppliedEvent;

    /// Minimal live model: each user is an angle; adding an edge rotates
    /// its members by the edge weight. Weight-only events affect nobody,
    /// matching the real model's semantics.
    struct ToyLive {
        angles: Vec<f32>,
    }

    impl ToyLive {
        fn new(n: usize) -> ToyLive {
            ToyLive { angles: (0..n).map(|u| u as f32 * 0.9).collect() }
        }

        fn rows(&self, users: &[usize]) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
            let emb = users.iter().flat_map(|&u| [self.angles[u], 1.0]).collect();
            let trustor = users
                .iter()
                .flat_map(|&u| [self.angles[u].cos(), self.angles[u].sin()])
                .collect();
            let trustee = users
                .iter()
                .flat_map(|&u| [(self.angles[u] + 0.5).cos(), (self.angles[u] + 0.5).sin()])
                .collect();
            (emb, trustor, trustee)
        }
    }

    impl LiveTrustModel for ToyLive {
        fn n_users(&self) -> usize {
            self.angles.len()
        }

        fn apply_event(
            &mut self,
            event: &TrustEvent,
        ) -> Result<AppliedEvent, ahntp_stream::StreamError> {
            match event {
                TrustEvent::AddEdge { members, weight, .. } => {
                    let n = self.angles.len();
                    if let Some(&v) = members.iter().find(|&&m| m >= n) {
                        return Err(HypergraphError::VertexOutOfRange { vertex: v, n }.into());
                    }
                    let mut affected: Vec<usize> = members.clone();
                    affected.sort_unstable();
                    affected.dedup();
                    for &m in &affected {
                        self.angles[m] += weight;
                    }
                    Ok(AppliedEvent { affected_users: affected })
                }
                // Weight-only semantics: heads stay exact.
                _ => Ok(AppliedEvent::default()),
            }
        }

        fn refresh_heads(&self, users: &[usize]) -> HeadPatch {
            let (emb_rows, trustor_rows, trustee_rows) = self.rows(users);
            HeadPatch {
                users: users.to_vec(),
                emb_dim: 2,
                head_dim: 2,
                emb_rows,
                trustor_rows,
                trustee_rows,
            }
        }

        fn export_artifact(&self) -> TrustArtifact {
            let all: Vec<usize> = (0..self.angles.len()).collect();
            let (embeddings, trustor_head, trustee_head) = self.rows(&all);
            TrustArtifact {
                model: "TOY-LIVE".to_string(),
                fingerprint: 0x70f0_0000_0000_0001,
                calibration: 0.5,
                n_users: self.angles.len(),
                emb_dim: 2,
                head_dim: 2,
                embeddings: embeddings.into(),
                trustor_head: trustor_head.into(),
                trustee_head: trustee_head.into(),
            }
        }

        fn rebuild_artifact(&self) -> TrustArtifact {
            self.export_artifact()
        }
    }

    fn post_events(addr: SocketAddr, body: &str) -> (u16, String) {
        exchange(
            addr,
            &format!(
                "POST /events HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    #[test]
    fn live_server_ingests_events_and_scores_from_the_patched_index() {
        ahntp_telemetry::set_enabled(true);
        let server = serve_live(
            || Box::new(ToyLive::new(5)),
            StalenessBound::immediate(),
            &ServeConfig { workers: 2, ..ServeConfig::default() },
        )
        .expect("bind live server");
        let addr = server.addr();

        let (status, body) =
            exchange(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 200);
        let doc = parse(&body).unwrap();
        assert_eq!(doc.get("live"), Some(&Json::Bool(true)), "{body}");

        let (status, body) = post_events(
            addr,
            r#"{"events":[{"op":"add","group":"node","members":[0,2],"weight":0.7}]}"#,
        );
        assert_eq!(status, 200, "{body}");
        let doc = parse(&body).unwrap();
        assert_eq!(doc.get("applied").and_then(Json::as_f64), Some(1.0), "{body}");
        assert_eq!(doc.get("affected_users").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("refreshed_users").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("dirty_users").and_then(Json::as_f64), Some(0.0));

        // The live index now answers with the mutated geometry: mirror
        // the event on a local model and compare.
        let mut mirror = ToyLive::new(5);
        mirror
            .apply_event(&TrustEvent::AddEdge {
                group: ahntp_stream::HyperGroup::Node,
                members: vec![0, 2],
                weight: 0.7,
            })
            .unwrap();
        let want = TrustIndex::from_artifact(mirror.export_artifact())
            .unwrap()
            .score_pairs(&[(0, 2), (2, 4), (1, 1)])
            .unwrap();
        let (status, body) = post_score(addr, r#"{"pairs":[[0,2],[2,4],[1,1]]}"#);
        assert_eq!(status, 200, "{body}");
        let doc = parse(&body).unwrap();
        let Some(Json::Arr(scores)) = doc.get("scores") else {
            panic!("no scores in {body}");
        };
        for (got, want) in scores.iter().zip(&want) {
            let got = got.as_f64().unwrap();
            assert!((got - f64::from(*want)).abs() < 1e-6, "{got} vs {want}");
        }

        // A malformed body is rejected before it reaches the applier.
        let (status, body) = post_events(addr, r#"{"events":[{"op":"levitate"}]}"#);
        assert_eq!(status, 400, "{body}");

        // An invalid event mid-batch: the prefix lands, the offender is
        // reported, and nothing after it applies.
        let (status, body) = post_events(
            addr,
            r#"{"events":[
                {"op":"add","group":"node","members":[1],"weight":0.1},
                {"op":"add","group":"node","members":[0,9],"weight":1.0},
                {"op":"add","group":"node","members":[3],"weight":9.9}
            ]}"#,
        );
        assert_eq!(status, 500, "{body}");
        let doc = parse(&body).unwrap();
        assert_eq!(doc.get("applied").and_then(Json::as_f64), Some(1.0), "{body}");
        assert!(
            doc.get("error").and_then(Json::as_str).unwrap_or("").contains("out of range"),
            "{body}"
        );
        // The mirror applies the same prefix; scores still agree.
        mirror
            .apply_event(&TrustEvent::AddEdge {
                group: ahntp_stream::HyperGroup::Node,
                members: vec![1],
                weight: 0.1,
            })
            .unwrap();
        let want = TrustIndex::from_artifact(mirror.export_artifact())
            .unwrap()
            .score(1, 3)
            .unwrap();
        let (status, body) = post_score(addr, r#"{"pairs":[[1,3]]}"#);
        assert_eq!(status, 200, "{body}");
        let got = parse(&body)
            .unwrap()
            .get("scores")
            .and_then(|s| match s {
                Json::Arr(a) => a[0].as_f64(),
                _ => None,
            })
            .unwrap();
        assert!((got - f64::from(want)).abs() < 1e-6, "{got} vs {want}");
        server.shutdown();
    }

    #[test]
    fn a_batched_staleness_bound_defers_refreshes_until_exceeded() {
        ahntp_telemetry::set_enabled(true);
        let server = serve_live(
            || Box::new(ToyLive::new(4)),
            StalenessBound::batched(2),
            &ServeConfig { workers: 1, ..ServeConfig::default() },
        )
        .expect("bind live server");
        let addr = server.addr();
        // Two events stay under the bound: applied but not refreshed.
        let (status, body) = post_events(
            addr,
            r#"{"events":[
                {"op":"add","group":"node","members":[0],"weight":0.3},
                {"op":"add","group":"node","members":[1],"weight":0.3}
            ]}"#,
        );
        assert_eq!(status, 200, "{body}");
        let doc = parse(&body).unwrap();
        assert_eq!(doc.get("refreshed_users").and_then(Json::as_f64), Some(0.0), "{body}");
        assert_eq!(doc.get("dirty_users").and_then(Json::as_f64), Some(2.0));
        // The third event exceeds max_pending_events = 2: everything
        // dirty refreshes in one patch.
        let (status, body) = post_events(
            addr,
            r#"{"events":[{"op":"add","group":"node","members":[2],"weight":0.3}]}"#,
        );
        assert_eq!(status, 200, "{body}");
        let doc = parse(&body).unwrap();
        assert_eq!(doc.get("refreshed_users").and_then(Json::as_f64), Some(3.0), "{body}");
        assert_eq!(doc.get("dirty_users").and_then(Json::as_f64), Some(0.0));
        server.shutdown();
    }

    #[test]
    fn events_on_a_frozen_server_answer_501() {
        let server = start(4);
        let addr = server.addr();
        let (status, body) =
            post_events(addr, r#"{"events":[{"op":"decay","factor":0.9}]}"#);
        assert_eq!(status, 501, "{body}");
        assert!(body.contains("serve_live"), "{body}");
        let (status, _) = exchange(addr, "GET /events HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 405);
        // And the frozen health check says so.
        let (status, body) =
            exchange(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 200);
        assert_eq!(parse(&body).unwrap().get("live"), Some(&Json::Bool(false)), "{body}");
        server.shutdown();
    }
}
