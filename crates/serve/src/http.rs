//! A deliberately small HTTP/1.1 implementation over `std` I/O.
//!
//! Just enough protocol for the serving endpoints: request-line, headers,
//! and `Content-Length` bodies on the way in, fixed-length responses with
//! keep-alive on the way out. No chunked encoding, no TLS, no
//! percent-decoding (user ids and counts are plain integers). Limits are
//! hard-coded and conservative because the server fronts a model, not the
//! open internet.
//!
//! Failpoints (`ahntp-faultz`): `serve.read` fires at the top of
//! [`read_request`] and `serve.write` at the top of
//! [`write_response_with`], both surfacing as injected I/O errors — the
//! chaos suite uses them to simulate flaky sockets.

use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};

/// Maximum bytes for the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request body.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed or the socket failed mid-request.
    Io(io::Error),
    /// The bytes are not HTTP we understand; the message is safe to echo
    /// into a 400 response.
    BadRequest(String),
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    TooLarge,
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

impl From<ahntp_faultz::Injected> for HttpError {
    fn from(inj: ahntp_faultz::Injected) -> HttpError {
        HttpError::Io(inj.into())
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o: {e}"),
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::TooLarge => write!(f, "request body too large"),
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, …).
    pub method: String,
    /// Path with the query string stripped (e.g. `/topk`).
    pub path: String,
    /// Query parameters, last occurrence wins.
    pub query: BTreeMap<String, String>,
    /// Headers with lower-cased names.
    pub headers: BTreeMap<String, String>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// Whether the client asked to drop the connection after this
    /// exchange. HTTP/1.1 defaults to keep-alive.
    pub fn wants_close(&self) -> bool {
        self.headers
            .get("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// A query parameter parsed to `usize`.
    ///
    /// # Errors
    ///
    /// `Err` carries a 400-ready message for missing or non-numeric
    /// values.
    pub fn query_usize(&self, name: &str) -> Result<usize, String> {
        let raw = self
            .query
            .get(name)
            .ok_or_else(|| format!("missing query parameter {name:?}"))?;
        raw.parse()
            .map_err(|_| format!("query parameter {name:?} is not a non-negative integer"))
    }
}

/// Reads one request off the stream. `Ok(None)` means the peer closed
/// cleanly between requests (normal keep-alive teardown).
///
/// # Errors
///
/// [`HttpError::Io`] on socket failure (including read timeouts, which
/// surface as `WouldBlock`/`TimedOut`), [`HttpError::BadRequest`] on
/// malformed syntax, [`HttpError::TooLarge`] on oversized bodies.
pub fn read_request(reader: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    ahntp_faultz::failpoint!("serve.read");
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_string(), t.to_string(), v),
        _ => return Err(HttpError::BadRequest(format!("bad request line {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!("unsupported version {version}")));
    }

    let mut headers = BTreeMap::new();
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(HttpError::BadRequest("eof inside headers".to_string()));
        }
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::BadRequest("headers too large".to_string()));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(HttpError::BadRequest(format!("bad header {header:?}")));
        };
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }

    let content_length = match headers.get("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest("bad content-length".to_string()))?,
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.clone(), ""),
    };
    let mut query = BTreeMap::new();
    for pair in query_str.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        query.insert(k.to_string(), v.to_string());
    }

    Ok(Some(Request {
        method,
        path,
        query,
        headers,
        body,
    }))
}

/// Writes one fixed-length response.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write_response_with(writer, status, reason, content_type, &[], body, keep_alive)
}

/// [`write_response`] plus arbitrary extra headers (e.g. `Retry-After` on
/// load-shed and deadline responses).
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response_with(
    writer: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    ahntp_faultz::failpoint!("serve.write");
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        writer,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: {connection}\r\n",
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    writer.write_all(body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_get_with_query() {
        let req = parse("GET /topk?user=3&k=10 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/topk");
        assert_eq!(req.query_usize("user"), Ok(3));
        assert_eq!(req.query_usize("k"), Ok(10));
        assert!(req.query_usize("missing").is_err());
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_a_post_body_by_content_length() {
        let req = parse(
            "POST /score HTTP/1.1\r\nContent-Type: application/json\r\n\
             Content-Length: 15\r\nConnection: close\r\n\r\n{\"pairs\":[[0,1]]}",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        // Exactly Content-Length bytes are consumed, no more.
        assert_eq!(req.body, b"{\"pairs\":[[0,1]".to_vec());
        assert!(req.wants_close());
        assert_eq!(req.headers.get("content-type").unwrap(), "application/json");
    }

    #[test]
    fn clean_eof_is_none_and_garbage_is_bad_request() {
        assert!(matches!(parse(""), Ok(None)));
        assert!(matches!(
            parse("NONSENSE\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn oversized_bodies_are_rejected_before_reading() {
        let raw = format!(
            "POST /score HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&raw), Err(HttpError::TooLarge)));
    }

    #[test]
    fn responses_have_framed_bodies() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", "application/json", b"{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn extra_headers_ride_between_the_fixed_ones_and_the_body() {
        let mut out = Vec::new();
        write_response_with(
            &mut out,
            503,
            "Service Unavailable",
            "application/json",
            &[("Retry-After", "2".to_string())],
            b"{}",
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("\r\nRetry-After: 2\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
