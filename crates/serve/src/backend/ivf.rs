//! IVF-style coarse clustering for sublinear `/topk`.
//!
//! The trustee head rows are partitioned into `nlist` posting lists by a
//! deterministic k-means (Lloyd iterations, seeded from the artifact
//! fingerprint so every process building from the same artifact builds
//! the identical index). A `/topk` query scores the trustor row against
//! the `nlist` centroids — `O(nlist · d)` — and scans only the `nprobe`
//! most-promising lists' candidates with the exact f32 dot, instead of
//! all `n` rows. Pair scoring (`/score`) is always the exact dot; only
//! the top-k *candidate set* is approximate, with recall measured against
//! the exact scan by `backend_bench` and `tests/backend_exactness.rs`.
//!
//! Probing widens past `nprobe` until at least `k` candidates have been
//! seen, and the whole query falls back to the exact banded scan whenever
//! probing would not beat it (tiny indexes, huge `k`, or `nprobe` close
//! to `nlist`) — the backend is never slower than exact by more than the
//! centroid-scan epsilon, and never returns fewer candidates than the
//! exact scan would.
//!
//! # Determinism
//!
//! Centroid seeding is an LCG over the fingerprint; Lloyd assignment is a
//! pure per-row function (parallelized over `ahntp-par` bands, banding
//! never changes any assignment) with ties toward the smaller centroid
//! id; centroid updates accumulate member rows in ascending user order;
//! posting lists are kept sorted by user id. Every step is a total order,
//! so the index — and every query — is bitwise reproducible at any
//! thread count.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ahntp_nn::TrustArtifact;
use ahntp_telemetry::counter_add;

use super::exact::scalar_band_top_k;
use super::{banded_top_k, heap_push, scalar_dot, IvfParams, Ranked, ScoringBackend};

/// Lloyd iterations at build time; fixed so builds are reproducible.
const KMEANS_ITERS: usize = 8;

/// Deterministic LCG step (same constants as the test suites').
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// IVF coarse index over the trustee head rows.
#[derive(Debug, Clone)]
pub struct IvfBackend {
    nlist: usize,
    nprobe: usize,
    /// `nlist × head_dim` row-major centroid matrix (not renormalized).
    centroids: Vec<f32>,
    /// Squared L2 norm per centroid, for the distance shortcut.
    centroid_norms: Vec<f32>,
    /// Posting list id per user.
    assign: Vec<usize>,
    /// Members per posting list, ascending user id.
    lists: Vec<Vec<usize>>,
}

impl IvfBackend {
    /// Builds the coarse index with deterministic k-means; `None` params
    /// resolve to `nlist = √n` (clamped to `[1, 1024]`) and
    /// `nprobe = max(1, nlist/4)`.
    pub fn build(artifact: &TrustArtifact, params: IvfParams) -> IvfBackend {
        let n = artifact.n_users;
        let d = artifact.head_dim;
        let default_nlist = ((n as f64).sqrt().round() as usize).clamp(1, 1024);
        let nlist = params.nlist.unwrap_or(default_nlist).clamp(1, n.max(1));
        let nprobe = params.nprobe.unwrap_or_else(|| (nlist / 4).max(1)).clamp(1, nlist);

        // Seed centroids from distinct rows picked by a fingerprint-seeded
        // LCG (salted so an untagged fingerprint of 0 still mixes).
        let mut rng = artifact.fingerprint ^ 0x41_48_4e_54_50_49_56_46; // "AHNTPIVF"
        let mut centroids = vec![0.0f32; nlist * d];
        if n > 0 {
            let mut picked = vec![false; n];
            for c in 0..nlist {
                let mut row = (lcg(&mut rng) as usize) % n;
                while picked[row] {
                    row = (row + 1) % n;
                }
                picked[row] = true;
                centroids[c * d..(c + 1) * d]
                    .copy_from_slice(&artifact.trustee_head[row * d..(row + 1) * d]);
            }
        }

        let mut backend = IvfBackend {
            nlist,
            nprobe,
            centroids,
            centroid_norms: vec![0.0; nlist],
            assign: vec![0; n],
            lists: vec![Vec::new(); nlist],
        };
        backend.refresh_centroid_norms(d);

        for _ in 0..KMEANS_ITERS {
            backend.assign_all(artifact);
            // Recompute centroids as member means, accumulating in
            // ascending user order; empty lists keep their centroid.
            let mut sums = vec![0.0f64; nlist * d];
            let mut counts = vec![0usize; nlist];
            for (u, &c) in backend.assign.iter().enumerate() {
                counts[c] += 1;
                let row = &artifact.trustee_head[u * d..(u + 1) * d];
                for (s, &v) in sums[c * d..(c + 1) * d].iter_mut().zip(row) {
                    *s += f64::from(v);
                }
            }
            for c in 0..nlist {
                if counts[c] > 0 {
                    let inv = 1.0 / counts[c] as f64;
                    for (out, &s) in backend.centroids[c * d..(c + 1) * d]
                        .iter_mut()
                        .zip(&sums[c * d..(c + 1) * d])
                    {
                        *out = (s * inv) as f32;
                    }
                }
            }
            backend.refresh_centroid_norms(d);
        }
        backend.assign_all(artifact);
        backend.rebuild_lists();
        backend
    }

    /// Effective posting-list count.
    pub fn nlist(&self) -> usize {
        self.nlist
    }

    /// Lists probed per query before the widening rule kicks in.
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }

    fn refresh_centroid_norms(&mut self, d: usize) {
        for c in 0..self.nlist {
            self.centroid_norms[c] = self.centroids[c * d..(c + 1) * d]
                .iter()
                .map(|v| v * v)
                .sum();
        }
    }

    /// Nearest centroid of one trustee row: minimal `‖x−c‖²`, which for a
    /// fixed row reduces to minimal `‖c‖² − 2⟨x,c⟩`. Strict `<` keeps the
    /// smallest centroid id on ties.
    fn nearest_centroid(&self, row: &[f32], d: usize) -> usize {
        let mut best = 0usize;
        let mut best_dist = f32::INFINITY;
        for c in 0..self.nlist {
            let dot: f32 = self.centroids[c * d..(c + 1) * d]
                .iter()
                .zip(row)
                .map(|(a, b)| a * b)
                .sum();
            let dist = self.centroid_norms[c] - 2.0 * dot;
            if dist < best_dist {
                best_dist = dist;
                best = c;
            }
        }
        best
    }

    /// Reassigns every user to its nearest centroid. The per-row decision
    /// is a pure function, so the `ahntp-par` banding is free.
    fn assign_all(&mut self, artifact: &TrustArtifact) {
        let n = artifact.n_users;
        let d = artifact.head_dim;
        if n == 0 {
            return;
        }
        if ahntp_par::par_enabled(n * self.nlist * d) && n >= 2 {
            let band = ahntp_par::band_size(n);
            let me = &*self;
            let assign: Vec<Vec<usize>> = ahntp_par::par_map(n.div_ceil(band), |bi| {
                let u0 = bi * band;
                (u0..(u0 + band).min(n))
                    .map(|u| me.nearest_centroid(&artifact.trustee_head[u * d..(u + 1) * d], d))
                    .collect()
            });
            self.assign = assign.into_iter().flatten().collect();
        } else {
            self.assign = (0..n)
                .map(|u| self.nearest_centroid(&artifact.trustee_head[u * d..(u + 1) * d], d))
                .collect();
        }
    }

    fn rebuild_lists(&mut self) {
        for list in &mut self.lists {
            list.clear();
        }
        for (u, &c) in self.assign.iter().enumerate() {
            self.lists[c].push(u); // ascending u by construction
        }
    }

    /// Whether probing is estimated to beat the exact banded scan for
    /// this query: centroid scan + expected probed candidates vs `n`.
    fn probing_pays_off(&self, n: usize, k: usize) -> bool {
        if k + 1 >= n || self.nlist < 2 || self.nprobe >= self.nlist {
            return false;
        }
        let avg_list = n.div_ceil(self.nlist);
        self.nlist + self.nprobe * avg_list < n
    }
}

impl ScoringBackend for IvfBackend {
    fn dot(&self, artifact: &TrustArtifact, trustor: usize, trustee: usize) -> f32 {
        // Pair scoring is exact: IVF only accelerates candidate search.
        scalar_dot(artifact, trustor, trustee)
    }

    fn dot_batch(&self, artifact: &TrustArtifact, pairs: &[(usize, usize)], out: &mut [f32]) {
        for (&(u, v), o) in pairs.iter().zip(out) {
            *o = scalar_dot(artifact, u, v);
        }
    }

    fn top_k(&self, artifact: &TrustArtifact, trustor: usize, k: usize) -> Vec<Ranked> {
        let n = artifact.n_users;
        let d = artifact.head_dim;
        if !self.probing_pays_off(n, k) {
            counter_add("serve.topk.ivf.fallback", 1);
            return banded_top_k(artifact, k, "serve.topk.par_calls", |c0, c1| {
                scalar_band_top_k(artifact, trustor, k, c0, c1)
            });
        }
        counter_add("serve.topk.ivf.probed_queries", 1);
        // Rank centroids by affinity to the trustor row (dot desc, id asc
        // on ties) and probe lists in that order.
        let q = &artifact.trustor_head[trustor * d..(trustor + 1) * d];
        let mut order: Vec<(f32, usize)> = (0..self.nlist)
            .map(|c| {
                let dot: f32 = self.centroids[c * d..(c + 1) * d]
                    .iter()
                    .zip(q)
                    .map(|(a, b)| a * b)
                    .sum();
                (dot, c)
            })
            .collect();
        order.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));

        let mut heap: BinaryHeap<Reverse<Ranked>> = BinaryHeap::with_capacity(k + 1);
        let mut seen = 0usize;
        let mut probed = 0usize;
        for &(_, c) in &order {
            if probed >= self.nprobe && seen >= k {
                break;
            }
            probed += 1;
            for &candidate in &self.lists[c] {
                if candidate == trustor {
                    continue;
                }
                seen += 1;
                heap_push(&mut heap, k, scalar_dot(artifact, trustor, candidate), candidate);
            }
        }
        counter_add("serve.topk.ivf.probed_lists", probed as u64);
        heap.into_iter().map(|Reverse(r)| r).collect()
    }

    fn on_patch(&mut self, artifact: &TrustArtifact, users: &[usize]) {
        // Centroids stay frozen (the standard IVF maintenance contract);
        // patched rows move between posting lists so they stay findable.
        let d = artifact.head_dim;
        for &u in users {
            let new = self.nearest_centroid(&artifact.trustee_head[u * d..(u + 1) * d], d);
            let old = self.assign[u];
            if new != old {
                let list = &mut self.lists[old];
                if let Ok(pos) = list.binary_search(&u) {
                    list.remove(pos);
                }
                let list = &mut self.lists[new];
                if let Err(pos) = list.binary_search(&u) {
                    list.insert(pos, u);
                }
                self.assign[u] = new;
            }
        }
        counter_add("serve.topk.ivf.reassigned", users.len() as u64);
    }

    fn bytes_per_user(&self, artifact: &TrustArtifact) -> usize {
        let d = artifact.head_dim;
        let n = artifact.n_users.max(1);
        // f32 heads plus the coarse index amortized across users.
        let index_bytes = self.centroids.len() * 4
            + self.centroid_norms.len() * 4
            + self.assign.len() * std::mem::size_of::<usize>()
            + self.lists.iter().map(|l| l.len() * std::mem::size_of::<usize>()).sum::<usize>();
        2 * d * std::mem::size_of::<f32>() + index_bytes.div_ceil(n)
    }

    fn score_error_bound(&self, _artifact: &TrustArtifact) -> f32 {
        0.0 // pair scoring is the exact dot
    }

    fn approximate_top_k(&self) -> bool {
        true
    }
}
