//! Pluggable scoring backends for [`crate::TrustIndex`].
//!
//! The serving hot path is one prenormalized dot product per candidate;
//! how that dot (and the `/topk` candidate scan around it) is computed is
//! a [`ScoringBackend`] decision:
//!
//! * [`exact`](ExactBackend) — the reference: scalar f32 dots, full
//!   candidate scans. Every other backend's envelope is stated against
//!   this one.
//! * [`simd`](SimdBackend) — the same arithmetic restructured for the
//!   hardware: candidates/pairs are processed in blocks of 4–8 with one
//!   independent accumulator chain per lane (runtime-dispatched width),
//!   so the compiler keeps several fused multiply-add chains in flight
//!   instead of serializing on one. Each lane accumulates its dot in the
//!   exact scalar element order, so results are **bitwise identical** to
//!   `exact` — this backend buys instruction-level parallelism, not a
//!   different rounding.
//! * [`int8`](Int8Backend) — symmetric per-row int8 quantization of both
//!   head matrices (scale vector + i32-accumulated integer dot), cutting
//!   the scoring working set ~4×. The quantization error is *measured at
//!   build time* and surfaced as a rigorous max-abs score bound
//!   ([`ScoringBackend::score_error_bound`]).
//! * [`ivf`](IvfBackend) — an IVF-style coarse index over the trustee
//!   head rows (deterministic k-means seeded from the artifact
//!   fingerprint): `/topk` probes the `nprobe` most-promising centroids'
//!   posting lists instead of scanning all `n` users, falling back to the
//!   exact scan whenever probing would not be cheaper. Pair scoring stays
//!   exact f32; only the top-k *candidate set* is approximate, with
//!   recall measured by `backend_bench`.
//!
//! Determinism per backend is preserved: each backend is a pure function
//! of the artifact (and its own fixed parameters), candidate scans reuse
//! the `ahntp-par` row-band discipline with banding-invariant per-element
//! arithmetic, and all tie-breaks are total orders — so any backend's
//! output is bitwise identical at every thread count.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ahntp_nn::TrustArtifact;
use ahntp_telemetry::counter_add;

mod exact;
mod int8;
mod ivf;
mod simd;

pub use exact::ExactBackend;
pub use int8::Int8Backend;
pub use ivf::IvfBackend;
pub use simd::SimdBackend;

/// A candidate ordered by raw dot for the top-k heaps. Scores are finite
/// (artifact validation guarantees finite inputs), so `total_cmp` is a
/// plain total order here.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Ranked {
    pub(crate) score: f32,
    pub(crate) user: usize,
}

impl Eq for Ranked {}

impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Ranked) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ranked {
    fn cmp(&self, other: &Ranked) -> std::cmp::Ordering {
        // Ties broken toward the smaller user id: the documented
        // deterministic tie-break (score desc, then user id asc once the
        // order is reversed for output).
        self.score
            .total_cmp(&other.score)
            .then(other.user.cmp(&self.user))
    }
}

/// Parameters for the [`IvfBackend`]; `None` fields are resolved from the
/// index size at build time (`nlist ≈ √n`, `nprobe ≈ nlist/4`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IvfParams {
    /// Number of coarse centroids (posting lists).
    pub nlist: Option<usize>,
    /// How many posting lists a `/topk` query probes.
    pub nprobe: Option<usize>,
}

/// Which scoring backend a [`crate::TrustIndex`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Reference scalar f32 path.
    #[default]
    Exact,
    /// Lane-unrolled kernels, bitwise-equal to [`BackendKind::Exact`].
    Simd,
    /// Per-row symmetric int8 quantization with a measured error bound.
    Int8,
    /// IVF coarse clustering for sublinear `/topk`.
    Ivf(IvfParams),
}

impl BackendKind {
    /// Stable lowercase name (wire format of `AHNTP_BACKEND`, response
    /// `backend` fields, and the `X-Ahntp-Backend` header).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Exact => "exact",
            BackendKind::Simd => "simd",
            BackendKind::Int8 => "int8",
            BackendKind::Ivf(_) => "ivf",
        }
    }

    /// Parses a backend spec: `exact`, `simd`, `int8`, `ivf`, or
    /// `ivf:nlist=<n>,nprobe=<n>` (either key optional).
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown backend or malformed option.
    pub fn parse(spec: &str) -> Result<BackendKind, String> {
        let spec = spec.trim();
        match spec {
            "" | "exact" => return Ok(BackendKind::Exact),
            "simd" => return Ok(BackendKind::Simd),
            "int8" => return Ok(BackendKind::Int8),
            "ivf" => return Ok(BackendKind::Ivf(IvfParams::default())),
            _ => {}
        }
        if let Some(opts) = spec.strip_prefix("ivf:") {
            let mut params = IvfParams::default();
            for opt in opts.split(',').filter(|o| !o.trim().is_empty()) {
                let (key, value) = opt
                    .split_once('=')
                    .ok_or_else(|| format!("ivf option {opt:?} is not key=value"))?;
                let parsed: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("ivf option {opt:?} is not a number"))?;
                if parsed == 0 {
                    return Err(format!("ivf option {opt:?} must be positive"));
                }
                match key.trim() {
                    "nlist" => params.nlist = Some(parsed),
                    "nprobe" => params.nprobe = Some(parsed),
                    other => return Err(format!("unknown ivf option {other:?}")),
                }
            }
            return Ok(BackendKind::Ivf(params));
        }
        Err(format!(
            "unknown backend {spec:?} (known: exact, simd, int8, ivf[:nlist=..,nprobe=..])"
        ))
    }

    /// Reads `AHNTP_BACKEND` from the environment; unset or empty means
    /// [`BackendKind::Exact`]. A malformed value falls back to `exact`
    /// *with a warning* through the telemetry logger, matching the
    /// `Scale::from_env` idiom: a typo'd backend shows up in stderr
    /// instead of silently serving the default.
    pub fn from_env() -> BackendKind {
        match std::env::var("AHNTP_BACKEND") {
            Ok(spec) => match BackendKind::parse(&spec) {
                Ok(kind) => kind,
                Err(e) => {
                    ahntp_telemetry::warn!(
                        "serve",
                        "AHNTP_BACKEND={spec:?} invalid ({e}); using exact"
                    );
                    BackendKind::Exact
                }
            },
            Err(_) => BackendKind::Exact,
        }
    }

    /// Builds the backend's derived state from a validated artifact.
    pub(crate) fn build(self, artifact: &TrustArtifact) -> Box<dyn ScoringBackend> {
        match self {
            BackendKind::Exact => Box::new(ExactBackend),
            BackendKind::Simd => Box::new(SimdBackend::build(artifact)),
            BackendKind::Int8 => Box::new(Int8Backend::build(artifact)),
            BackendKind::Ivf(params) => Box::new(IvfBackend::build(artifact, params)),
        }
    }
}

/// The scoring strategy behind a [`crate::TrustIndex`].
///
/// Implementations compute *raw dots* — the calibrated sigmoid and the
/// final (probability desc, user id asc) output ordering live in
/// `TrustIndex`, so every backend shares one well-defined tie-break.
/// `top_k` returns the best-`k` candidate set in no particular order.
pub(crate) trait ScoringBackend: std::fmt::Debug + Send + Sync {
    /// Raw (possibly approximated) head dot for one pair.
    fn dot(&self, artifact: &TrustArtifact, trustor: usize, trustee: usize) -> f32;

    /// Raw dots for a batch of pairs, written to `out` (same length).
    /// Called per `ahntp-par` band; per-pair arithmetic must not depend
    /// on the banding.
    fn dot_batch(&self, artifact: &TrustArtifact, pairs: &[(usize, usize)], out: &mut [f32]);

    /// The best-`k` candidates for `trustor` (excluding `trustor`), as
    /// raw-dot [`Ranked`] entries in no particular order.
    fn top_k(&self, artifact: &TrustArtifact, trustor: usize, k: usize) -> Vec<Ranked>;

    /// Refreshes derived state after the artifact rows for `users` were
    /// patched in place (live-trust head patches).
    fn on_patch(&mut self, artifact: &TrustArtifact, users: &[usize]);

    /// Bytes of scoring-path state per user (head matrices plus any
    /// derived structures; the raw f32 artifact is excluded for
    /// compressed backends).
    fn bytes_per_user(&self, artifact: &TrustArtifact) -> usize;

    /// Rigorous bound on `|score_backend − score_exact|` for pair
    /// scoring, in probability units. `0.0` for backends whose pair dot
    /// is exact.
    fn score_error_bound(&self, artifact: &TrustArtifact) -> f32;

    /// Whether `top_k` may return a candidate set different from the
    /// exact scan (recall < 1). `false` means top-k is exhaustive.
    fn approximate_top_k(&self) -> bool;
}

/// Scalar reference dot: the exact element order every backend's
/// per-lane accumulation must reproduce to claim bitwise equality.
#[inline]
pub(crate) fn scalar_dot(artifact: &TrustArtifact, trustor: usize, trustee: usize) -> f32 {
    let d = artifact.head_dim;
    artifact.trustor_head[trustor * d..(trustor + 1) * d]
        .iter()
        .zip(&artifact.trustee_head[trustee * d..(trustee + 1) * d])
        .map(|(a, b)| a * b)
        .sum()
}

/// Pushes a candidate through the bounded-heap top-k discipline shared by
/// every scanning backend: keep the `k` largest under the [`Ranked`]
/// total order.
#[inline]
pub(crate) fn heap_push(heap: &mut BinaryHeap<Reverse<Ranked>>, k: usize, score: f32, user: usize) {
    if heap.len() < k {
        heap.push(Reverse(Ranked { score, user }));
    } else if let Some(worst) = heap.peek() {
        if (Ranked { score, user }) > worst.0 {
            heap.pop();
            heap.push(Reverse(Ranked { score, user }));
        }
    }
}

/// The shared banded candidate scan: splits `0..n` into `ahntp-par` row
/// bands, keeps `k` per band via `band_fn`, and selects the global top
/// `k` from the union. The union is a superset of the serial scan's
/// survivors and [`Ranked`] never ties across distinct users, so the
/// selection equals the serial candidate set bitwise — at any thread
/// count.
pub(crate) fn banded_top_k<F>(
    artifact: &TrustArtifact,
    k: usize,
    par_counter: &str,
    band_fn: F,
) -> Vec<Ranked>
where
    F: Fn(usize, usize) -> Vec<Ranked> + Sync,
{
    banded_range_top_k(artifact, k, 0, artifact.n_users, par_counter, band_fn)
}

/// [`banded_top_k`] over the candidate id sub-range `lo..hi` — the
/// shard-local scan. Candidate ids stay **global** throughout: bands are
/// offset by `lo`, `band_fn` receives absolute `(c0, c1)` bounds, and the
/// returned [`Ranked`] entries carry absolute user ids, so a scatter-
/// gather merge never translates ids. Per-candidate arithmetic is
/// banding-invariant, so the range result is bitwise identical at any
/// thread count and any band placement.
pub(crate) fn banded_range_top_k<F>(
    artifact: &TrustArtifact,
    k: usize,
    lo: usize,
    hi: usize,
    par_counter: &str,
    band_fn: F,
) -> Vec<Ranked>
where
    F: Fn(usize, usize) -> Vec<Ranked> + Sync,
{
    let n = hi.saturating_sub(lo);
    if ahntp_par::par_enabled(2 * n * artifact.head_dim) && n >= 2 {
        counter_add(par_counter, 1);
        let band = ahntp_par::band_size(n);
        let n_bands = n.div_ceil(band);
        let mut merged: Vec<Ranked> = ahntp_par::par_map(n_bands, |bi| {
            let c0 = lo + bi * band;
            band_fn(c0, (c0 + band).min(hi))
        })
        .into_iter()
        .flatten()
        .collect();
        merged.sort_by(|a, b| b.cmp(a));
        merged.truncate(k);
        merged
    } else {
        band_fn(lo, hi)
    }
}

/// Exact scalar top-k over the candidate id range `lo..hi` (excluding
/// `trustor`). This is the shard-local `/topk` scan: it always runs the
/// reference scalar arithmetic *regardless of the index's configured
/// backend*, so merging per-shard results under the [`Ranked`] total
/// order reproduces the single-node exact scan bitwise — the invariant
/// the shard-exactness tier asserts.
pub(crate) fn exact_top_k_in(
    artifact: &TrustArtifact,
    trustor: usize,
    k: usize,
    lo: usize,
    hi: usize,
) -> Vec<Ranked> {
    banded_range_top_k(artifact, k, lo, hi, "serve.topk.range.par_calls", |c0, c1| {
        exact::scalar_band_top_k(artifact, trustor, k, c0, c1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_specs_parse_and_name_round_trip() {
        assert_eq!(BackendKind::parse("exact").unwrap(), BackendKind::Exact);
        assert_eq!(BackendKind::parse("").unwrap(), BackendKind::Exact);
        assert_eq!(BackendKind::parse("simd").unwrap(), BackendKind::Simd);
        assert_eq!(BackendKind::parse("int8").unwrap(), BackendKind::Int8);
        assert_eq!(
            BackendKind::parse("ivf").unwrap(),
            BackendKind::Ivf(IvfParams::default())
        );
        assert_eq!(
            BackendKind::parse("ivf:nlist=32,nprobe=8").unwrap(),
            BackendKind::Ivf(IvfParams { nlist: Some(32), nprobe: Some(8) })
        );
        assert_eq!(
            BackendKind::parse(" ivf:nprobe=3 ").unwrap(),
            BackendKind::Ivf(IvfParams { nlist: None, nprobe: Some(3) })
        );
        for kind in [
            BackendKind::Exact,
            BackendKind::Simd,
            BackendKind::Int8,
            BackendKind::Ivf(IvfParams::default()),
        ] {
            assert_eq!(BackendKind::parse(kind.name()).unwrap().name(), kind.name());
        }
    }

    #[test]
    fn malformed_backend_specs_are_typed_errors() {
        for bad in ["quantum", "ivf:nlist=zero", "ivf:nlist=0", "ivf:depth=3", "ivf:nlist"] {
            let err = BackendKind::parse(bad).unwrap_err();
            assert!(!err.is_empty(), "{bad}: {err}");
        }
    }
}
