//! Lane-unrolled scoring kernels, bitwise-equal to the exact backend.
//!
//! The scalar hot loop is one dot product with a single accumulator — a
//! serial dependency chain of `d` multiply-adds per candidate, so the CPU
//! spends most of each scan waiting on add latency. These kernels
//! restructure the work *across* pairs/candidates with **one independent
//! accumulator per lane**, while each lane still accumulates its dot in
//! the exact scalar element order `j = 0..d`:
//!
//! * `dot_batch` scores 4 or 8 pairs per block, keeping that many
//!   multiply-add chains in flight (the pairs address arbitrary rows, so
//!   the loads are scattered either way — the unroll mines pure ILP).
//! * `top_k` scans candidates through a **transposed copy of the trustee
//!   head** kept by the backend: for a fixed element `j`, the values
//!   `tee[c][j], tee[c+1][j], …` are contiguous, so a block of 64
//!   candidate accumulators advances with one broadcast of the query
//!   element and contiguous vector loads — no strided gathers. The
//!   transposed copy costs `d` extra f32 per user and is re-derived for
//!   patched rows on live updates.
//!
//! That ordering is the whole contract: restructuring *across* candidates
//! instead of *within* a dot means no float operation is reassociated, so
//! every score is bitwise identical to [`super::ExactBackend`] — the
//! proptest sweep in `tests/backend_exactness.rs` and the CI backend
//! matrix hold this at thread counts 1 and 4.
//!
//! # Runtime dispatch
//!
//! The `dot_batch` lane width is picked once per backend instance: 8 when
//! the host advertises AVX2 (x86-64), else 4; `AHNTP_SIMD_LANES=4|8`
//! overrides. Both widths produce identical bits, so dispatch never
//! affects results, only throughput.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ahntp_nn::TrustArtifact;

use super::{banded_top_k, heap_push, scalar_dot, Ranked, ScoringBackend};

/// Candidate block width of the transposed top-k scan: large enough that
/// each query-element broadcast amortises over several vector registers,
/// small enough that the accumulator block stays in registers/L1.
const TOPK_BLOCK: usize = 64;

/// Picks the unroll width for this host (see module docs).
fn detect_lanes() -> usize {
    if let Ok(spec) = std::env::var("AHNTP_SIMD_LANES") {
        match spec.trim() {
            "4" => return 4,
            "8" => return 8,
            other => {
                ahntp_telemetry::warn!(
                    "serve",
                    "AHNTP_SIMD_LANES={other:?} invalid (want 4 or 8); auto-detecting"
                );
            }
        }
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return 8;
        }
    }
    4
}

/// Lane-unrolled kernels; bitwise-equal to [`super::ExactBackend`].
#[derive(Debug, Clone)]
pub struct SimdBackend {
    lanes: usize,
    /// Transposed trustee head, `head_dim × n_users` row-major:
    /// `tee_t[j * n + v] == trustee_head[v * d + j]`.
    tee_t: Vec<f32>,
}

impl SimdBackend {
    /// Builds the backend: dispatches the lane width and lays out the
    /// transposed trustee head for the candidate-contiguous top-k scan.
    pub fn build(artifact: &TrustArtifact) -> SimdBackend {
        let (n, d) = (artifact.n_users, artifact.head_dim);
        let mut tee_t = vec![0.0f32; n * d];
        for v in 0..n {
            for j in 0..d {
                tee_t[j * n + v] = artifact.trustee_head[v * d + j];
            }
        }
        SimdBackend { lanes: detect_lanes(), tee_t }
    }

    /// The dispatched `dot_batch` unroll width (4 or 8).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Transposed blocked scan over the candidate band `c0..c1`: a block
    /// of [`TOPK_BLOCK`] accumulators advances one query element at a
    /// time over contiguous columns, each accumulator summing in exact
    /// scalar order `j = 0..d`.
    fn band_top_k(
        &self,
        artifact: &TrustArtifact,
        trustor: usize,
        k: usize,
        c0: usize,
        c1: usize,
    ) -> Vec<Ranked> {
        const B: usize = TOPK_BLOCK;
        let (n, d) = (artifact.n_users, artifact.head_dim);
        let q = &artifact.trustor_head[trustor * d..(trustor + 1) * d];
        let mut heap: BinaryHeap<Reverse<Ranked>> = BinaryHeap::with_capacity(k + 1);
        let mut c = c0;
        while c + B <= c1 {
            let mut acc = [0.0f32; B];
            for (j, &qj) in q.iter().enumerate() {
                let col = &self.tee_t[j * n + c..j * n + c + B];
                for l in 0..B {
                    acc[l] += qj * col[l];
                }
            }
            for (l, &score) in acc.iter().enumerate() {
                if c + l != trustor {
                    heap_push(&mut heap, k, score, c + l);
                }
            }
            c += B;
        }
        for candidate in c..c1 {
            if candidate != trustor {
                heap_push(&mut heap, k, scalar_dot(artifact, trustor, candidate), candidate);
            }
        }
        heap.into_iter().map(|Reverse(r)| r).collect()
    }
}

/// `L` independent dots in one pass: lane `l` accumulates
/// `Σ_j tor[a0[l] + j] · tee[b0[l] + j]` in scalar element order.
#[inline]
fn dot_block<const L: usize>(tor: &[f32], tee: &[f32], d: usize, a0: [usize; L], b0: [usize; L]) -> [f32; L] {
    // Pre-slice each lane's row to exactly `d` elements so the inner
    // loop's bounds checks hoist out; raw `tor[a0[l] + j]` indexing
    // re-checks against the whole head matrix on every access and
    // defeats the optimizer.
    let ra: [&[f32]; L] = std::array::from_fn(|l| &tor[a0[l]..a0[l] + d]);
    let rb: [&[f32]; L] = std::array::from_fn(|l| &tee[b0[l]..b0[l] + d]);
    let mut acc = [0.0f32; L];
    for j in 0..d {
        for l in 0..L {
            acc[l] += ra[l][j] * rb[l][j];
        }
    }
    acc
}

/// Batch dots with an `L`-pair unroll; the remainder runs the scalar
/// kernel, which matches the per-lane accumulation exactly.
fn dot_batch_unrolled<const L: usize>(
    artifact: &TrustArtifact,
    pairs: &[(usize, usize)],
    out: &mut [f32],
) {
    let d = artifact.head_dim;
    let (tor, tee) = (&artifact.trustor_head[..], &artifact.trustee_head[..]);
    let mut i = 0;
    while i + L <= pairs.len() {
        let mut a0 = [0usize; L];
        let mut b0 = [0usize; L];
        for l in 0..L {
            a0[l] = pairs[i + l].0 * d;
            b0[l] = pairs[i + l].1 * d;
        }
        let acc = dot_block::<L>(tor, tee, d, a0, b0);
        out[i..i + L].copy_from_slice(&acc);
        i += L;
    }
    for (&(u, v), o) in pairs[i..].iter().zip(&mut out[i..]) {
        *o = scalar_dot(artifact, u, v);
    }
}

impl ScoringBackend for SimdBackend {
    fn dot(&self, artifact: &TrustArtifact, trustor: usize, trustee: usize) -> f32 {
        // A single pair has no cross-pair parallelism to mine; the scalar
        // kernel is the per-lane arithmetic already.
        scalar_dot(artifact, trustor, trustee)
    }

    fn dot_batch(&self, artifact: &TrustArtifact, pairs: &[(usize, usize)], out: &mut [f32]) {
        match self.lanes {
            8 => dot_batch_unrolled::<8>(artifact, pairs, out),
            _ => dot_batch_unrolled::<4>(artifact, pairs, out),
        }
    }

    fn top_k(&self, artifact: &TrustArtifact, trustor: usize, k: usize) -> Vec<Ranked> {
        banded_top_k(artifact, k, "serve.topk.par_calls", |c0, c1| {
            self.band_top_k(artifact, trustor, k, c0, c1)
        })
    }

    fn on_patch(&mut self, artifact: &TrustArtifact, users: &[usize]) {
        let (n, d) = (artifact.n_users, artifact.head_dim);
        for &v in users {
            for j in 0..d {
                self.tee_t[j * n + v] = artifact.trustee_head[v * d + j];
            }
        }
    }

    fn bytes_per_user(&self, artifact: &TrustArtifact) -> usize {
        // Two f32 head rows plus the transposed trustee copy.
        3 * artifact.head_dim * std::mem::size_of::<f32>()
    }

    fn score_error_bound(&self, _artifact: &TrustArtifact) -> f32 {
        0.0
    }

    fn approximate_top_k(&self) -> bool {
        false
    }
}
