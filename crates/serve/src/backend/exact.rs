//! The reference backend: scalar f32 dots and exhaustive candidate scans.
//!
//! This is the seed `TrustIndex` arithmetic, unchanged: one
//! sequentially-accumulated dot product per pair, a bounded heap over a
//! full candidate scan for top-k. Every other backend states its error
//! envelope relative to this one.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ahntp_nn::TrustArtifact;

use super::{banded_top_k, heap_push, scalar_dot, Ranked, ScoringBackend};

/// Exhaustive scalar f32 scoring (the reference semantics).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactBackend;

/// Heap-tracked scalar scan over the candidate band `c0..c1` (excluding
/// `trustor`): the best `k` raw-dot candidates, in no particular order.
pub(crate) fn scalar_band_top_k(
    artifact: &TrustArtifact,
    trustor: usize,
    k: usize,
    c0: usize,
    c1: usize,
) -> Vec<Ranked> {
    let mut heap: BinaryHeap<Reverse<Ranked>> = BinaryHeap::with_capacity(k + 1);
    for candidate in c0..c1 {
        if candidate == trustor {
            continue;
        }
        heap_push(&mut heap, k, scalar_dot(artifact, trustor, candidate), candidate);
    }
    heap.into_iter().map(|Reverse(r)| r).collect()
}

impl ScoringBackend for ExactBackend {
    fn dot(&self, artifact: &TrustArtifact, trustor: usize, trustee: usize) -> f32 {
        scalar_dot(artifact, trustor, trustee)
    }

    fn dot_batch(&self, artifact: &TrustArtifact, pairs: &[(usize, usize)], out: &mut [f32]) {
        for (&(u, v), o) in pairs.iter().zip(out) {
            *o = scalar_dot(artifact, u, v);
        }
    }

    fn top_k(&self, artifact: &TrustArtifact, trustor: usize, k: usize) -> Vec<Ranked> {
        banded_top_k(artifact, k, "serve.topk.par_calls", |c0, c1| {
            scalar_band_top_k(artifact, trustor, k, c0, c1)
        })
    }

    fn on_patch(&mut self, _artifact: &TrustArtifact, _users: &[usize]) {}

    fn bytes_per_user(&self, artifact: &TrustArtifact) -> usize {
        // Two f32 head rows per user.
        2 * artifact.head_dim * std::mem::size_of::<f32>()
    }

    fn score_error_bound(&self, _artifact: &TrustArtifact) -> f32 {
        0.0
    }

    fn approximate_top_k(&self) -> bool {
        false
    }
}
