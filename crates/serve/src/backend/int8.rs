//! Symmetric per-row int8 quantization of the scoring heads.
//!
//! Each head row quantizes independently: `scale = max|v| / 127`,
//! `q = round(v / scale)` clamped to `[-127, 127]`. A pair dot becomes an
//! i32-accumulated integer dot scaled by the two row scales:
//!
//! `dot(u, v) ≈ scale_or[u] · scale_ee[v] · Σ_j q_or[u][j] · q_ee[v][j]`
//!
//! The scoring working set shrinks from `8·d` bytes per user (two f32
//! rows) to `2·d + 8` (two i8 rows + two scales) — ~4× for the dims the
//! trainer exports — and the i32 MAC loop vectorizes into wide integer
//! ops. Integer addition is associative, so the kernels are free to use
//! multiple accumulators without any determinism caveat.
//!
//! # Error envelope
//!
//! Quantization error is *measured at build time*, not assumed: each
//! row's exact L2 reconstruction error `‖v − q·scale‖₂` and quantized
//! norm are recorded, giving the rigorous dot bound
//!
//! `|dot_f32 − dot_int8| ≤ max_err_or · max‖v_ee‖ + max‖q̂_or‖ · max_err_ee`
//!
//! (Cauchy–Schwarz on `⟨a,b⟩ − ⟨â,b̂⟩ = ⟨a−â, b⟩ + ⟨â, b−b̂⟩`), plus a
//! `2·d·ε·max‖v_or‖·max‖v_ee‖` term covering the f32 rounding of the two
//! accumulation paths themselves (without it the bound holds only in real
//! arithmetic — a row set that quantizes *exactly* would claim a zero
//! bound yet still differ from the exact backend by ~1 ulp). The
//! calibrated sigmoid has slope at most `1/(4c)`, so the score-space
//! bound reported by [`ScoringBackend::score_error_bound`] is
//! `dot_bound / (4c) + 4ε`. `tests/backend_exactness.rs` checks the
//! measured max-abs score delta against this bound on random heads.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ahntp_nn::TrustArtifact;

use super::{banded_top_k, heap_push, Ranked, ScoringBackend};

/// One quantized head matrix plus its per-row bookkeeping.
#[derive(Debug, Clone, Default)]
struct QuantizedHead {
    /// `n_users × head_dim` row-major int8 codes.
    codes: Vec<i8>,
    /// Per-row dequantization scale (`0.0` for an all-zero row).
    scales: Vec<f32>,
    /// Per-row exact L2 reconstruction error `‖v − q·scale‖₂`.
    errs: Vec<f32>,
    /// Per-row L2 norm of the *original* f32 row.
    norms: Vec<f32>,
    /// Per-row L2 norm of the dequantized row `q·scale`.
    qnorms: Vec<f32>,
}

impl QuantizedHead {
    fn build(rows: &[f32], n_users: usize, d: usize) -> QuantizedHead {
        let mut head = QuantizedHead {
            codes: vec![0i8; n_users * d],
            scales: vec![0.0; n_users],
            errs: vec![0.0; n_users],
            norms: vec![0.0; n_users],
            qnorms: vec![0.0; n_users],
        };
        for u in 0..n_users {
            head.quantize_row(&rows[u * d..(u + 1) * d], u, d);
        }
        head
    }

    /// (Re)quantizes one row, updating codes, scale, and error metadata.
    fn quantize_row(&mut self, row: &[f32], u: usize, d: usize) {
        let max_abs = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let scale = max_abs / 127.0;
        let codes = &mut self.codes[u * d..(u + 1) * d];
        let mut err_sq = 0.0f32;
        let mut norm_sq = 0.0f32;
        let mut qnorm_sq = 0.0f32;
        for (c, &v) in codes.iter_mut().zip(row) {
            let q = if scale > 0.0 {
                (v / scale).round().clamp(-127.0, 127.0) as i8
            } else {
                0
            };
            *c = q;
            let deq = f32::from(q) * scale;
            err_sq += (v - deq) * (v - deq);
            norm_sq += v * v;
            qnorm_sq += deq * deq;
        }
        self.scales[u] = scale;
        self.errs[u] = err_sq.sqrt();
        self.norms[u] = norm_sq.sqrt();
        self.qnorms[u] = qnorm_sq.sqrt();
    }
}

/// Per-row symmetric int8 quantized scoring.
#[derive(Debug, Clone)]
pub struct Int8Backend {
    trustor: QuantizedHead,
    trustee: QuantizedHead,
}

impl Int8Backend {
    /// Quantizes both head matrices of a validated artifact.
    pub fn build(artifact: &TrustArtifact) -> Int8Backend {
        let (n, d) = (artifact.n_users, artifact.head_dim);
        Int8Backend {
            trustor: QuantizedHead::build(&artifact.trustor_head, n, d),
            trustee: QuantizedHead::build(&artifact.trustee_head, n, d),
        }
    }

    /// Rigorous bound on `|dot_f32 − dot_int8|` over every pair currently
    /// in the index (see module docs). Two terms: the measured
    /// quantization error (Cauchy–Schwarz), plus the f32 rounding of the
    /// two accumulation paths themselves — each path sums `d` products,
    /// so its rounding is bounded by `d·ε` of the dot's magnitude bound.
    /// Without the second term the bound is only valid in real
    /// arithmetic and is violated by rows that quantize exactly.
    pub fn dot_error_bound(&self) -> f32 {
        let max = |v: &[f32]| v.iter().fold(0.0f32, |m, &x| m.max(x));
        let quant = max(&self.trustor.errs) * max(&self.trustee.norms)
            + max(&self.trustor.qnorms) * max(&self.trustee.errs);
        let d = self
            .trustor
            .codes
            .len()
            .checked_div(self.trustor.scales.len())
            .unwrap_or(0);
        let magnitude = max(&self.trustor.norms) * max(&self.trustee.norms);
        quant + 2.0 * d as f32 * f32::EPSILON * magnitude
    }

    /// Integer dot of quantized rows `u` (trustor) and `v` (trustee),
    /// dequantized through both row scales.
    #[inline]
    fn qdot(&self, d: usize, u: usize, v: usize) -> f32 {
        let qa = &self.trustor.codes[u * d..(u + 1) * d];
        let qb = &self.trustee.codes[v * d..(v + 1) * d];
        let mut acc = 0i32;
        for (&a, &b) in qa.iter().zip(qb) {
            acc += i32::from(a) * i32::from(b);
        }
        (self.trustor.scales[u] * self.trustee.scales[v]) * acc as f32
    }

    /// Heap-tracked quantized scan over the candidate band `c0..c1`,
    /// scoring 4 candidates per block with independent i32 accumulators.
    fn band_top_k(&self, d: usize, trustor: usize, k: usize, c0: usize, c1: usize) -> Vec<Ranked> {
        const L: usize = 4;
        let qa = &self.trustor.codes[trustor * d..(trustor + 1) * d];
        let sa = self.trustor.scales[trustor];
        let mut heap: BinaryHeap<Reverse<Ranked>> = BinaryHeap::with_capacity(k + 1);
        let mut c = c0;
        while c + L <= c1 {
            let mut acc = [0i32; L];
            for (j, &aj) in qa.iter().enumerate() {
                let a = i32::from(aj);
                for (l, slot) in acc.iter_mut().enumerate() {
                    *slot += a * i32::from(self.trustee.codes[(c + l) * d + j]);
                }
            }
            for (l, &accl) in acc.iter().enumerate() {
                if c + l != trustor {
                    let score = (sa * self.trustee.scales[c + l]) * accl as f32;
                    heap_push(&mut heap, k, score, c + l);
                }
            }
            c += L;
        }
        for candidate in c..c1 {
            if candidate != trustor {
                heap_push(&mut heap, k, self.qdot(d, trustor, candidate), candidate);
            }
        }
        heap.into_iter().map(|Reverse(r)| r).collect()
    }
}

impl ScoringBackend for Int8Backend {
    fn dot(&self, artifact: &TrustArtifact, trustor: usize, trustee: usize) -> f32 {
        self.qdot(artifact.head_dim, trustor, trustee)
    }

    fn dot_batch(&self, artifact: &TrustArtifact, pairs: &[(usize, usize)], out: &mut [f32]) {
        let d = artifact.head_dim;
        for (&(u, v), o) in pairs.iter().zip(out) {
            *o = self.qdot(d, u, v);
        }
    }

    fn top_k(&self, artifact: &TrustArtifact, trustor: usize, k: usize) -> Vec<Ranked> {
        let d = artifact.head_dim;
        banded_top_k(artifact, k, "serve.topk.par_calls", |c0, c1| {
            self.band_top_k(d, trustor, k, c0, c1)
        })
    }

    fn on_patch(&mut self, artifact: &TrustArtifact, users: &[usize]) {
        let d = artifact.head_dim;
        for &u in users {
            self.trustor.quantize_row(&artifact.trustor_head[u * d..(u + 1) * d], u, d);
            self.trustee.quantize_row(&artifact.trustee_head[u * d..(u + 1) * d], u, d);
        }
    }

    fn bytes_per_user(&self, artifact: &TrustArtifact) -> usize {
        // Two i8 rows plus two f32 scales.
        2 * artifact.head_dim + 2 * std::mem::size_of::<f32>()
    }

    fn score_error_bound(&self, artifact: &TrustArtifact) -> f32 {
        // σ(x/c) has slope ≤ 1/(4c); propagate the dot bound through it,
        // plus one ulp-scale term for evaluating the sigmoid itself.
        self.dot_error_bound() / (4.0 * artifact.calibration) + 4.0 * f32::EPSILON
    }

    fn approximate_top_k(&self) -> bool {
        // The candidate *ranking* is computed on quantized scores, so the
        // set can differ from the exact scan near the k-th boundary.
        true
    }
}
