//! Bounded in-memory ring of recently served requests.
//!
//! Every request handled by the server — traced or not — deposits a
//! [`RequestTrace`] here: its trace id, method, path, status, wall-clock,
//! and the per-stage breakdown `POST /score` collects on its way through
//! the queue and the batcher. `GET /debug/traces` renders the ring as
//! JSON, newest last, so an operator can inspect the last N requests of a
//! live server without any external tooling. The ring is fixed-size
//! ([`ServeConfig::trace_ring`](crate::ServeConfig::trace_ring)); old
//! entries fall off the front.

use std::collections::VecDeque;
use std::sync::Mutex;

use ahntp_telemetry::json::Json;

/// One timed stage inside a request (e.g. `serve.parse`,
/// `serve.queue.wait`, `serve.score`). Timestamps are µs on the
/// process-wide trace clock ([`ahntp_telemetry::trace_now_us`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Stage {
    pub name: &'static str,
    pub ts_us: u64,
    pub dur_us: u64,
}

impl Stage {
    fn to_json(self) -> Json {
        Json::obj([
            ("name", self.name.into()),
            ("ts_us", self.ts_us.into()),
            ("dur_us", self.dur_us.into()),
        ])
    }
}

/// One completed request as recorded in the debug ring.
#[derive(Debug, Clone)]
pub(crate) struct RequestTrace {
    /// Request trace id; rendered as the 16-hex-digit wire form used by
    /// the `X-Ahntp-Trace-Id` header.
    pub trace_id: u64,
    pub method: String,
    pub path: String,
    pub status: u16,
    pub ts_us: u64,
    pub dur_us: u64,
    pub stages: Vec<Stage>,
}

impl RequestTrace {
    fn to_json(&self) -> Json {
        Json::obj([
            ("trace_id", format!("{:016x}", self.trace_id).into()),
            ("method", self.method.as_str().into()),
            ("path", self.path.as_str().into()),
            ("status", u64::from(self.status).into()),
            ("ts_us", self.ts_us.into()),
            ("dur_us", self.dur_us.into()),
            (
                "stages",
                Json::Arr(self.stages.iter().map(|s| s.to_json()).collect()),
            ),
        ])
    }
}

/// Fixed-capacity ring buffer of [`RequestTrace`]s, shared by every
/// worker thread.
pub(crate) struct TraceRing {
    ring: Mutex<VecDeque<RequestTrace>>,
    capacity: usize,
}

impl TraceRing {
    pub fn new(capacity: usize) -> TraceRing {
        let capacity = capacity.max(1);
        TraceRing {
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
        }
    }

    /// Appends one completed request, evicting the oldest when full.
    pub fn push(&self, trace: RequestTrace) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// `{"capacity": n, "traces": [...oldest→newest...]}`.
    pub fn to_json(&self) -> Json {
        let ring = self.ring.lock().unwrap();
        Json::obj([
            ("capacity", self.capacity.into()),
            (
                "traces",
                Json::Arr(ring.iter().map(RequestTrace::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64) -> RequestTrace {
        RequestTrace {
            trace_id: id,
            method: "GET".to_string(),
            path: "/healthz".to_string(),
            status: 200,
            ts_us: id * 10,
            dur_us: 5,
            stages: vec![Stage { name: "serve.parse", ts_us: id * 10, dur_us: 1 }],
        }
    }

    #[test]
    fn ring_evicts_oldest_and_renders_hex_ids() {
        let ring = TraceRing::new(2);
        for id in 1..=3 {
            ring.push(trace(id));
        }
        let doc = ring.to_json();
        assert_eq!(doc.get("capacity").and_then(Json::as_f64), Some(2.0));
        let Some(Json::Arr(traces)) = doc.get("traces") else {
            panic!("no traces array");
        };
        assert_eq!(traces.len(), 2);
        // Oldest (id 1) fell off; ids render as 16 hex digits.
        assert_eq!(
            traces[0].get("trace_id").and_then(Json::as_str),
            Some("0000000000000002")
        );
        assert_eq!(
            traces[1].get("trace_id").and_then(Json::as_str),
            Some("0000000000000003")
        );
        let Some(Json::Arr(stages)) = traces[0].get("stages") else {
            panic!("no stages array");
        };
        assert_eq!(
            stages[0].get("name").and_then(Json::as_str),
            Some("serve.parse")
        );
    }
}
