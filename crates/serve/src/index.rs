//! The in-memory scoring index behind the serving endpoints.
//!
//! A [`TrustIndex`] wraps a decoded [`TrustArtifact`] and answers trust
//! queries with no graph machinery: the artifact's head rows are already
//! L2-normalised, so `score(u, v)` is one `O(d)` dot product followed by
//! the trainer's calibrated sigmoid, and `top_k_trustees` ranks
//! candidates over one row scan.
//!
//! *How* the dot and the candidate scan are computed is delegated to a
//! pluggable [`ScoringBackend`](crate::backend) — `exact` (the scalar
//! reference), `simd` (lane-unrolled, bitwise-equal to exact), `int8`
//! (quantized, ~4× smaller, measured error bound), or `ivf` (coarse
//! clustering, sublinear `/topk`). The backend is picked by
//! [`BackendKind::from_env`] (`AHNTP_BACKEND`) at construction, or
//! explicitly via [`TrustIndex::from_artifact_with`] /
//! [`TrustIndex::with_backend`].
//!
//! Big batches and big candidate scans are split across the `ahntp-par`
//! worker pool: each pair/candidate is scored by exactly one task with
//! banding-invariant arithmetic, and the per-band top-k heaps merge under
//! one total order, so every backend's results are bitwise identical to
//! its own serial execution at any thread count.
//!
//! # Top-k tie-break
//!
//! [`TrustIndex::top_k_trustees`] orders its output by **score
//! descending, then user id ascending**. The id tie-break is load-bearing
//! twice over: it makes responses deterministic when distinct candidates
//! collide on a score (common under `int8`, where quantized dots tie far
//! more often than f32 dots), and it makes exact-vs-approximate recall
//! comparisons well-defined — two backends that agree on scores agree on
//! the returned set and order, so any disagreement is genuine
//! approximation error, never arbitrary tie resolution.

use std::sync::{RwLock, RwLockReadGuard};

use ahntp_nn::{ArtifactError, TrustArtifact};
use ahntp_stream::HeadPatch;
use ahntp_telemetry::counter_add;

use crate::backend::{BackendKind, ScoringBackend};

/// Errors from scoring queries against a [`TrustIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScoreError {
    /// A queried user id is not a row of the index.
    UserOutOfRange {
        /// The offending user id.
        user: usize,
        /// Number of users the index holds (valid ids are `0..n_users`).
        n_users: usize,
    },
}

impl std::fmt::Display for ScoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScoreError::UserOutOfRange { user, n_users } => {
                write!(f, "user {user} out of range (index holds {n_users} users)")
            }
        }
    }
}

impl std::error::Error for ScoreError {}

/// A Sybil-defense prior attached to a [`TrustIndex`]: per-node trust
/// mass from personalized PageRank over honest seeds
/// (`ahntp_graph::trust_prior`), blended into every served score as
/// `(1 − α) · learned + α · prior[trustee]`.
///
/// The prior is indexed by *trustee*: trust is something the target has
/// to have earned from the honest region, regardless of who asks. Since
/// PPR mass entering a Sybil region is bounded by the attack-edge cut,
/// blending caps how much score a fake cluster can manufacture no matter
/// what the learned model was talked into.
#[derive(Debug, Clone, PartialEq)]
pub struct DefensePrior {
    alpha: f32,
    trust: Vec<f32>,
}

impl DefensePrior {
    /// Builds a defense prior.
    ///
    /// # Errors
    ///
    /// Rejects an `alpha` outside `[0, 1]`, an empty prior, or prior
    /// values outside `[0, 1]` (including non-finite ones).
    pub fn new(alpha: f32, trust: Vec<f32>) -> Result<DefensePrior, String> {
        if !(alpha.is_finite() && (0.0..=1.0).contains(&alpha)) {
            return Err(format!("defense alpha must be in [0, 1], got {alpha}"));
        }
        if trust.is_empty() {
            return Err("defense prior is empty".to_string());
        }
        if let Some((i, &v)) = trust
            .iter()
            .enumerate()
            .find(|&(_, &v)| !(v.is_finite() && (0.0..=1.0).contains(&v)))
        {
            return Err(format!("defense prior[{i}] = {v} outside [0, 1]"));
        }
        Ok(DefensePrior { alpha, trust })
    }

    /// [`DefensePrior::new`] with the blend weight taken from the
    /// `AHNTP_PPR_ALPHA` environment knob (default `0.3`; malformed
    /// values warn and fall back, matching every other env knob).
    ///
    /// # Errors
    ///
    /// As [`DefensePrior::new`].
    pub fn from_env(trust: Vec<f32>) -> Result<DefensePrior, String> {
        DefensePrior::new(ahntp_telemetry::env_parse("AHNTP_PPR_ALPHA", 0.3f32), trust)
    }

    /// The blend weight on the prior.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Number of users the prior covers.
    pub fn len(&self) -> usize {
        self.trust.len()
    }

    /// Always false — construction rejects an empty prior.
    pub fn is_empty(&self) -> bool {
        self.trust.is_empty()
    }

    /// The per-node trust prior.
    pub fn trust(&self) -> &[f32] {
        &self.trust
    }

    /// Blends one calibrated probability with the trustee's prior.
    fn blend(&self, trustee: usize, learned: f32) -> f32 {
        (1.0 - self.alpha) * learned + self.alpha * self.trust[trustee]
    }
}

/// Static kernel-span name per backend so traces carry the backend label
/// without a per-request allocation.
fn topk_span(kind: BackendKind) -> &'static str {
    match kind {
        BackendKind::Exact => "serve.topk.exact",
        BackendKind::Simd => "serve.topk.simd",
        BackendKind::Int8 => "serve.topk.int8",
        BackendKind::Ivf(_) => "serve.topk.ivf",
    }
}

fn score_span(kind: BackendKind) -> &'static str {
    match kind {
        BackendKind::Exact => "serve.score_pairs.exact",
        BackendKind::Simd => "serve.score_pairs.simd",
        BackendKind::Int8 => "serve.score_pairs.int8",
        BackendKind::Ivf(_) => "serve.score_pairs.ivf",
    }
}

/// Trust-scoring index over an exported [`TrustArtifact`], scored through
/// a pluggable backend. "Frozen" in the sense that only live-trust head
/// patches mutate it, and those re-derive exactly the touched rows.
#[derive(Debug)]
pub struct TrustIndex {
    artifact: TrustArtifact,
    kind: BackendKind,
    backend: Box<dyn ScoringBackend>,
    /// Sybil-defense prior; `None` serves raw learned scores.
    defense: Option<DefensePrior>,
    /// Pre-interned per-backend counter names (no `format!` per request).
    m_score_calls: String,
    m_topk_calls: String,
}

impl Clone for TrustIndex {
    fn clone(&self) -> TrustIndex {
        // Backends are pure functions of (artifact, kind), so a clone
        // rebuilds identical derived state; the defense prior is carried
        // over explicitly (it is graph-derived, not artifact-derived).
        let mut clone = TrustIndex::assemble(self.artifact.clone(), self.kind);
        clone.defense = self.defense.clone();
        clone
    }
}

impl TrustIndex {
    fn assemble(artifact: TrustArtifact, kind: BackendKind) -> TrustIndex {
        let backend = kind.build(&artifact);
        TrustIndex {
            m_score_calls: format!("serve.score_pairs.{}.calls", kind.name()),
            m_topk_calls: format!("serve.topk.{}.calls", kind.name()),
            artifact,
            kind,
            backend,
            defense: None,
        }
    }

    /// Builds the index from a decoded artifact, re-validating it. The
    /// scoring backend comes from the environment
    /// ([`BackendKind::from_env`]; `AHNTP_BACKEND`, default `exact`).
    ///
    /// # Errors
    ///
    /// Returns the artifact's own [`ArtifactError`] when it is
    /// inconsistent.
    pub fn from_artifact(artifact: TrustArtifact) -> Result<TrustIndex, ArtifactError> {
        TrustIndex::from_artifact_with(artifact, BackendKind::from_env())
    }

    /// Builds the index with an explicit scoring backend.
    ///
    /// # Errors
    ///
    /// Returns the artifact's own [`ArtifactError`] when it is
    /// inconsistent.
    pub fn from_artifact_with(
        artifact: TrustArtifact,
        kind: BackendKind,
    ) -> Result<TrustIndex, ArtifactError> {
        artifact.validate()?;
        Ok(TrustIndex::assemble(artifact, kind))
    }

    /// Decodes an `AHNTPSRV1` frame and builds the index (backend from
    /// the environment, as [`TrustIndex::from_artifact`]).
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError`] on malformed, unsupported, or
    /// inconsistent frames.
    pub fn load(bytes: &[u8]) -> Result<TrustIndex, ArtifactError> {
        TrustIndex::from_artifact(TrustArtifact::decode(bytes)?)
    }

    /// Opens an artifact file and builds the index, zero-copy when
    /// possible: a v2 frame is memory-mapped and its matrices become
    /// borrowed views ([`TrustArtifact::open`]), so a shard (re)start
    /// costs O(header + CRC) instead of O(matrix copy). v1 frames and
    /// platforms without the fast path fall back to a parsing decode —
    /// same index either way.
    ///
    /// # Errors
    ///
    /// I/O errors from the filesystem; corrupt or unsupported frames
    /// (failed CRC seal, torn offsets table) surface as
    /// [`std::io::ErrorKind::InvalidData`] — a typed error, never a
    /// panic, which is what the chaos tier asserts for torn artifacts.
    pub fn open<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<TrustIndex> {
        TrustIndex::open_with(path, BackendKind::from_env())
    }

    /// [`TrustIndex::open`] with an explicit scoring backend (the
    /// `/admin/swap` path uses this to rebuild a freshly mapped snapshot
    /// onto the serving backend).
    ///
    /// # Errors
    ///
    /// As [`TrustIndex::open`].
    pub fn open_with<P: AsRef<std::path::Path>>(
        path: P,
        kind: BackendKind,
    ) -> std::io::Result<TrustIndex> {
        let artifact = TrustArtifact::open(path)?;
        TrustIndex::from_artifact_with(artifact, kind)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Whether the artifact matrices are zero-copy mapped views (true
    /// until the first live head patch copies a matrix).
    pub fn is_mapped(&self) -> bool {
        self.artifact.is_mapped()
    }

    /// Rebuilds this index on a different scoring backend. Derived state
    /// (quantized matrices, posting lists) is reconstructed from the
    /// artifact, so the swap is deterministic. An attached defense prior
    /// survives the rebuild.
    pub fn with_backend(self, kind: BackendKind) -> TrustIndex {
        let mut index = TrustIndex::assemble(self.artifact, kind);
        index.defense = self.defense;
        index
    }

    /// Attaches a Sybil-defense prior: every served probability becomes
    /// `(1 − α) · learned + α · prior[trustee]` (see [`DefensePrior`]).
    /// `/topk` under defense always ranks via a full exact candidate scan
    /// — the prior reweights candidates, so approximate backends cannot
    /// pre-rank for it.
    ///
    /// # Errors
    ///
    /// Rejects a prior that does not cover exactly `n_users` nodes; the
    /// index is unchanged on error.
    pub fn with_defense(mut self, defense: DefensePrior) -> Result<TrustIndex, String> {
        if defense.len() != self.artifact.n_users {
            return Err(format!(
                "defense prior covers {} users but the index holds {}",
                defense.len(),
                self.artifact.n_users
            ));
        }
        self.defense = Some(defense);
        Ok(self)
    }

    /// Detaches the defense prior, returning to raw learned scores.
    pub fn without_defense(mut self) -> TrustIndex {
        self.defense = None;
        self
    }

    /// The attached defense prior, if any.
    pub fn defense(&self) -> Option<&DefensePrior> {
        self.defense.as_ref()
    }

    /// Whether served scores are defense-blended.
    pub fn defended(&self) -> bool {
        self.defense.is_some()
    }

    /// Applies the defense blend when one is attached.
    fn defended_score(&self, trustee: usize, learned: f32) -> f32 {
        match &self.defense {
            Some(d) => d.blend(trustee, learned),
            None => learned,
        }
    }

    /// The backend this index scores through.
    pub fn backend_kind(&self) -> BackendKind {
        self.kind
    }

    /// Stable backend name (`exact`, `simd`, `int8`, `ivf`).
    pub fn backend_name(&self) -> &'static str {
        self.kind.name()
    }

    /// Rigorous bound on `|score − exact_score|` for pair scoring under
    /// this backend, in probability units. `0.0` for `exact`, `simd`
    /// (bitwise-equal), and `ivf` (exact pair dots); measured at build
    /// time for `int8`.
    pub fn score_error_bound(&self) -> f32 {
        self.backend.score_error_bound(&self.artifact)
    }

    /// Whether `top_k_trustees` may return a candidate set different from
    /// the exact scan (recall < 1): true for `int8` and `ivf`.
    pub fn approximate_top_k(&self) -> bool {
        self.backend.approximate_top_k()
    }

    /// Bytes of scoring-path state per user under this backend.
    pub fn bytes_per_user(&self) -> usize {
        self.backend.bytes_per_user(&self.artifact)
    }

    /// Number of users the index can score.
    pub fn n_users(&self) -> usize {
        self.artifact.n_users
    }

    /// Embedding dimension of the exported model.
    pub fn emb_dim(&self) -> usize {
        self.artifact.emb_dim
    }

    /// Head dimension (the per-pair dot length).
    pub fn head_dim(&self) -> usize {
        self.artifact.head_dim
    }

    /// Name of the exporting model (e.g. `"AHNTP"`).
    pub fn model(&self) -> &str {
        &self.artifact.model
    }

    /// Architecture fingerprint of the exporting model (0 = untagged).
    pub fn fingerprint(&self) -> u64 {
        self.artifact.fingerprint
    }

    fn check(&self, user: usize) -> Result<(), ScoreError> {
        if user >= self.artifact.n_users {
            Err(ScoreError::UserOutOfRange {
                user,
                n_users: self.artifact.n_users,
            })
        } else {
            Ok(())
        }
    }

    fn calibrated(&self, dot: f32) -> f32 {
        1.0 / (1.0 + (-dot / self.artifact.calibration).exp())
    }

    /// Probability that `trustor` trusts `trustee`:
    /// `σ(⟨trustor_head[u], trustee_head[v]⟩ / c)`, matching
    /// `Ahntp::predict` within float tolerance on the exact backend and
    /// within [`TrustIndex::score_error_bound`] of that on approximate
    /// ones.
    ///
    /// # Errors
    ///
    /// Returns [`ScoreError::UserOutOfRange`] when either id is not a row.
    pub fn score(&self, trustor: usize, trustee: usize) -> Result<f32, ScoreError> {
        self.check(trustor)?;
        self.check(trustee)?;
        Ok(self.defended_score(
            trustee,
            self.calibrated(self.backend.dot(&self.artifact, trustor, trustee)),
        ))
    }

    /// Scores a batch of `(trustor, trustee)` pairs in order.
    ///
    /// # Errors
    ///
    /// Fails on the first out-of-range id; no partial results.
    pub fn score_pairs(&self, pairs: &[(usize, usize)]) -> Result<Vec<f32>, ScoreError> {
        let _k = ahntp_telemetry::KernelSpan::enter(
            score_span(self.kind),
            ahntp_telemetry::KernelKind::Score,
        );
        counter_add(&self.m_score_calls, 1);
        for &(u, v) in pairs {
            self.check(u)?;
            self.check(v)?;
        }
        let mut out = vec![0.0f32; pairs.len()];
        if ahntp_par::par_enabled(2 * pairs.len() * self.artifact.head_dim) && pairs.len() >= 2
        {
            counter_add("serve.score_pairs.par_calls", 1);
            let band = ahntp_par::band_size(pairs.len());
            ahntp_par::par_chunks(&mut out, band, |ci, chunk| {
                let off = ci * band;
                self.backend
                    .dot_batch(&self.artifact, &pairs[off..off + chunk.len()], chunk);
            });
        } else {
            self.backend.dot_batch(&self.artifact, pairs, &mut out);
        }
        for v in &mut out {
            *v = self.calibrated(*v);
        }
        if let Some(d) = &self.defense {
            // The blend is per-element and runs after the (possibly
            // banded) dot batch, so thread-invariance is untouched.
            for (&(_, trustee), v) in pairs.iter().zip(&mut out) {
                *v = d.blend(trustee, *v);
            }
        }
        Ok(out)
    }

    /// The `k` most-trusted candidate trustees for `trustor` (excluding
    /// `trustor` itself), ordered by **score descending, then user id
    /// ascending** — the documented deterministic tie-break, shared by
    /// every backend so exact-vs-approximate comparisons are well-defined
    /// at score ties. Returns fewer than `k` entries only when the index
    /// holds fewer candidates (or, under `ivf`, when probing exhausts all
    /// posting lists first — probing always widens until at least `k`
    /// candidates were seen).
    ///
    /// # Errors
    ///
    /// Returns [`ScoreError::UserOutOfRange`] for an unknown trustor.
    pub fn top_k_trustees(
        &self,
        trustor: usize,
        k: usize,
    ) -> Result<Vec<(usize, f32)>, ScoreError> {
        let _k = ahntp_telemetry::KernelSpan::enter(
            topk_span(self.kind),
            ahntp_telemetry::KernelKind::Score,
        );
        counter_add(&self.m_topk_calls, 1);
        self.check(trustor)?;
        if self.defense.is_some() {
            // The prior reweights candidates, so a backend's dot-ordered
            // pre-ranking (int8 quantized heaps, ivf posting lists) is
            // not a valid filter for the blended order. Defended top-k
            // therefore ranks every candidate through the exact scalar
            // scan — identical across backends by construction.
            let n = self.artifact.n_users;
            return Ok(self.defended_top_k_in(trustor, k, 0, n));
        }
        let ranked = self.backend.top_k(&self.artifact, trustor, k);
        let mut out: Vec<(usize, f32)> = ranked
            .into_iter()
            .map(|r| (r.user, self.calibrated(r.score)))
            .collect();
        // The dot→probability map is monotonic, so sorting by probability
        // equals sorting by dot product — except where calibration rounds
        // two distinct dots to the same f32, where the id tiebreak takes
        // over; every backend feeds its candidate set through this same
        // sort, so the output order is identical for identical scores.
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        Ok(out)
    }

    /// [`TrustIndex::top_k_trustees`] restricted to the candidate id
    /// range `lo..hi` — the shard-local `/topk` scan. Candidate ids are
    /// **global** user ids throughout (the range selects, it does not
    /// re-base), so a scatter-gather front merges per-shard results
    /// without any id translation. The scan always runs the reference
    /// exact scalar arithmetic regardless of this index's configured
    /// backend, so the union of disjoint ranges covering `0..n`, merged
    /// under (score desc, id asc) and truncated to `k`, is bitwise
    /// identical to the single-node exact `top_k_trustees`.
    ///
    /// `hi` is clamped to `n_users`; an empty or inverted range returns
    /// no candidates.
    ///
    /// # Errors
    ///
    /// Returns [`ScoreError::UserOutOfRange`] for an unknown trustor
    /// (the *trustor* need not lie in `lo..hi` — any shard can rank for
    /// any trustor; the range restricts candidates only).
    pub fn top_k_trustees_in(
        &self,
        trustor: usize,
        k: usize,
        lo: usize,
        hi: usize,
    ) -> Result<Vec<(usize, f32)>, ScoreError> {
        let _k = ahntp_telemetry::KernelSpan::enter(
            "serve.topk.range",
            ahntp_telemetry::KernelKind::Score,
        );
        counter_add("serve.topk.range.calls", 1);
        self.check(trustor)?;
        let hi = hi.min(self.artifact.n_users);
        if lo >= hi {
            return Ok(Vec::new());
        }
        if self.defense.is_some() {
            return Ok(self.defended_top_k_in(trustor, k, lo, hi));
        }
        let ranked = crate::backend::exact_top_k_in(&self.artifact, trustor, k, lo, hi);
        let mut out: Vec<(usize, f32)> = ranked
            .into_iter()
            .map(|r| (r.user, self.calibrated(r.score)))
            .collect();
        // Same final sort as `top_k_trustees`: the documented
        // (score desc, id asc) tie-break, applied per shard *and* again
        // at the merge, keeps ties across shard boundaries well-defined.
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        Ok(out)
    }

    /// The defended candidate scan shared by `top_k_trustees` and
    /// `top_k_trustees_in`: rank *all* candidates in `lo..hi` with the
    /// exact scalar arithmetic, blend each with the prior, then apply the
    /// documented (score desc, id asc) tie-break and truncate. Because
    /// the blend happens before the per-shard sort, the union of disjoint
    /// shard ranges covering `0..n`, merged under the same order, is
    /// bitwise identical to the single-node defended scan.
    fn defended_top_k_in(&self, trustor: usize, k: usize, lo: usize, hi: usize) -> Vec<(usize, f32)> {
        let d = self.defense.as_ref().expect("defended scan without a defense prior");
        // `hi - lo` candidates = the whole range; truncation to `k` must
        // happen *after* blending or the prior could not promote a
        // candidate the raw dot order had cut.
        let ranked = crate::backend::exact_top_k_in(&self.artifact, trustor, hi - lo, lo, hi);
        let mut out: Vec<(usize, f32)> = ranked
            .into_iter()
            .map(|r| (r.user, d.blend(r.user, self.calibrated(r.score))))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    /// Patches refreshed head rows from a live model into the index in
    /// place. Rows arrive already L2-normalised (the export invariant),
    /// so scoring stays one dot product per pair. The backend re-derives
    /// exactly the patched rows (re-quantization under `int8`,
    /// posting-list reassignment under `ivf`), so the live-trust path
    /// keeps each backend's stated envelope.
    ///
    /// # Errors
    ///
    /// Returns a message when the patch is internally inconsistent, its
    /// dimensions disagree with the artifact, or a user id is out of
    /// range. The index is untouched on error.
    pub fn apply_head_patch(&mut self, patch: &HeadPatch) -> Result<(), String> {
        patch.check()?;
        if patch.is_empty() {
            return Ok(());
        }
        if patch.emb_dim != self.artifact.emb_dim || patch.head_dim != self.artifact.head_dim {
            return Err(format!(
                "head patch dims {}×{} do not match index dims {}×{}",
                patch.emb_dim, patch.head_dim, self.artifact.emb_dim, self.artifact.head_dim
            ));
        }
        if let Some(&bad) = patch.users.iter().find(|&&u| u >= self.artifact.n_users) {
            return Err(format!(
                "head patch user {bad} out of range (index holds {} users)",
                self.artifact.n_users
            ));
        }
        let (ed, hd) = (patch.emb_dim, patch.head_dim);
        // `to_mut` copies a zero-copy mapped matrix on first write: a
        // freshly mapped shard pays for exactly the matrices live patches
        // touch, never for the whole artifact.
        for (k, &u) in patch.users.iter().enumerate() {
            self.artifact.embeddings.to_mut()[u * ed..(u + 1) * ed]
                .copy_from_slice(&patch.emb_rows[k * ed..(k + 1) * ed]);
            self.artifact.trustor_head.to_mut()[u * hd..(u + 1) * hd]
                .copy_from_slice(&patch.trustor_rows[k * hd..(k + 1) * hd]);
            self.artifact.trustee_head.to_mut()[u * hd..(u + 1) * hd]
                .copy_from_slice(&patch.trustee_rows[k * hd..(k + 1) * hd]);
        }
        self.backend.on_patch(&self.artifact, &patch.users);
        counter_add("serve.index.patched_rows", patch.users.len() as u64);
        Ok(())
    }
}

/// Why [`SharedIndex::swap`] refused a candidate snapshot. Refusals leave
/// the currently-served index untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwapError {
    /// The offered snapshot's architecture fingerprint disagrees with the
    /// serving one — it was exported by a different model lineage and
    /// would silently change scoring semantics.
    FingerprintMismatch {
        /// Fingerprint of the index currently serving.
        current: u64,
        /// Fingerprint of the refused snapshot.
        offered: u64,
    },
    /// The offered snapshot's shape (`n_users`, `emb_dim`, `head_dim`)
    /// disagrees with the serving one — shard ranges and batched requests
    /// are sized against the current shape.
    ShapeMismatch {
        /// `(n_users, emb_dim, head_dim)` currently serving.
        current: (usize, usize, usize),
        /// `(n_users, emb_dim, head_dim)` of the refused snapshot.
        offered: (usize, usize, usize),
    },
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::FingerprintMismatch { current, offered } => write!(
                f,
                "snapshot fingerprint {offered:#018x} does not match serving fingerprint {current:#018x}"
            ),
            SwapError::ShapeMismatch { current, offered } => write!(
                f,
                "snapshot shape {offered:?} does not match serving shape {current:?} (n_users, emb_dim, head_dim)"
            ),
        }
    }
}

impl std::error::Error for SwapError {}

/// A [`TrustIndex`] behind a reader-writer lock: request workers and the
/// batcher score under read locks while the live-event applier patches
/// refreshed head rows under short write locks. A frozen server wraps its
/// index here too and simply never writes.
#[derive(Debug)]
pub struct SharedIndex {
    inner: RwLock<TrustIndex>,
}

impl SharedIndex {
    /// Wraps an index for shared serving.
    pub fn new(index: TrustIndex) -> SharedIndex {
        SharedIndex { inner: RwLock::new(index) }
    }

    /// Read access for scoring. The guard pins one index version: every
    /// score taken under a single guard sees one consistent artifact.
    pub fn read(&self) -> RwLockReadGuard<'_, TrustIndex> {
        self.inner.read().expect("index lock poisoned")
    }

    /// Applies a head patch under the write lock.
    ///
    /// # Errors
    ///
    /// As [`TrustIndex::apply_head_patch`]; the index is untouched on
    /// error.
    pub fn apply_head_patch(&self, patch: &HeadPatch) -> Result<(), String> {
        self.inner.write().expect("index lock poisoned").apply_head_patch(patch)
    }

    /// Atomically replaces the served index with a fully-built snapshot.
    ///
    /// The hot-swap discipline: callers build (decode/map + validate +
    /// backend construction) `new` **before** calling, so the write lock
    /// is held only for two compatibility checks and a pointer-sized
    /// move. In-flight requests holding read guards finish against the
    /// old index; requests arriving after the lock drops see the new one
    /// — no request ever observes a half-swapped state, and a crash
    /// before this call leaves the old snapshot serving untouched.
    ///
    /// # Errors
    ///
    /// Refuses (and leaves the current index serving) when the offered
    /// snapshot's fingerprint or shape disagrees with the serving one —
    /// see [`SwapError`].
    pub fn swap(&self, new: TrustIndex) -> Result<(), SwapError> {
        let mut guard = self.inner.write().expect("index lock poisoned");
        if guard.fingerprint() != new.fingerprint() {
            return Err(SwapError::FingerprintMismatch {
                current: guard.fingerprint(),
                offered: new.fingerprint(),
            });
        }
        let current = (guard.n_users(), guard.emb_dim(), guard.head_dim());
        let offered = (new.n_users(), new.emb_dim(), new.head_dim());
        if current != offered {
            return Err(SwapError::ShapeMismatch { current, offered });
        }
        let mut new = new;
        // The defense prior is graph-derived state, not snapshot state: a
        // hot model swap keeps the active defense unless the incoming
        // index carries its own (the shape check above guarantees the
        // carried prior still covers every user).
        if new.defense.is_none() {
            new.defense = guard.defense.clone();
        }
        *guard = new;
        counter_add("serve.index.swaps", 1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built artifact with unit head rows at known angles so every
    /// dot product is predictable.
    fn toy_index() -> TrustIndex {
        let artifact = TrustArtifact {
            model: "AHNTP".to_string(),
            fingerprint: 0,
            calibration: 0.5,
            n_users: 4,
            emb_dim: 2,
            head_dim: 2,
            embeddings: vec![0.0; 8].into(),
            // Trustor rows: all point along +x.
            trustor_head: vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0].into(),
            // Trustee rows at distinct angles: cos = 1, 0.6, 0, -1.
            trustee_head: vec![1.0, 0.0, 0.6, 0.8, 0.0, 1.0, -1.0, 0.0].into(),
        };
        TrustIndex::from_artifact_with(artifact, BackendKind::Exact).unwrap()
    }

    #[test]
    fn scores_are_the_calibrated_sigmoid_of_the_dot() {
        let index = toy_index();
        let sig = |cos: f32| 1.0 / (1.0 + (-cos / 0.5).exp());
        assert_eq!(index.score(0, 0).unwrap(), sig(1.0));
        assert_eq!(index.score(1, 1).unwrap(), sig(0.6));
        assert_eq!(index.score(2, 2).unwrap(), 0.5); // cos 0 → σ(0)
        assert_eq!(index.score(3, 3).unwrap(), sig(-1.0));
    }

    #[test]
    fn batch_scores_match_singles() {
        let index = toy_index();
        let pairs = [(0, 1), (1, 3), (3, 0), (2, 2)];
        let batch = index.score_pairs(&pairs).unwrap();
        for (&(u, v), &b) in pairs.iter().zip(&batch) {
            assert_eq!(index.score(u, v).unwrap(), b);
        }
    }

    #[test]
    fn out_of_range_users_are_typed_errors() {
        let index = toy_index();
        assert_eq!(
            index.score(0, 7),
            Err(ScoreError::UserOutOfRange { user: 7, n_users: 4 })
        );
        assert!(index.score_pairs(&[(0, 1), (9, 0)]).is_err());
        assert!(index.top_k_trustees(4, 1).is_err());
        let msg = ScoreError::UserOutOfRange { user: 7, n_users: 4 }.to_string();
        assert!(msg.contains('7') && msg.contains('4'), "{msg}");
    }

    #[test]
    fn top_k_ranks_by_score_and_excludes_self() {
        let index = toy_index();
        // Trustor 0 scores trustees by cosine: u1 = 0.6, u2 = 0.0, u3 = -1.
        let top = index.top_k_trustees(0, 2).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 1);
        assert_eq!(top[1].0, 2);
        assert!(top[0].1 > top[1].1);
        assert_eq!(top[0].1, index.score(0, 1).unwrap());
        // k beyond the candidate count returns everyone but the trustor.
        let all = index.top_k_trustees(0, 10).unwrap();
        assert_eq!(
            all.iter().map(|&(u, _)| u).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        // k = 0 is empty, not an error.
        assert!(index.top_k_trustees(0, 0).unwrap().is_empty());
    }

    /// The documented deterministic tie-break: score descending, then
    /// user id ascending — asserted on exact ties under every backend so
    /// exact-vs-approx recall comparisons are well-defined.
    #[test]
    fn top_k_breaks_score_ties_by_ascending_user_id() {
        // Five trustees; ids 1, 2, 4 share one row bit-for-bit (dot 0.6
        // from trustor 0), id 3 scores higher, id 0 is the trustor.
        let tied = [0.6f32, 0.8];
        let artifact = TrustArtifact {
            model: "AHNTP".to_string(),
            fingerprint: 7,
            calibration: 0.5,
            n_users: 5,
            emb_dim: 2,
            head_dim: 2,
            embeddings: vec![0.0; 10].into(),
            trustor_head: [1.0, 0.0].repeat(5).into(),
            trustee_head: [
                &tied[..],
                &tied[..],
                &tied[..],
                &[1.0, 0.0][..],
                &tied[..],
            ]
            .concat()
            .into(),
        };
        for kind in [
            BackendKind::Exact,
            BackendKind::Simd,
            BackendKind::Int8,
            BackendKind::Ivf(crate::backend::IvfParams::default()),
        ] {
            let index =
                TrustIndex::from_artifact_with(artifact.clone(), kind).unwrap();
            let got: Vec<usize> = index
                .top_k_trustees(0, 5)
                .unwrap()
                .into_iter()
                .map(|(u, _)| u)
                .collect();
            // Highest score first, then the tied block in ascending id.
            assert_eq!(got, vec![3, 1, 2, 4], "{} backend", kind.name());
            // A k that cuts through the tied block keeps the same prefix.
            let got: Vec<usize> = index
                .top_k_trustees(0, 2)
                .unwrap()
                .into_iter()
                .map(|(u, _)| u)
                .collect();
            assert_eq!(got, vec![3, 1], "{} backend at k=2", kind.name());
        }
    }

    #[test]
    fn loading_rejects_garbage_frames() {
        assert!(TrustIndex::load(b"definitely not an artifact").is_err());
    }

    #[test]
    fn backend_selection_is_visible_and_swappable() {
        let index = toy_index();
        assert_eq!(index.backend_name(), "exact");
        assert_eq!(index.backend_kind(), BackendKind::Exact);
        assert_eq!(index.score_error_bound(), 0.0);
        assert!(!index.approximate_top_k());
        let exact_scores = index.score_pairs(&[(0, 1), (2, 3)]).unwrap();

        let simd = index.clone().with_backend(BackendKind::Simd);
        assert_eq!(simd.backend_name(), "simd");
        assert_eq!(simd.score_pairs(&[(0, 1), (2, 3)]).unwrap(), exact_scores);

        let int8 = simd.with_backend(BackendKind::Int8);
        assert_eq!(int8.backend_name(), "int8");
        assert!(int8.approximate_top_k());
        let bound = int8.score_error_bound();
        assert!(bound > 0.0 && bound < 0.1, "int8 bound {bound}");
        for (got, want) in int8.score_pairs(&[(0, 1), (2, 3)]).unwrap().iter().zip(&exact_scores) {
            assert!((got - want).abs() <= bound, "{got} vs {want} (bound {bound})");
        }
        // Quantized heads are smaller even at toy dims (the ~4× ratio
        // needs head_dim to amortize the two f32 row scales: at d = 32,
        // 72 bytes vs 256).
        assert!(int8.bytes_per_user() < index.bytes_per_user());
    }

    #[test]
    fn head_patches_update_exactly_the_named_rows() {
        let mut index = toy_index();
        let sig = |cos: f32| 1.0 / (1.0 + (-cos / 0.5).exp());
        let patch = HeadPatch {
            users: vec![1, 3],
            emb_dim: 2,
            head_dim: 2,
            emb_rows: vec![0.5, 0.5, -0.5, -0.5],
            trustor_rows: vec![0.0, 1.0, 1.0, 0.0],
            trustee_rows: vec![1.0, 0.0, 0.0, -1.0],
        };
        index.apply_head_patch(&patch).unwrap();
        // Patched rows answer with the new geometry: trustor 1 now points
        // along +y, trustee 3 along −y.
        assert_eq!(index.score(1, 2).unwrap(), sig(1.0));
        assert_eq!(index.score(0, 3).unwrap(), 0.5);
        // Rows the patch did not name are untouched.
        assert_eq!(index.score(2, 2).unwrap(), 0.5);
        assert_eq!(index.score(0, 0).unwrap(), sig(1.0));
    }

    #[test]
    fn bad_head_patches_are_rejected_and_leave_the_index_alone() {
        let mut index = toy_index();
        let before = index.score_pairs(&[(0, 1), (2, 3)]).unwrap();
        // Inconsistent row buffer.
        let mut patch = HeadPatch::empty(2, 2);
        patch.users = vec![0];
        assert!(index.apply_head_patch(&patch).is_err());
        // Dimension mismatch.
        let patch = HeadPatch {
            users: vec![0],
            emb_dim: 3,
            head_dim: 2,
            emb_rows: vec![0.0; 3],
            trustor_rows: vec![1.0, 0.0],
            trustee_rows: vec![1.0, 0.0],
        };
        let err = index.apply_head_patch(&patch).unwrap_err();
        assert!(err.contains("do not match"), "{err}");
        // Out-of-range user.
        let patch = HeadPatch {
            users: vec![9],
            emb_dim: 2,
            head_dim: 2,
            emb_rows: vec![0.0; 2],
            trustor_rows: vec![1.0, 0.0],
            trustee_rows: vec![1.0, 0.0],
        };
        let err = index.apply_head_patch(&patch).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        assert_eq!(index.score_pairs(&[(0, 1), (2, 3)]).unwrap(), before);
        // The empty patch is a no-op, not an error.
        assert!(index.apply_head_patch(&HeadPatch::empty(2, 2)).is_ok());
    }

    #[test]
    fn shared_index_serves_reads_and_applies_writes() {
        let shared = SharedIndex::new(toy_index());
        let before = shared.read().score(0, 1).unwrap();
        let patch = HeadPatch {
            users: vec![1],
            emb_dim: 2,
            head_dim: 2,
            emb_rows: vec![0.0, 0.0],
            trustor_rows: vec![0.0, 1.0],
            trustee_rows: vec![1.0, 0.0],
        };
        shared.apply_head_patch(&patch).unwrap();
        let after = shared.read().score(0, 1).unwrap();
        // Trustee 1 rotated from cos 0.6 to cos 1.0.
        assert!(after > before, "{after} vs {before}");
    }

    #[test]
    fn range_top_k_unions_reproduce_the_full_scan() {
        let artifact = wide_artifact(23);
        let index =
            TrustIndex::from_artifact_with(artifact, BackendKind::Exact).unwrap();
        for trustor in [0usize, 7, 22] {
            for k in [1usize, 5, 23] {
                let want = index.top_k_trustees(trustor, k).unwrap();
                // Split 0..23 unevenly, merge per-range results under the
                // documented tie-break, truncate — must match bitwise.
                let mut merged: Vec<(usize, f32)> = Vec::new();
                for (lo, hi) in [(0usize, 9usize), (9, 10), (10, 23)] {
                    merged.extend(index.top_k_trustees_in(trustor, k, lo, hi).unwrap());
                }
                merged.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                merged.truncate(k);
                let got: Vec<(usize, u32)> =
                    merged.into_iter().map(|(u, s)| (u, s.to_bits())).collect();
                let want: Vec<(usize, u32)> =
                    want.into_iter().map(|(u, s)| (u, s.to_bits())).collect();
                assert_eq!(want, got, "trustor {trustor}, k {k}");
            }
        }
        // Ranges clamp and empty ranges are empty, not errors.
        assert!(index.top_k_trustees_in(0, 3, 23, 23).unwrap().is_empty());
        assert!(index.top_k_trustees_in(0, 3, 9, 4).unwrap().is_empty());
        assert_eq!(
            index.top_k_trustees_in(0, 3, 20, 99).unwrap(),
            index.top_k_trustees_in(0, 3, 20, 23).unwrap()
        );
        // The trustor itself may lie outside the candidate range.
        assert!(index.top_k_trustees_in(0, 3, 5, 9).is_ok());
        assert!(index.top_k_trustees_in(99, 3, 0, 23).is_err());
    }

    #[test]
    fn swap_replaces_compatible_snapshots_and_refuses_mismatches() {
        let shared = SharedIndex::new(toy_index());
        let before = shared.read().score(0, 1).unwrap();

        // A compatible snapshot (same fingerprint and shape) swaps in.
        let mut replacement = toy_index();
        let patch = HeadPatch {
            users: vec![1],
            emb_dim: 2,
            head_dim: 2,
            emb_rows: vec![0.0, 0.0],
            trustor_rows: vec![1.0, 0.0],
            trustee_rows: vec![1.0, 0.0], // trustee 1: cos 0.6 → 1.0
        };
        replacement.apply_head_patch(&patch).unwrap();
        shared.swap(replacement).unwrap();
        assert!(shared.read().score(0, 1).unwrap() > before);

        // A fingerprint mismatch is refused and the served index is
        // untouched.
        let mut artifact = TrustArtifact {
            model: "AHNTP".to_string(),
            fingerprint: 0xbad,
            calibration: 0.5,
            n_users: 4,
            emb_dim: 2,
            head_dim: 2,
            embeddings: vec![0.0; 8].into(),
            trustor_head: [1.0, 0.0].repeat(4).into(),
            trustee_head: [0.0, 1.0].repeat(4).into(),
        };
        let stranger =
            TrustIndex::from_artifact_with(artifact.clone(), BackendKind::Exact).unwrap();
        let err = shared.swap(stranger).unwrap_err();
        assert!(
            matches!(err, SwapError::FingerprintMismatch { offered: 0xbad, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("fingerprint"), "{err}");

        // Same fingerprint, different shape: also refused.
        artifact.fingerprint = 0;
        artifact.n_users = 3;
        artifact.embeddings = vec![0.0; 6].into();
        artifact.trustor_head = [1.0, 0.0].repeat(3).into();
        artifact.trustee_head = [0.0, 1.0].repeat(3).into();
        let shrunk = TrustIndex::from_artifact_with(artifact, BackendKind::Exact).unwrap();
        let err = shared.swap(shrunk).unwrap_err();
        assert!(matches!(err, SwapError::ShapeMismatch { .. }), "{err}");
        assert_eq!(shared.read().n_users(), 4, "refusals leave the index serving");
    }

    /// Many-user index with distinct head angles so rankings are
    /// nontrivial and dots collide only where calibration rounds.
    fn wide_artifact(n_users: usize) -> TrustArtifact {
        let row = |i: usize| {
            let a = i as f32 * 0.37;
            vec![a.cos(), a.sin()]
        };
        TrustArtifact {
            model: "AHNTP".to_string(),
            fingerprint: 0,
            calibration: 0.5,
            n_users,
            emb_dim: 2,
            head_dim: 2,
            embeddings: vec![0.0; n_users * 2].into(),
            trustor_head: (0..n_users).flat_map(row).collect(),
            trustee_head: (0..n_users).rev().flat_map(row).collect(),
        }
    }

    #[test]
    fn parallel_scoring_is_bitwise_identical_to_serial_for_every_backend() {
        let artifact = wide_artifact(41); // ragged over every band size below
        let pairs: Vec<(usize, usize)> =
            (0..37).map(|i| (i % 41, (i * 7 + 3) % 41)).collect();
        let old_threshold = ahntp_par::par_threshold();
        let old_threads = ahntp_par::threads();
        ahntp_par::set_par_threshold(0); // force the parallel path
        for kind in [
            BackendKind::Exact,
            BackendKind::Simd,
            BackendKind::Int8,
            BackendKind::Ivf(crate::backend::IvfParams::default()),
        ] {
            let index = TrustIndex::from_artifact_with(artifact.clone(), kind).unwrap();
            ahntp_par::set_threads(1);
            let scores_serial: Vec<u32> = index
                .score_pairs(&pairs)
                .unwrap()
                .iter()
                .map(|s| s.to_bits())
                .collect();
            let topk_serial: Vec<Vec<(usize, u32)>> = (0..41)
                .map(|u| {
                    index
                        .top_k_trustees(u, 5)
                        .unwrap()
                        .into_iter()
                        .map(|(v, s)| (v, s.to_bits()))
                        .collect()
                })
                .collect();
            for t in [2usize, 7] {
                ahntp_par::set_threads(t);
                let scores: Vec<u32> = index
                    .score_pairs(&pairs)
                    .unwrap()
                    .iter()
                    .map(|s| s.to_bits())
                    .collect();
                assert_eq!(
                    scores_serial, scores,
                    "{} score_pairs at {t} threads",
                    kind.name()
                );
                for (u, want) in topk_serial.iter().enumerate() {
                    let got: Vec<(usize, u32)> = index
                        .top_k_trustees(u, 5)
                        .unwrap()
                        .into_iter()
                        .map(|(v, s)| (v, s.to_bits()))
                        .collect();
                    assert_eq!(
                        want,
                        &got,
                        "{} top_k_trustees({u}) at {t} threads",
                        kind.name()
                    );
                }
            }
        }
        ahntp_par::set_par_threshold(old_threshold);
        ahntp_par::set_threads(old_threads);
    }

    #[test]
    fn simd_is_bitwise_equal_to_exact_on_a_wide_index() {
        let artifact = wide_artifact(53);
        let exact = TrustIndex::from_artifact_with(artifact.clone(), BackendKind::Exact).unwrap();
        let simd = TrustIndex::from_artifact_with(artifact, BackendKind::Simd).unwrap();
        let pairs: Vec<(usize, usize)> =
            (0..29).map(|i| (i % 53, (i * 11 + 5) % 53)).collect();
        let a = exact.score_pairs(&pairs).unwrap();
        let b = simd.score_pairs(&pairs).unwrap();
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        for u in 0..53 {
            let a = exact.top_k_trustees(u, 7).unwrap();
            let b = simd.top_k_trustees(u, 7).unwrap();
            assert_eq!(
                a.iter().map(|&(v, s)| (v, s.to_bits())).collect::<Vec<_>>(),
                b.iter().map(|&(v, s)| (v, s.to_bits())).collect::<Vec<_>>(),
                "top_k({u})"
            );
        }
    }

    // ------------------------- defended scoring -------------------------

    fn toy_defense(alpha: f32) -> DefensePrior {
        // Trustees 0-2 honest (full prior), trustee 3 Sybil (no prior).
        DefensePrior::new(alpha, vec![1.0, 1.0, 1.0, 0.0]).unwrap()
    }

    #[test]
    fn defense_prior_validates_its_inputs() {
        assert!(DefensePrior::new(0.0, vec![0.5]).is_ok());
        assert!(DefensePrior::new(1.0, vec![0.5]).is_ok());
        assert!(DefensePrior::new(-0.1, vec![0.5]).is_err());
        assert!(DefensePrior::new(1.1, vec![0.5]).is_err());
        assert!(DefensePrior::new(f32::NAN, vec![0.5]).is_err());
        assert!(DefensePrior::new(0.5, vec![]).is_err());
        assert!(DefensePrior::new(0.5, vec![0.5, 1.5]).is_err());
        assert!(DefensePrior::new(0.5, vec![f32::NAN]).is_err());
        // Length must match the index.
        let err = toy_index().with_defense(DefensePrior::new(0.5, vec![1.0]).unwrap());
        assert!(err.is_err());
    }

    #[test]
    fn defended_scores_are_the_documented_blend() {
        let raw = toy_index();
        let alpha = 0.4f32;
        let index = toy_index().with_defense(toy_defense(alpha)).unwrap();
        assert!(index.defended() && !raw.defended());
        assert_eq!(index.defense().unwrap().alpha(), alpha);
        for (u, v, prior) in [(0, 1, 1.0f32), (1, 3, 0.0), (2, 0, 1.0)] {
            let learned = raw.score(u, v).unwrap();
            let expected = (1.0 - alpha) * learned + alpha * prior;
            assert_eq!(index.score(u, v).unwrap(), expected, "score({u}, {v})");
        }
        // Batch path blends identically.
        let pairs = [(0, 1), (1, 3), (2, 0), (3, 2)];
        let batch = index.score_pairs(&pairs).unwrap();
        for (&(u, v), &b) in pairs.iter().zip(&batch) {
            assert_eq!(index.score(u, v).unwrap(), b, "batch score({u}, {v})");
        }
        // alpha = 0 serves the raw learned score bitwise.
        let undefended = toy_index().with_defense(toy_defense(0.0)).unwrap();
        for &(u, v) in &pairs {
            assert_eq!(
                undefended.score(u, v).unwrap().to_bits(),
                raw.score(u, v).unwrap().to_bits()
            );
        }
    }

    #[test]
    fn defended_top_k_lets_the_prior_rerank() {
        // Undefended, trustor 0 ranks trustees 1 > 2 > 3 by cosine. With
        // a prior of 0 on trustee 1 (treat it as the Sybil) and a strong
        // alpha, trustee 1 must fall to the bottom.
        let prior = DefensePrior::new(0.9, vec![1.0, 0.0, 1.0, 1.0]).unwrap();
        let index = toy_index().with_defense(prior).unwrap();
        let got: Vec<usize> = index
            .top_k_trustees(0, 3)
            .unwrap()
            .into_iter()
            .map(|(u, _)| u)
            .collect();
        assert_eq!(got, vec![2, 3, 1], "prior must be able to demote a candidate");
        // Entries agree with the pair-scoring path bitwise.
        for (u, s) in index.top_k_trustees(0, 3).unwrap() {
            assert_eq!(s.to_bits(), index.score(0, u).unwrap().to_bits());
        }
        // Range unions still reproduce the full defended scan.
        let full = index.top_k_trustees(0, 3).unwrap();
        let mut merged: Vec<(usize, f32)> = [(0usize, 2usize), (2, 4)]
            .iter()
            .flat_map(|&(lo, hi)| index.top_k_trustees_in(0, 3, lo, hi).unwrap())
            .collect();
        merged.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        merged.truncate(3);
        assert_eq!(
            full.iter().map(|&(u, s)| (u, s.to_bits())).collect::<Vec<_>>(),
            merged.iter().map(|&(u, s)| (u, s.to_bits())).collect::<Vec<_>>()
        );
    }

    #[test]
    fn defended_top_k_is_identical_across_backends() {
        let artifact = wide_artifact(53);
        let prior: Vec<f32> = (0..53).map(|i| if i % 5 == 0 { 0.0 } else { 1.0 }).collect();
        let reference: Vec<(usize, u32)> = {
            let index = TrustIndex::from_artifact_with(artifact.clone(), BackendKind::Exact)
                .unwrap()
                .with_defense(DefensePrior::new(0.35, prior.clone()).unwrap())
                .unwrap();
            index
                .top_k_trustees(7, 9)
                .unwrap()
                .into_iter()
                .map(|(u, s)| (u, s.to_bits()))
                .collect()
        };
        for kind in [
            BackendKind::Simd,
            BackendKind::Int8,
            BackendKind::Ivf(crate::backend::IvfParams::default()),
        ] {
            let index = TrustIndex::from_artifact_with(artifact.clone(), kind)
                .unwrap()
                .with_defense(DefensePrior::new(0.35, prior.clone()).unwrap())
                .unwrap();
            let got: Vec<(usize, u32)> = index
                .top_k_trustees(7, 9)
                .unwrap()
                .into_iter()
                .map(|(u, s)| (u, s.to_bits()))
                .collect();
            // Defended top-k bypasses approximate pre-ranking entirely.
            assert_eq!(got, reference, "{} backend", kind.name());
        }
    }

    #[test]
    fn defense_survives_clone_backend_rebuild_and_swap() {
        let index = toy_index().with_defense(toy_defense(0.5)).unwrap();
        assert!(index.clone().defended(), "Clone must carry the defense");
        assert!(
            index.clone().with_backend(BackendKind::Simd).defended(),
            "backend rebuild must carry the defense"
        );
        // A hot swap keeps the active defense when the snapshot has none…
        let shared = SharedIndex::new(index);
        shared.swap(toy_index()).unwrap();
        assert!(shared.read().defended(), "swap must keep the active defense");
        assert_eq!(shared.read().defense().unwrap().alpha(), 0.5);
        // …and honors the snapshot's own defense when it has one.
        let replacement = toy_index().with_defense(toy_defense(0.25)).unwrap();
        shared.swap(replacement).unwrap();
        assert_eq!(shared.read().defense().unwrap().alpha(), 0.25);
        // `without_defense` detaches.
        assert!(!toy_index()
            .with_defense(toy_defense(0.5))
            .unwrap()
            .without_defense()
            .defended());
    }
}
