//! The in-memory scoring index behind the serving endpoints.
//!
//! A [`TrustIndex`] wraps a decoded [`TrustArtifact`] and answers trust
//! queries with no graph machinery: the artifact's head rows are already
//! L2-normalised, so `score(u, v)` is one `O(d)` dot product followed by
//! the trainer's calibrated sigmoid, and `top_k_trustees` is a single
//! heap-tracked scan over all candidate rows.
//!
//! Big batches and big candidate scans are split across the `ahntp-par`
//! worker pool: each pair/candidate is scored by exactly one task with
//! the serial arithmetic, and the per-band top-k heaps merge under the
//! same total order the serial heap uses, so results are bitwise
//! identical to serial at any thread count.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{RwLock, RwLockReadGuard};

use ahntp_nn::{ArtifactError, TrustArtifact};
use ahntp_stream::HeadPatch;
use ahntp_telemetry::counter_add;

/// Errors from scoring queries against a [`TrustIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScoreError {
    /// A queried user id is not a row of the index.
    UserOutOfRange {
        /// The offending user id.
        user: usize,
        /// Number of users the index holds (valid ids are `0..n_users`).
        n_users: usize,
    },
}

impl std::fmt::Display for ScoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScoreError::UserOutOfRange { user, n_users } => {
                write!(f, "user {user} out of range (index holds {n_users} users)")
            }
        }
    }
}

impl std::error::Error for ScoreError {}

/// A candidate ordered by score for the top-k heap. Scores are finite
/// (artifact validation guarantees finite inputs), so `total_cmp` is a
/// plain total order here.
#[derive(Debug, PartialEq)]
struct Ranked {
    score: f32,
    user: usize,
}

impl Eq for Ranked {}

impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Ranked) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ranked {
    fn cmp(&self, other: &Ranked) -> std::cmp::Ordering {
        // Ties broken toward the smaller user id for determinism.
        self.score
            .total_cmp(&other.score)
            .then(other.user.cmp(&self.user))
    }
}

/// Frozen trust-scoring index over an exported [`TrustArtifact`].
#[derive(Debug, Clone)]
pub struct TrustIndex {
    artifact: TrustArtifact,
}

impl TrustIndex {
    /// Builds the index from a decoded artifact, re-validating it.
    ///
    /// # Errors
    ///
    /// Returns the artifact's own [`ArtifactError`] when it is
    /// inconsistent.
    pub fn from_artifact(artifact: TrustArtifact) -> Result<TrustIndex, ArtifactError> {
        artifact.validate()?;
        Ok(TrustIndex { artifact })
    }

    /// Decodes an `AHNTPSRV1` frame and builds the index.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError`] on malformed, unsupported, or
    /// inconsistent frames.
    pub fn load(bytes: &[u8]) -> Result<TrustIndex, ArtifactError> {
        TrustIndex::from_artifact(TrustArtifact::decode(bytes)?)
    }

    /// Number of users the index can score.
    pub fn n_users(&self) -> usize {
        self.artifact.n_users
    }

    /// Name of the exporting model (e.g. `"AHNTP"`).
    pub fn model(&self) -> &str {
        &self.artifact.model
    }

    /// Architecture fingerprint of the exporting model (0 = untagged).
    pub fn fingerprint(&self) -> u64 {
        self.artifact.fingerprint
    }

    fn check(&self, user: usize) -> Result<(), ScoreError> {
        if user >= self.artifact.n_users {
            Err(ScoreError::UserOutOfRange {
                user,
                n_users: self.artifact.n_users,
            })
        } else {
            Ok(())
        }
    }

    /// Raw head dot product for a pair — the cosine of the tower outputs,
    /// since rows are L2-normalised at export time.
    fn dot(&self, trustor: usize, trustee: usize) -> f32 {
        let d = self.artifact.head_dim;
        self.artifact.trustor_head[trustor * d..(trustor + 1) * d]
            .iter()
            .zip(&self.artifact.trustee_head[trustee * d..(trustee + 1) * d])
            .map(|(a, b)| a * b)
            .sum()
    }

    fn calibrated(&self, dot: f32) -> f32 {
        1.0 / (1.0 + (-dot / self.artifact.calibration).exp())
    }

    /// Probability that `trustor` trusts `trustee`:
    /// `σ(⟨trustor_head[u], trustee_head[v]⟩ / c)`, matching
    /// `Ahntp::predict` within float tolerance.
    ///
    /// # Errors
    ///
    /// Returns [`ScoreError::UserOutOfRange`] when either id is not a row.
    pub fn score(&self, trustor: usize, trustee: usize) -> Result<f32, ScoreError> {
        self.check(trustor)?;
        self.check(trustee)?;
        Ok(self.calibrated(self.dot(trustor, trustee)))
    }

    /// Scores a batch of `(trustor, trustee)` pairs in order.
    ///
    /// # Errors
    ///
    /// Fails on the first out-of-range id; no partial results.
    pub fn score_pairs(&self, pairs: &[(usize, usize)]) -> Result<Vec<f32>, ScoreError> {
        let _k = ahntp_telemetry::KernelSpan::enter(
            "serve.score_pairs",
            ahntp_telemetry::KernelKind::Score,
        );
        for &(u, v) in pairs {
            self.check(u)?;
            self.check(v)?;
        }
        if ahntp_par::par_enabled(2 * pairs.len() * self.artifact.head_dim) && pairs.len() >= 2
        {
            counter_add("serve.score_pairs.par_calls", 1);
            let mut out = vec![0.0f32; pairs.len()];
            let band = ahntp_par::band_size(pairs.len());
            ahntp_par::par_chunks(&mut out, band, |ci, chunk| {
                let off = ci * band;
                for (i, o) in chunk.iter_mut().enumerate() {
                    let (u, v) = pairs[off + i];
                    *o = self.calibrated(self.dot(u, v));
                }
            });
            return Ok(out);
        }
        Ok(pairs.iter().map(|&(u, v)| self.calibrated(self.dot(u, v))).collect())
    }

    /// Heap-tracked scan over the candidate band `c0..c1` (excluding
    /// `trustor`): the best `k` raw-dot candidates, in no particular
    /// order. Candidate sets are banding-independent because [`Ranked`]
    /// is a total order over distinct user ids — there are no ties for
    /// the heap to break arbitrarily.
    fn top_k_band(&self, trustor: usize, k: usize, c0: usize, c1: usize) -> Vec<Ranked> {
        let mut heap: BinaryHeap<Reverse<Ranked>> = BinaryHeap::with_capacity(k + 1);
        for candidate in c0..c1 {
            if candidate == trustor {
                continue;
            }
            let score = self.dot(trustor, candidate);
            if heap.len() < k {
                heap.push(Reverse(Ranked { score, user: candidate }));
            } else if let Some(worst) = heap.peek() {
                if (Ranked { score, user: candidate }) > worst.0 {
                    heap.pop();
                    heap.push(Reverse(Ranked { score, user: candidate }));
                }
            }
        }
        heap.into_iter().map(|Reverse(r)| r).collect()
    }

    /// The `k` most-trusted candidate trustees for `trustor` (excluding
    /// `trustor` itself), best first; ties break toward smaller user ids.
    /// Returns fewer than `k` entries only when the index holds fewer
    /// candidates.
    ///
    /// # Errors
    ///
    /// Returns [`ScoreError::UserOutOfRange`] for an unknown trustor.
    pub fn top_k_trustees(
        &self,
        trustor: usize,
        k: usize,
    ) -> Result<Vec<(usize, f32)>, ScoreError> {
        let _k = ahntp_telemetry::KernelSpan::enter(
            "serve.topk",
            ahntp_telemetry::KernelKind::Score,
        );
        self.check(trustor)?;
        let n = self.artifact.n_users;
        let ranked = if ahntp_par::par_enabled(2 * n * self.artifact.head_dim) && n >= 2 {
            // Band the candidate scan, keep k per band, then select the
            // global top k from the union. The union is a superset of the
            // serial heap's survivors and Ranked never ties, so the final
            // selection is the exact serial candidate set.
            counter_add("serve.topk.par_calls", 1);
            let band = ahntp_par::band_size(n);
            let n_bands = n.div_ceil(band);
            let mut merged: Vec<Ranked> = ahntp_par::par_map(n_bands, |bi| {
                let c0 = bi * band;
                self.top_k_band(trustor, k, c0, (c0 + band).min(n))
            })
            .into_iter()
            .flatten()
            .collect();
            merged.sort_by(|a, b| b.cmp(a));
            merged.truncate(k);
            merged
        } else {
            self.top_k_band(trustor, k, 0, n)
        };
        let mut out: Vec<(usize, f32)> = ranked
            .into_iter()
            .map(|r| (r.user, self.calibrated(r.score)))
            .collect();
        // The dot→probability map is monotonic, so sorting by probability
        // equals sorting by dot product — except where calibration rounds
        // two distinct dots to the same f32, where the id tiebreak takes
        // over; both paths feed the same candidate set through the same
        // sort, so the output order is identical either way.
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        Ok(out)
    }

    /// Patches refreshed head rows from a live model into the index in
    /// place. Rows arrive already L2-normalised (the export invariant),
    /// so scoring stays one dot product per pair.
    ///
    /// # Errors
    ///
    /// Returns a message when the patch is internally inconsistent, its
    /// dimensions disagree with the artifact, or a user id is out of
    /// range. The index is untouched on error.
    pub fn apply_head_patch(&mut self, patch: &HeadPatch) -> Result<(), String> {
        patch.check()?;
        if patch.is_empty() {
            return Ok(());
        }
        if patch.emb_dim != self.artifact.emb_dim || patch.head_dim != self.artifact.head_dim {
            return Err(format!(
                "head patch dims {}×{} do not match index dims {}×{}",
                patch.emb_dim, patch.head_dim, self.artifact.emb_dim, self.artifact.head_dim
            ));
        }
        if let Some(&bad) = patch.users.iter().find(|&&u| u >= self.artifact.n_users) {
            return Err(format!(
                "head patch user {bad} out of range (index holds {} users)",
                self.artifact.n_users
            ));
        }
        let (ed, hd) = (patch.emb_dim, patch.head_dim);
        for (k, &u) in patch.users.iter().enumerate() {
            self.artifact.embeddings[u * ed..(u + 1) * ed]
                .copy_from_slice(&patch.emb_rows[k * ed..(k + 1) * ed]);
            self.artifact.trustor_head[u * hd..(u + 1) * hd]
                .copy_from_slice(&patch.trustor_rows[k * hd..(k + 1) * hd]);
            self.artifact.trustee_head[u * hd..(u + 1) * hd]
                .copy_from_slice(&patch.trustee_rows[k * hd..(k + 1) * hd]);
        }
        counter_add("serve.index.patched_rows", patch.users.len() as u64);
        Ok(())
    }
}

/// A [`TrustIndex`] behind a reader-writer lock: request workers and the
/// batcher score under read locks while the live-event applier patches
/// refreshed head rows under short write locks. A frozen server wraps its
/// index here too and simply never writes.
#[derive(Debug)]
pub struct SharedIndex {
    inner: RwLock<TrustIndex>,
}

impl SharedIndex {
    /// Wraps an index for shared serving.
    pub fn new(index: TrustIndex) -> SharedIndex {
        SharedIndex { inner: RwLock::new(index) }
    }

    /// Read access for scoring. The guard pins one index version: every
    /// score taken under a single guard sees one consistent artifact.
    pub fn read(&self) -> RwLockReadGuard<'_, TrustIndex> {
        self.inner.read().expect("index lock poisoned")
    }

    /// Applies a head patch under the write lock.
    ///
    /// # Errors
    ///
    /// As [`TrustIndex::apply_head_patch`]; the index is untouched on
    /// error.
    pub fn apply_head_patch(&self, patch: &HeadPatch) -> Result<(), String> {
        self.inner.write().expect("index lock poisoned").apply_head_patch(patch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built artifact with unit head rows at known angles so every
    /// dot product is predictable.
    fn toy_index() -> TrustIndex {
        let artifact = TrustArtifact {
            model: "AHNTP".to_string(),
            fingerprint: 0,
            calibration: 0.5,
            n_users: 4,
            emb_dim: 2,
            head_dim: 2,
            embeddings: vec![0.0; 8],
            // Trustor rows: all point along +x.
            trustor_head: vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0],
            // Trustee rows at distinct angles: cos = 1, 0.6, 0, -1.
            trustee_head: vec![1.0, 0.0, 0.6, 0.8, 0.0, 1.0, -1.0, 0.0],
        };
        TrustIndex::from_artifact(artifact).unwrap()
    }

    #[test]
    fn scores_are_the_calibrated_sigmoid_of_the_dot() {
        let index = toy_index();
        let sig = |cos: f32| 1.0 / (1.0 + (-cos / 0.5).exp());
        assert_eq!(index.score(0, 0).unwrap(), sig(1.0));
        assert_eq!(index.score(1, 1).unwrap(), sig(0.6));
        assert_eq!(index.score(2, 2).unwrap(), 0.5); // cos 0 → σ(0)
        assert_eq!(index.score(3, 3).unwrap(), sig(-1.0));
    }

    #[test]
    fn batch_scores_match_singles() {
        let index = toy_index();
        let pairs = [(0, 1), (1, 3), (3, 0), (2, 2)];
        let batch = index.score_pairs(&pairs).unwrap();
        for (&(u, v), &b) in pairs.iter().zip(&batch) {
            assert_eq!(index.score(u, v).unwrap(), b);
        }
    }

    #[test]
    fn out_of_range_users_are_typed_errors() {
        let index = toy_index();
        assert_eq!(
            index.score(0, 7),
            Err(ScoreError::UserOutOfRange { user: 7, n_users: 4 })
        );
        assert!(index.score_pairs(&[(0, 1), (9, 0)]).is_err());
        assert!(index.top_k_trustees(4, 1).is_err());
        let msg = ScoreError::UserOutOfRange { user: 7, n_users: 4 }.to_string();
        assert!(msg.contains('7') && msg.contains('4'), "{msg}");
    }

    #[test]
    fn top_k_ranks_by_score_and_excludes_self() {
        let index = toy_index();
        // Trustor 0 scores trustees by cosine: u1 = 0.6, u2 = 0.0, u3 = -1.
        let top = index.top_k_trustees(0, 2).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 1);
        assert_eq!(top[1].0, 2);
        assert!(top[0].1 > top[1].1);
        assert_eq!(top[0].1, index.score(0, 1).unwrap());
        // k beyond the candidate count returns everyone but the trustor.
        let all = index.top_k_trustees(0, 10).unwrap();
        assert_eq!(
            all.iter().map(|&(u, _)| u).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        // k = 0 is empty, not an error.
        assert!(index.top_k_trustees(0, 0).unwrap().is_empty());
    }

    #[test]
    fn loading_rejects_garbage_frames() {
        assert!(TrustIndex::load(b"definitely not an artifact").is_err());
    }

    #[test]
    fn head_patches_update_exactly_the_named_rows() {
        let mut index = toy_index();
        let sig = |cos: f32| 1.0 / (1.0 + (-cos / 0.5).exp());
        let patch = HeadPatch {
            users: vec![1, 3],
            emb_dim: 2,
            head_dim: 2,
            emb_rows: vec![0.5, 0.5, -0.5, -0.5],
            trustor_rows: vec![0.0, 1.0, 1.0, 0.0],
            trustee_rows: vec![1.0, 0.0, 0.0, -1.0],
        };
        index.apply_head_patch(&patch).unwrap();
        // Patched rows answer with the new geometry: trustor 1 now points
        // along +y, trustee 3 along −y.
        assert_eq!(index.score(1, 2).unwrap(), sig(1.0));
        assert_eq!(index.score(0, 3).unwrap(), 0.5);
        // Rows the patch did not name are untouched.
        assert_eq!(index.score(2, 2).unwrap(), 0.5);
        assert_eq!(index.score(0, 0).unwrap(), sig(1.0));
    }

    #[test]
    fn bad_head_patches_are_rejected_and_leave_the_index_alone() {
        let mut index = toy_index();
        let before = index.score_pairs(&[(0, 1), (2, 3)]).unwrap();
        // Inconsistent row buffer.
        let mut patch = HeadPatch::empty(2, 2);
        patch.users = vec![0];
        assert!(index.apply_head_patch(&patch).is_err());
        // Dimension mismatch.
        let patch = HeadPatch {
            users: vec![0],
            emb_dim: 3,
            head_dim: 2,
            emb_rows: vec![0.0; 3],
            trustor_rows: vec![1.0, 0.0],
            trustee_rows: vec![1.0, 0.0],
        };
        let err = index.apply_head_patch(&patch).unwrap_err();
        assert!(err.contains("do not match"), "{err}");
        // Out-of-range user.
        let patch = HeadPatch {
            users: vec![9],
            emb_dim: 2,
            head_dim: 2,
            emb_rows: vec![0.0; 2],
            trustor_rows: vec![1.0, 0.0],
            trustee_rows: vec![1.0, 0.0],
        };
        let err = index.apply_head_patch(&patch).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        assert_eq!(index.score_pairs(&[(0, 1), (2, 3)]).unwrap(), before);
        // The empty patch is a no-op, not an error.
        assert!(index.apply_head_patch(&HeadPatch::empty(2, 2)).is_ok());
    }

    #[test]
    fn shared_index_serves_reads_and_applies_writes() {
        let shared = SharedIndex::new(toy_index());
        let before = shared.read().score(0, 1).unwrap();
        let patch = HeadPatch {
            users: vec![1],
            emb_dim: 2,
            head_dim: 2,
            emb_rows: vec![0.0, 0.0],
            trustor_rows: vec![0.0, 1.0],
            trustee_rows: vec![1.0, 0.0],
        };
        shared.apply_head_patch(&patch).unwrap();
        let after = shared.read().score(0, 1).unwrap();
        // Trustee 1 rotated from cos 0.6 to cos 1.0.
        assert!(after > before, "{after} vs {before}");
    }

    /// Many-user index with distinct head angles so rankings are
    /// nontrivial and dots collide only where calibration rounds.
    fn wide_index(n_users: usize) -> TrustIndex {
        let row = |i: usize| {
            let a = i as f32 * 0.37;
            vec![a.cos(), a.sin()]
        };
        let artifact = TrustArtifact {
            model: "AHNTP".to_string(),
            fingerprint: 0,
            calibration: 0.5,
            n_users,
            emb_dim: 2,
            head_dim: 2,
            embeddings: vec![0.0; n_users * 2],
            trustor_head: (0..n_users).flat_map(row).collect(),
            trustee_head: (0..n_users).rev().flat_map(row).collect(),
        };
        TrustIndex::from_artifact(artifact).unwrap()
    }

    #[test]
    fn parallel_scoring_is_bitwise_identical_to_serial() {
        let index = wide_index(41); // ragged over every band size below
        let pairs: Vec<(usize, usize)> =
            (0..37).map(|i| (i % 41, (i * 7 + 3) % 41)).collect();
        let old_threshold = ahntp_par::par_threshold();
        let old_threads = ahntp_par::threads();
        ahntp_par::set_par_threshold(0); // force the parallel path
        ahntp_par::set_threads(1);
        let scores_serial: Vec<u32> = index
            .score_pairs(&pairs)
            .unwrap()
            .iter()
            .map(|s| s.to_bits())
            .collect();
        let topk_serial: Vec<Vec<(usize, u32)>> = (0..41)
            .map(|u| {
                index
                    .top_k_trustees(u, 5)
                    .unwrap()
                    .into_iter()
                    .map(|(v, s)| (v, s.to_bits()))
                    .collect()
            })
            .collect();
        for t in [2usize, 7] {
            ahntp_par::set_threads(t);
            let scores: Vec<u32> = index
                .score_pairs(&pairs)
                .unwrap()
                .iter()
                .map(|s| s.to_bits())
                .collect();
            assert_eq!(scores_serial, scores, "score_pairs at {t} threads");
            for (u, want) in topk_serial.iter().enumerate() {
                let got: Vec<(usize, u32)> = index
                    .top_k_trustees(u, 5)
                    .unwrap()
                    .into_iter()
                    .map(|(v, s)| (v, s.to_bits()))
                    .collect();
                assert_eq!(want, &got, "top_k_trustees({u}) at {t} threads");
            }
        }
        ahntp_par::set_par_threshold(old_threshold);
        ahntp_par::set_threads(old_threads);
    }
}
