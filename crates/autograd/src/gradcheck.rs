//! Finite-difference gradient checking.
//!
//! Every hand-derived adjoint on the tape is validated against central
//! differences. The utilities here are `pub` (not test-only) because the
//! `ahntp-nn` layer tests reuse them to check whole layers end to end.

use crate::tape::{Graph, Var};
use ahntp_tensor::Tensor;

/// Summary of a gradient check over one or more inputs.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradients.
    pub max_abs_err: f32,
    /// Largest relative difference (denominator `max(1, |analytic|, |numeric|)`).
    pub max_rel_err: f32,
    /// Total number of scalar entries compared.
    pub checked: usize,
}

/// Central-difference gradient of a scalar function at `x`.
///
/// `f` is evaluated `2 * x.len()` times with one coordinate perturbed by
/// `±eps` each time.
pub fn numerical_gradient(mut f: impl FnMut(&Tensor) -> f32, x: &Tensor, eps: f32) -> Tensor {
    let mut grad = x.clone();
    let mut probe = x.clone();
    for i in 0..x.len() {
        let orig = x.as_slice()[i];
        probe.as_mut_slice()[i] = orig + eps;
        let up = f(&probe);
        probe.as_mut_slice()[i] = orig - eps;
        let down = f(&probe);
        probe.as_mut_slice()[i] = orig;
        grad.as_mut_slice()[i] = (up - down) / (2.0 * eps);
    }
    grad
}

/// Checks the tape's analytic gradients of `f` against central differences
/// at the given inputs.
///
/// `f` receives a fresh [`Graph`] and one leaf [`Var`] per input tensor and
/// must return a scalar (the test loss).
///
/// # Panics
///
/// Panics with a diagnostic naming the offending input and coordinate when
/// any entry differs by more than `tol` (relative, with an absolute floor of
/// `tol` for small gradients).
pub fn check_gradients(
    inputs: &[Tensor],
    f: impl Fn(&Graph, &[Var]) -> Var,
    eps: f32,
    tol: f32,
) -> GradCheckReport {
    // Analytic pass.
    let g = Graph::new();
    let vars: Vec<Var> = inputs.iter().map(|t| g.leaf(t.clone())).collect();
    let loss = f(&g, &vars);
    loss.backward();
    let analytic: Vec<Tensor> = vars
        .iter()
        .zip(inputs)
        .map(|(v, t)| {
            v.grad().unwrap_or_else(|| {
                // An input that provably does not influence the loss has
                // zero gradient.
                t.map(|_| 0.0)
            })
        })
        .collect();

    let mut report = GradCheckReport {
        max_abs_err: 0.0,
        max_rel_err: 0.0,
        checked: 0,
    };

    for (which, input) in inputs.iter().enumerate() {
        let numeric = numerical_gradient(
            |probe| {
                let g = Graph::new();
                let vars: Vec<Var> = inputs
                    .iter()
                    .enumerate()
                    .map(|(j, t)| {
                        if j == which {
                            g.leaf(probe.clone())
                        } else {
                            g.leaf(t.clone())
                        }
                    })
                    .collect();
                f(&g, &vars).value().as_slice()[0]
            },
            input,
            eps,
        );
        for i in 0..input.len() {
            let a = analytic[which].as_slice()[i];
            let n = numeric.as_slice()[i];
            let abs = (a - n).abs();
            let rel = abs / 1.0f32.max(a.abs()).max(n.abs());
            report.max_abs_err = report.max_abs_err.max(abs);
            report.max_rel_err = report.max_rel_err.max(rel);
            report.checked += 1;
            assert!(
                rel <= tol,
                "gradient mismatch on input {which}, element {i}: \
                 analytic {a} vs numeric {n} (rel err {rel}, tol {tol})"
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numerical_gradient_of_square_is_two_x() {
        let x = Tensor::vector(vec![1.0, -2.0, 3.0]);
        let g = numerical_gradient(
            |t| t.as_slice().iter().map(|&v| v * v).sum(),
            &x,
            1e-3,
        );
        for (gi, xi) in g.as_slice().iter().zip(x.as_slice()) {
            assert!((gi - 2.0 * xi).abs() < 1e-2);
        }
    }

    #[test]
    fn check_gradients_passes_for_simple_quadratic() {
        let x = Tensor::from_rows(&[&[0.5, -1.5]]);
        let report = check_gradients(
            &[x],
            |_, vars| vars[0].mul(&vars[0]).sum(),
            1e-2,
            1e-2,
        );
        assert_eq!(report.checked, 2);
        assert!(report.max_rel_err < 1e-2);
    }

    #[test]
    #[should_panic(expected = "gradient mismatch")]
    fn check_gradients_catches_wrong_adjoint() {
        // sigmoid's analytic grad is right; pretend the loss were different
        // by comparing sum(x) analytic against |x| numeric via a
        // discontinuity at 0 — instead simply corrupt by checking relu at a
        // kink with tiny tolerance, which must fail.
        let x = Tensor::from_rows(&[&[1e-5, -1e-5]]);
        check_gradients(&[x], |_, vars| vars[0].relu().sum(), 1e-3, 1e-6);
    }
}
