//! Tape-based reverse-mode automatic differentiation.
//!
//! The AHNTP model — like every GNN in the paper's evaluation — is a fixed
//! pipeline of matrix products, sparse aggregations, pointwise
//! nonlinearities, attention softmaxes, and reduction losses. This crate
//! provides exactly that operation set as a define-by-run tape, in the style
//! of PyTorch's autograd (which the paper's reference implementation uses):
//!
//! ```
//! use ahntp_autograd::Graph;
//! use ahntp_tensor::{Tensor, xavier_uniform};
//!
//! let g = Graph::new();
//! let x = g.constant(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
//! let w = g.leaf(xavier_uniform(2, 3, 42)); // requires grad
//! let loss = x.matmul(&w).relu().sum();
//! loss.backward();
//! let dw = w.grad().expect("leaf participated in the loss");
//! assert_eq!(dw.shape(), w.value().shape());
//! ```
//!
//! # Design
//!
//! * **One [`Graph`] per training step.** Parameters live outside the graph
//!   (see `ahntp-nn`'s optimizers); each step leafs them in, runs forward,
//!   calls [`Var::backward`], and reads gradients back. The tape is then
//!   dropped wholesale — no reference-counted graph surgery.
//! * **Fused domain ops.** Hyperedge attention needs a softmax over
//!   *variable-size* neighbourhoods and a gradient through the attention
//!   weights of a sparse aggregation. Instead of composing these from dozens
//!   of scalar ops (slow, and numerically delicate), the tape provides
//!   [`Var::segment_softmax`], [`Var::segment_sum`],
//!   [`Graph::weighted_gather`] and [`Var::pairwise_cosine`] as single nodes
//!   with hand-derived adjoints. Every adjoint is validated against central
//!   finite differences in `tests/gradcheck.rs`.
//! * **Sparse structure is constant.** Incidence and adjacency matrices
//!   enter via [`Graph::spmm`] / [`Graph::weighted_gather`] as
//!   non-differentiable structure; gradients flow only through dense
//!   operands and attention weights, which is exactly the differentiability
//!   boundary of the paper's model.
//!
//! The tape is intentionally `!Send`: training is single-threaded per model,
//! and experiment-level parallelism happens across models (see
//! `ahntp-bench`), which keeps the hot path free of locks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gradcheck;
mod tape;
mod var;

pub use gradcheck::{check_gradients, numerical_gradient, GradCheckReport};
pub use tape::{Graph, Var};
