//! The tape: graph storage, node ops, and the backward pass.

use ahntp_tensor::{CsrMatrix, Shape, Tensor};
use std::cell::RefCell;
use std::rc::Rc;

/// Vertex–hyperedge incidence pairs for [`Graph::weighted_gather`]:
/// `pairs[k] = (vertex, hyperedge)` with an attention weight per pair.
pub(crate) type IncidencePairs = Rc<Vec<(usize, usize)>>;

/// An operation recorded on the tape. Parents are node ids; constant
/// structure (sparse matrices, index lists) is shared via `Rc` so cloning an
/// `Op` during backward is cheap.
#[derive(Clone)]
pub(crate) enum Op {
    Leaf,
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Div(usize, usize),
    Scale(usize, f32),
    AddScalar(usize),
    Matmul(usize, usize),
    /// `A @ B^T`.
    MatmulT(usize, usize),
    Transpose(usize),
    /// Constant sparse `H @ x`; gradient flows to `x` only.
    Spmm(Rc<CsrMatrix<f32>>, usize),
    Relu(usize),
    LeakyRelu(usize, f32),
    Sigmoid(usize),
    Tanh(usize),
    Exp(usize),
    /// `ln(max(a, eps))`.
    LnEps(usize, f32),
    /// Matrix plus a broadcast row-vector bias.
    AddBias(usize, usize),
    ConcatCols(Rc<Vec<usize>>),
    GatherRows(usize, Rc<Vec<usize>>),
    /// Per-row scaling by a constant vector.
    ScaleRowsConst(usize, Rc<Vec<f32>>),
    Sum(usize),
    Mean(usize),
    /// Row-paired cosine similarity of two `n x d` matrices → `[n]`.
    PairwiseCosine(usize, usize),
    /// Softmax within segments of a vector.
    SegmentSoftmax(usize, Rc<Vec<usize>>),
    /// Sum within segments of a vector → `[n_segments]`.
    SegmentSum(usize, Rc<Vec<usize>>),
    /// Same-volume shape reinterpretation.
    Reshape(usize),
    /// Attention-weighted sparse aggregation:
    /// `y_v = Σ_{k: pairs[k].0 = v} w_k · h_{pairs[k].1}`.
    WeightedGather {
        weights: usize,
        h: usize,
        pairs: IncidencePairs,
    },
}

/// Stable human-readable name for an op, used by telemetry counters and
/// divergence provenance ("first non-finite output from op `matmul`").
pub(crate) fn op_name(op: &Op) -> &'static str {
    match op {
        Op::Leaf => "leaf",
        Op::Add(..) => "add",
        Op::Sub(..) => "sub",
        Op::Mul(..) => "mul",
        Op::Div(..) => "div",
        Op::Scale(..) => "scale",
        Op::AddScalar(..) => "add_scalar",
        Op::Matmul(..) => "matmul",
        Op::MatmulT(..) => "matmul_t",
        Op::Transpose(..) => "transpose",
        Op::Spmm(..) => "spmm",
        Op::Relu(..) => "relu",
        Op::LeakyRelu(..) => "leaky_relu",
        Op::Sigmoid(..) => "sigmoid",
        Op::Tanh(..) => "tanh",
        Op::Exp(..) => "exp",
        Op::LnEps(..) => "ln_eps",
        Op::AddBias(..) => "add_bias",
        Op::ConcatCols(..) => "concat_cols",
        Op::GatherRows(..) => "gather_rows",
        Op::ScaleRowsConst(..) => "scale_rows_const",
        Op::Sum(..) => "sum",
        Op::Mean(..) => "mean",
        Op::PairwiseCosine(..) => "pairwise_cosine",
        Op::SegmentSoftmax(..) => "segment_softmax",
        Op::SegmentSum(..) => "segment_sum",
        Op::Reshape(..) => "reshape",
        Op::WeightedGather { .. } => "weighted_gather",
    }
}

pub(crate) struct Node {
    pub value: Tensor,
    pub grad: Option<Tensor>,
    pub op: Op,
    pub requires_grad: bool,
}

/// A define-by-run computation tape. Cheap to clone (shared handle); create
/// one per forward/backward pass.
#[derive(Clone)]
pub struct Graph {
    pub(crate) nodes: Rc<RefCell<Vec<Node>>>,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Graph {
        Graph {
            nodes: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Number of nodes currently recorded.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    pub(crate) fn push(&self, value: Tensor, op: Op, requires_grad: bool) -> Var {
        // Divergence provenance: under AHNTP_CHECK_FINITE (or
        // set_finite_checks), remember the *first* op whose output went
        // non-finite so the trainer's "diverged" panic can name it. The
        // scan is opt-in because it touches every output element.
        if ahntp_telemetry::finite_checks_enabled()
            && !matches!(op, Op::Leaf)
            && value.as_slice().iter().any(|v| !v.is_finite())
        {
            ahntp_telemetry::record_nonfinite(op_name(&op), self.nodes.borrow().len());
        }
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node {
            value,
            grad: None,
            op,
            requires_grad,
        });
        Var {
            graph: self.clone(),
            id: nodes.len() - 1,
        }
    }

    /// Records a differentiable leaf (a model parameter).
    pub fn leaf(&self, value: Tensor) -> Var {
        self.push(value, Op::Leaf, true)
    }

    /// Records a non-differentiable input (features, labels, masks).
    pub fn constant(&self, value: Tensor) -> Var {
        self.push(value, Op::Leaf, false)
    }

    /// Constant-sparse × dense product `h @ x` (graph/hypergraph
    /// aggregation). Gradients flow to `x`; the sparse structure is fixed.
    pub fn spmm(&self, h: &Rc<CsrMatrix<f32>>, x: &Var) -> Var {
        x.assert_same_graph(self, "spmm");
        let value = h.mul_dense(&x.value());
        let rg = x.requires_grad();
        self.push(value, Op::Spmm(Rc::clone(h), x.id), rg)
    }

    /// Attention-weighted aggregation: output row `v` is
    /// `Σ_k w[k] · h[e_k]` over all incidence pairs `(v, e_k)`.
    ///
    /// This is Eq. (16) of the paper as a single differentiable node:
    /// gradients flow to both the attention weights `w` (one per pair) and
    /// the hyperedge features `h`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not a vector of length `pairs.len()` or any pair
    /// index is out of range.
    pub fn weighted_gather(
        &self,
        pairs: &IncidencePairs,
        n_out: usize,
        w: &Var,
        h: &Var,
    ) -> Var {
        w.assert_same_graph(self, "weighted_gather");
        h.assert_same_graph(self, "weighted_gather");
        let wv = w.value();
        let hv = h.value();
        assert!(
            wv.shape().is_vector() && wv.len() == pairs.len(),
            "weighted_gather: weights must be a [{}] vector, got {}",
            pairs.len(),
            wv.shape()
        );
        let d = hv.cols();
        let mut out = Tensor::zeros(n_out, d);
        for (k, &(v, e)) in pairs.iter().enumerate() {
            assert!(
                v < n_out && e < hv.rows(),
                "weighted_gather: pair {k} = ({v}, {e}) out of range ({n_out} vertices, {} edges)",
                hv.rows()
            );
            let wk = wv.as_slice()[k];
            let src: Vec<f32> = hv.row(e).to_vec();
            let dst = out.row_mut(v);
            for (o, s) in dst.iter_mut().zip(&src) {
                *o += wk * s;
            }
        }
        let rg = w.requires_grad() || h.requires_grad();
        self.push(
            out,
            Op::WeightedGather {
                weights: w.id,
                h: h.id,
                pairs: Rc::clone(pairs),
            },
            rg,
        )
    }

    /// Column-wise concatenation of several variables (the `||` operator).
    pub fn concat_cols(&self, parts: &[&Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols: no parts");
        for p in parts {
            p.assert_same_graph(self, "concat_cols");
        }
        let tensors: Vec<Tensor> = parts.iter().map(|p| p.value()).collect();
        let refs: Vec<&Tensor> = tensors.iter().collect();
        let value = Tensor::concat_cols(&refs);
        let rg = parts.iter().any(|p| p.requires_grad());
        let ids = Rc::new(parts.iter().map(|p| p.id).collect::<Vec<_>>());
        self.push(value, Op::ConcatCols(ids), rg)
    }
}

/// A handle to a tape node. Clone freely; all clones refer to the same node.
#[derive(Clone)]
pub struct Var {
    pub(crate) graph: Graph,
    pub(crate) id: usize,
}

impl Var {
    pub(crate) fn assert_same_graph(&self, g: &Graph, op: &str) {
        assert!(
            Rc::ptr_eq(&self.graph.nodes, &g.nodes),
            "{op}: variables belong to different graphs"
        );
    }

    /// A copy of the node's current value.
    pub fn value(&self) -> Tensor {
        self.graph.nodes.borrow()[self.id].value.clone()
    }

    /// The node's shape without copying the data.
    pub fn shape(&self) -> Shape {
        self.graph.nodes.borrow()[self.id].value.shape()
    }

    /// Whether gradients will be accumulated for this node.
    pub fn requires_grad(&self) -> bool {
        self.graph.nodes.borrow()[self.id].requires_grad
    }

    /// The accumulated gradient, if [`Var::backward`] has been run and this
    /// node participated in the output.
    pub fn grad(&self) -> Option<Tensor> {
        self.graph.nodes.borrow()[self.id].grad.clone()
    }

    /// Runs reverse-mode accumulation from this scalar output.
    ///
    /// # Panics
    ///
    /// Panics if the node is not a single-element tensor.
    pub fn backward(&self) {
        let _span = ahntp_telemetry::span!("backward");
        ahntp_telemetry::counter_add("autograd.backward.calls", 1);
        let mut nodes = self.graph.nodes.borrow_mut();
        ahntp_telemetry::counter_add("autograd.backward.nodes", nodes.len() as u64);
        {
            let out = &mut nodes[self.id];
            assert_eq!(
                out.value.len(),
                1,
                "backward: output must be scalar, got {}",
                out.value.shape()
            );
            out.grad = Some(match out.value.shape() {
                Shape::Vector(_) => Tensor::full_vec(1, 1.0),
                Shape::Matrix(_, _) => Tensor::full(1, 1, 1.0),
            });
        }
        for i in (0..=self.id).rev() {
            let Some(grad_out) = nodes[i].grad.clone() else {
                continue;
            };
            let op = nodes[i].op.clone();
            backward_step(&mut nodes, i, &op, &grad_out);
        }
    }
}

/// Adds `delta` into the gradient slot of `id` if it requires grad.
fn accum(nodes: &mut [Node], id: usize, delta: Tensor) {
    let node = &mut nodes[id];
    if !node.requires_grad {
        return;
    }
    debug_assert_eq!(
        node.value.shape(),
        delta.shape(),
        "gradient shape mismatch for node {id}"
    );
    match &mut node.grad {
        Some(g) => g.axpy_inplace(1.0, &delta),
        slot @ None => *slot = Some(delta),
    }
}

fn zeros_like(t: &Tensor) -> Tensor {
    match t.shape() {
        Shape::Vector(n) => Tensor::zeros_vec(n),
        Shape::Matrix(r, c) => Tensor::zeros(r, c),
    }
}

#[allow(clippy::too_many_lines)] // one arm per op; splitting would obscure the adjoint table
fn backward_step(nodes: &mut [Node], i: usize, op: &Op, grad_out: &Tensor) {
    match op {
        Op::Leaf => {}
        Op::Add(a, b) => {
            accum(nodes, *a, grad_out.clone());
            accum(nodes, *b, grad_out.clone());
        }
        Op::Sub(a, b) => {
            accum(nodes, *a, grad_out.clone());
            accum(nodes, *b, grad_out.scale(-1.0));
        }
        Op::Mul(a, b) => {
            let da = grad_out.mul(&nodes[*b].value);
            let db = grad_out.mul(&nodes[*a].value);
            accum(nodes, *a, da);
            accum(nodes, *b, db);
        }
        Op::Div(a, b) => {
            // y = a / b : da = g / b ; db = -g * a / b^2
            let bv = nodes[*b].value.clone();
            let av = nodes[*a].value.clone();
            let da = grad_out.div(&bv);
            let db = grad_out.mul(&av).div(&bv).div(&bv).scale(-1.0);
            accum(nodes, *a, da);
            accum(nodes, *b, db);
        }
        Op::Scale(a, c) => accum(nodes, *a, grad_out.scale(*c)),
        Op::AddScalar(a) => accum(nodes, *a, grad_out.clone()),
        Op::Matmul(a, b) => {
            // y = A @ B : dA = g @ B^T ; dB = A^T @ g
            let (av, bv) = (nodes[*a].value.clone(), nodes[*b].value.clone());
            let (ga, gb) = matmul_backward(&av, &bv, grad_out);
            accum(nodes, *a, ga);
            accum(nodes, *b, gb);
        }
        Op::MatmulT(a, b) => {
            // y = A @ B^T : dA = g @ B ; dB = g^T @ A
            let (av, bv) = (nodes[*a].value.clone(), nodes[*b].value.clone());
            let da = grad_out.matmul(&bv);
            let db = grad_out.t_matmul(&av);
            accum(nodes, *a, da);
            accum(nodes, *b, db);
        }
        Op::Transpose(a) => accum(nodes, *a, grad_out.transpose()),
        Op::Spmm(h, x) => {
            let dx = h.t_mul_dense(grad_out);
            accum(nodes, *x, dx);
        }
        Op::Relu(a) => {
            let mask = nodes[*a].value.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
            accum(nodes, *a, grad_out.mul(&mask));
        }
        Op::LeakyRelu(a, slope) => {
            let s = *slope;
            let mask = nodes[*a].value.map(|v| if v > 0.0 { 1.0 } else { s });
            accum(nodes, *a, grad_out.mul(&mask));
        }
        Op::Sigmoid(a) => {
            let y = nodes[i].value.clone();
            let dy = y.map(|v| v * (1.0 - v));
            accum(nodes, *a, grad_out.mul(&dy));
        }
        Op::Tanh(a) => {
            let y = nodes[i].value.clone();
            let dy = y.map(|v| 1.0 - v * v);
            accum(nodes, *a, grad_out.mul(&dy));
        }
        Op::Exp(a) => {
            let y = nodes[i].value.clone();
            accum(nodes, *a, grad_out.mul(&y));
        }
        Op::LnEps(a, eps) => {
            // ln(max(a, eps)) is flat below the clamp: the true subgradient
            // there is 0 (returning 1/eps would inject enormous spurious
            // gradients exactly when the input has collapsed).
            let e = *eps;
            let da = nodes[*a].value.map(|v| if v > e { 1.0 / v } else { 0.0 });
            accum(nodes, *a, grad_out.mul(&da));
        }
        Op::AddBias(a, bias) => {
            accum(nodes, *a, grad_out.clone());
            accum(nodes, *bias, grad_out.col_sums());
        }
        Op::ConcatCols(ids) => {
            let widths: Vec<usize> = ids.iter().map(|&p| nodes[p].value.cols()).collect();
            let parts = grad_out.split_cols(&widths);
            for (&p, part) in ids.iter().zip(parts) {
                // Vector parents come back as 1 x n matrices from split_cols.
                let part = if nodes[p].value.shape().is_vector() {
                    part.reshape(Shape::Vector(nodes[p].value.len()))
                } else {
                    part
                };
                accum(nodes, p, part);
            }
        }
        Op::GatherRows(a, idx) => {
            let mut da = zeros_like(&nodes[*a].value);
            let cols = da.cols();
            for (out_row, &src) in idx.iter().enumerate() {
                let g_row: Vec<f32> = grad_out.row(out_row).to_vec();
                let dst = &mut da.as_mut_slice()[src * cols..(src + 1) * cols];
                for (d, g) in dst.iter_mut().zip(&g_row) {
                    *d += g;
                }
            }
            accum(nodes, *a, da);
        }
        Op::ScaleRowsConst(a, factors) => {
            let mut da = grad_out.clone();
            let cols = da.cols();
            for (r, &f) in factors.iter().enumerate() {
                for v in &mut da.as_mut_slice()[r * cols..(r + 1) * cols] {
                    *v *= f;
                }
            }
            accum(nodes, *a, da);
        }
        Op::Sum(a) => {
            let g = grad_out.as_slice()[0];
            let mut da = zeros_like(&nodes[*a].value);
            da.map_inplace(|_| g);
            accum(nodes, *a, da);
        }
        Op::Mean(a) => {
            let n = nodes[*a].value.len() as f32;
            let g = grad_out.as_slice()[0] / n;
            let mut da = zeros_like(&nodes[*a].value);
            da.map_inplace(|_| g);
            accum(nodes, *a, da);
        }
        Op::PairwiseCosine(a, b) => {
            let av = nodes[*a].value.clone();
            let bv = nodes[*b].value.clone();
            let y = nodes[i].value.clone();
            let mut da = zeros_like(&av);
            let mut db = zeros_like(&bv);
            let d = av.cols();
            for r in 0..av.rows() {
                let ar = av.row(r);
                let br = bv.row(r);
                let na: f32 = ar.iter().map(|&v| v * v).sum::<f32>().sqrt();
                let nb: f32 = br.iter().map(|&v| v * v).sum::<f32>().sqrt();
                if na == 0.0 || nb == 0.0 {
                    continue; // cosine defined as 0 there; subgradient 0
                }
                let g = grad_out.as_slice()[r];
                let cs = y.as_slice()[r];
                let da_r = &mut da.as_mut_slice()[r * d..(r + 1) * d];
                let db_r = &mut db.as_mut_slice()[r * d..(r + 1) * d];
                for k in 0..d {
                    da_r[k] = g * (br[k] / (na * nb) - cs * ar[k] / (na * na));
                    db_r[k] = g * (ar[k] / (na * nb) - cs * br[k] / (nb * nb));
                }
            }
            accum(nodes, *a, da);
            accum(nodes, *b, db);
        }
        Op::SegmentSoftmax(a, segments) => {
            let y = nodes[i].value.clone();
            let n_seg = segments.iter().copied().max().map_or(0, |m| m + 1);
            // dot_s = Σ_{j∈s} y_j g_j, then da_i = y_i (g_i − dot_{seg(i)})
            let mut dot = vec![0.0f32; n_seg];
            for (k, &s) in segments.iter().enumerate() {
                dot[s] += y.as_slice()[k] * grad_out.as_slice()[k];
            }
            let mut da = zeros_like(&nodes[*a].value);
            for (k, &s) in segments.iter().enumerate() {
                da.as_mut_slice()[k] =
                    y.as_slice()[k] * (grad_out.as_slice()[k] - dot[s]);
            }
            accum(nodes, *a, da);
        }
        Op::SegmentSum(a, segments) => {
            let mut da = zeros_like(&nodes[*a].value);
            for (k, &s) in segments.iter().enumerate() {
                da.as_mut_slice()[k] = grad_out.as_slice()[s];
            }
            accum(nodes, *a, da);
        }
        Op::Reshape(a) => {
            let parent_shape = nodes[*a].value.shape();
            accum(nodes, *a, grad_out.clone().reshape(parent_shape));
        }
        Op::WeightedGather { weights, h, pairs } => {
            let wv = nodes[*weights].value.clone();
            let hv = nodes[*h].value.clone();
            let d = hv.cols();
            let mut dw = zeros_like(&wv);
            let mut dh = zeros_like(&hv);
            for (k, &(v, e)) in pairs.iter().enumerate() {
                let g_row = grad_out.row(v);
                let h_row = hv.row(e);
                let mut dot = 0.0f32;
                for (&g, &hh) in g_row.iter().zip(h_row) {
                    dot += g * hh;
                }
                dw.as_mut_slice()[k] = dot;
                let wk = wv.as_slice()[k];
                let g_copy: Vec<f32> = g_row.to_vec();
                let dst = &mut dh.as_mut_slice()[e * d..(e + 1) * d];
                for (o, g) in dst.iter_mut().zip(&g_copy) {
                    *o += wk * g;
                }
            }
            accum(nodes, *weights, dw);
            accum(nodes, *h, dh);
        }
    }
}

/// Gradient of a dense matmul with the vector-promotion rules of
/// [`Tensor::matmul`] respected (so `[n]`-shaped operands receive
/// `[n]`-shaped gradients).
fn matmul_backward(a: &Tensor, b: &Tensor, g: &Tensor) -> (Tensor, Tensor) {
    // Lift everything to matrices, compute, then demote.
    let lift = |t: &Tensor, as_row: bool| -> Tensor {
        match t.shape() {
            Shape::Matrix(_, _) => t.clone(),
            Shape::Vector(n) => {
                if as_row {
                    t.clone().reshape(Shape::Matrix(1, n))
                } else {
                    t.clone().reshape(Shape::Matrix(n, 1))
                }
            }
        }
    };
    let am = lift(a, true); // [n] on the left acts as 1 x n
    let bm = lift(b, false); // [n] on the right acts as n x 1
    let gm = match g.shape() {
        Shape::Matrix(_, _) => g.clone(),
        Shape::Vector(_) => g
            .clone()
            .reshape(Shape::Matrix(am.rows(), bm.cols())),
    };
    let ga = gm.matmul_t(&bm);
    let gb = am.t_matmul(&gm);
    let demote = |t: Tensor, like: &Tensor| -> Tensor {
        match like.shape() {
            Shape::Vector(n) => t.reshape(Shape::Vector(n)),
            Shape::Matrix(_, _) => t,
        }
    };
    (demote(ga, a), demote(gb, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_and_constant_flags() {
        let g = Graph::new();
        let a = g.leaf(Tensor::zeros(1, 1));
        let b = g.constant(Tensor::zeros(1, 1));
        assert!(a.requires_grad());
        assert!(!b.requires_grad());
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn backward_on_simple_chain() {
        // loss = sum(relu(x * 2)) with x = [[1, -1]]
        let g = Graph::new();
        let x = g.leaf(Tensor::from_rows(&[&[1.0, -1.0]]));
        let loss = x.scale(2.0).relu().sum();
        loss.backward();
        let dx = x.grad().expect("leaf gradient");
        assert_eq!(dx.as_slice(), &[2.0, 0.0]);
    }

    #[test]
    fn gradients_accumulate_over_shared_subexpressions() {
        // loss = sum(x + x) → dx = 2
        let g = Graph::new();
        let x = g.leaf(Tensor::from_rows(&[&[3.0]]));
        let loss = x.add(&x).sum();
        loss.backward();
        assert_eq!(x.grad().expect("grad").as_slice(), &[2.0]);
    }

    #[test]
    fn constants_get_no_gradient() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_rows(&[&[1.0]]));
        let c = g.constant(Tensor::from_rows(&[&[5.0]]));
        let loss = x.mul(&c).sum();
        loss.backward();
        assert_eq!(x.grad().expect("grad").as_slice(), &[5.0]);
        assert!(c.grad().is_none());
    }

    #[test]
    #[should_panic(expected = "output must be scalar")]
    fn backward_rejects_non_scalar() {
        let g = Graph::new();
        let x = g.leaf(Tensor::zeros(2, 2));
        x.backward();
    }

    #[test]
    #[should_panic(expected = "different graphs")]
    fn cross_graph_ops_are_rejected() {
        let g1 = Graph::new();
        let g2 = Graph::new();
        let a = g1.leaf(Tensor::zeros(1, 1));
        let b = g2.leaf(Tensor::zeros(1, 1));
        let _ = a.add(&b);
    }

    #[test]
    fn finite_checks_name_the_offending_op() {
        // Thread-local state: each #[test] runs on its own thread, so this
        // cannot race with other tests.
        ahntp_telemetry::set_finite_checks(true);
        ahntp_telemetry::clear_nonfinite();
        let g = Graph::new();
        let x = g.leaf(Tensor::from_rows(&[&[100.0]]));
        let _y = x.exp(); // e^100 overflows f32 → inf
        let ev = ahntp_telemetry::first_nonfinite().expect("overflow recorded");
        assert_eq!(ev.op, "exp");
        assert_eq!(ev.step, 1); // node 0 is the leaf
        ahntp_telemetry::set_finite_checks(false);
        ahntp_telemetry::clear_nonfinite();
    }

    #[test]
    fn finite_checks_off_record_nothing() {
        ahntp_telemetry::set_finite_checks(false);
        ahntp_telemetry::clear_nonfinite();
        let g = Graph::new();
        let x = g.leaf(Tensor::from_rows(&[&[100.0]]));
        let _y = x.exp();
        assert!(ahntp_telemetry::first_nonfinite().is_none());
    }

    #[test]
    fn weighted_gather_forward_matches_manual() {
        let g = Graph::new();
        // 2 vertices, 2 hyperedges, 3 incidence pairs.
        let pairs: IncidencePairs = Rc::new(vec![(0, 0), (0, 1), (1, 1)]);
        let w = g.leaf(Tensor::vector(vec![0.5, 0.5, 2.0]));
        let h = g.leaf(Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
        let y = g.weighted_gather(&pairs, 2, &w, &h);
        let v = y.value();
        assert_eq!(v.row(0), &[0.5, 0.5]);
        assert_eq!(v.row(1), &[0.0, 2.0]);
    }
}
