//! Forward-pass constructors: every differentiable operation on [`Var`].

use crate::tape::{Op, Var};
use ahntp_tensor::{Shape, Tensor};
use std::rc::Rc;

impl Var {
    fn binary(&self, other: &Var, op_name: &str, value: Tensor, op: Op) -> Var {
        other.assert_same_graph(&self.graph, op_name);
        let rg = self.requires_grad() || other.requires_grad();
        self.graph.push(value, op, rg)
    }

    fn unary(&self, value: Tensor, op: Op) -> Var {
        let rg = self.requires_grad();
        self.graph.push(value, op, rg)
    }

    /// Element-wise sum.
    pub fn add(&self, other: &Var) -> Var {
        let v = self.value().add(&other.value());
        self.binary(other, "add", v, Op::Add(self.id, other.id))
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Var) -> Var {
        let v = self.value().sub(&other.value());
        self.binary(other, "sub", v, Op::Sub(self.id, other.id))
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&self, other: &Var) -> Var {
        let v = self.value().mul(&other.value());
        self.binary(other, "mul", v, Op::Mul(self.id, other.id))
    }

    /// Element-wise quotient.
    pub fn div(&self, other: &Var) -> Var {
        let v = self.value().div(&other.value());
        self.binary(other, "div", v, Op::Div(self.id, other.id))
    }

    /// Multiplication by a constant scalar.
    pub fn scale(&self, c: f32) -> Var {
        let v = self.value().scale(c);
        self.unary(v, Op::Scale(self.id, c))
    }

    /// Addition of a constant scalar (gradient passes through unchanged).
    pub fn add_scalar(&self, c: f32) -> Var {
        let v = self.value().add_scalar(c);
        self.unary(v, Op::AddScalar(self.id))
    }

    /// Negation.
    pub fn neg(&self) -> Var {
        self.scale(-1.0)
    }

    /// Dense matrix product `self @ other`.
    pub fn matmul(&self, other: &Var) -> Var {
        let v = self.value().matmul(&other.value());
        self.binary(other, "matmul", v, Op::Matmul(self.id, other.id))
    }

    /// Dense product with transposed right operand, `self @ other^T`.
    pub fn matmul_t(&self, other: &Var) -> Var {
        let v = self.value().matmul_t(&other.value());
        self.binary(other, "matmul_t", v, Op::MatmulT(self.id, other.id))
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Var {
        let v = self.value().transpose();
        self.unary(v, Op::Transpose(self.id))
    }

    /// Rectified linear unit (the `f` of Eqs. 13 and 16–18).
    pub fn relu(&self) -> Var {
        let v = self.value().map(|x| x.max(0.0));
        self.unary(v, Op::Relu(self.id))
    }

    /// Leaky ReLU with the given negative slope (the `σ` of Eq. 14).
    pub fn leaky_relu(&self, slope: f32) -> Var {
        let v = self.value().map(|x| if x > 0.0 { x } else { slope * x });
        self.unary(v, Op::LeakyRelu(self.id, slope))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let v = self.value().map(|x| 1.0 / (1.0 + (-x).exp()));
        self.unary(v, Op::Sigmoid(self.id))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let v = self.value().map(f32::tanh);
        self.unary(v, Op::Tanh(self.id))
    }

    /// Element-wise exponential.
    pub fn exp(&self) -> Var {
        let v = self.value().map(f32::exp);
        self.unary(v, Op::Exp(self.id))
    }

    /// Element-wise `ln(max(x, eps))` — the clamped logarithm used by the
    /// loss terms so that `log(0)` cannot poison training.
    pub fn ln_eps(&self, eps: f32) -> Var {
        assert!(eps > 0.0, "ln_eps: eps must be positive, got {eps}");
        let v = self.value().map(|x| x.max(eps).ln());
        self.unary(v, Op::LnEps(self.id, eps))
    }

    /// Adds a broadcast row-vector bias to every row of a matrix.
    pub fn add_bias(&self, bias: &Var) -> Var {
        let v = self.value().add_row_broadcast(&bias.value());
        self.binary(bias, "add_bias", v, Op::AddBias(self.id, bias.id))
    }

    /// Selects rows by index (rows may repeat); gradient scatter-adds back.
    pub fn gather_rows(&self, indices: &Rc<Vec<usize>>) -> Var {
        let v = self.value().gather_rows(indices);
        self.unary(v, Op::GatherRows(self.id, Rc::clone(indices)))
    }

    /// Scales each row `r` by the constant factor `factors[r]`.
    pub fn scale_rows(&self, factors: &Rc<Vec<f32>>) -> Var {
        assert_eq!(
            factors.len(),
            self.value().rows(),
            "scale_rows: {} factors for {} rows",
            factors.len(),
            self.value().rows()
        );
        let col = Tensor::vector(factors.as_ref().clone());
        let v = self.value().scale_rows(&col);
        self.unary(v, Op::ScaleRowsConst(self.id, Rc::clone(factors)))
    }

    /// Sum of all elements → scalar.
    pub fn sum(&self) -> Var {
        let v = Tensor::full(1, 1, self.value().sum());
        self.unary(v, Op::Sum(self.id))
    }

    /// Mean of all elements → scalar.
    pub fn mean(&self) -> Var {
        let v = Tensor::full(1, 1, self.value().mean());
        self.unary(v, Op::Mean(self.id))
    }

    /// Row-paired cosine similarity (Eq. 19): both operands are `n x d`;
    /// the result is the `[n]` vector of `cos(self_i, other_i)`. Zero rows
    /// yield similarity 0 with zero gradient.
    pub fn pairwise_cosine(&self, other: &Var) -> Var {
        let a = self.value();
        let b = other.value();
        assert_eq!(
            a.shape(),
            b.shape(),
            "pairwise_cosine: shape mismatch {} vs {}",
            a.shape(),
            b.shape()
        );
        let mut out = Vec::with_capacity(a.rows());
        for r in 0..a.rows() {
            out.push(a.cosine_rows(r, &b, r));
        }
        self.binary(
            other,
            "pairwise_cosine",
            Tensor::vector(out),
            Op::PairwiseCosine(self.id, other.id),
        )
    }

    /// Softmax over variable-size segments of a vector (Eq. 15: attention
    /// normalisation over each vertex's incident hyperedges).
    /// `segments[k]` is the segment id of element `k`.
    pub fn segment_softmax(&self, segments: &Rc<Vec<usize>>) -> Var {
        let v = self.value();
        assert!(
            v.shape().is_vector() && v.len() == segments.len(),
            "segment_softmax: need a [{}] vector, got {}",
            segments.len(),
            v.shape()
        );
        let n_seg = segments.iter().copied().max().map_or(0, |m| m + 1);
        // Max-shift per segment for numerical stability.
        let mut seg_max = vec![f32::NEG_INFINITY; n_seg];
        for (k, &s) in segments.iter().enumerate() {
            seg_max[s] = seg_max[s].max(v.as_slice()[k]);
        }
        let mut exps: Vec<f32> = Vec::with_capacity(v.len());
        let mut seg_sum = vec![0.0f32; n_seg];
        for (k, &s) in segments.iter().enumerate() {
            let e = (v.as_slice()[k] - seg_max[s]).exp();
            exps.push(e);
            seg_sum[s] += e;
        }
        for (k, &s) in segments.iter().enumerate() {
            exps[k] /= seg_sum[s];
        }
        self.unary(
            Tensor::vector(exps),
            Op::SegmentSoftmax(self.id, Rc::clone(segments)),
        )
    }

    /// Sums vector elements within segments → `[n_segments]` (the Σ of
    /// Eq. 20's positive/denominator pools, grouped by anchor).
    pub fn segment_sum(&self, segments: &Rc<Vec<usize>>, n_segments: usize) -> Var {
        let v = self.value();
        assert!(
            v.shape().is_vector() && v.len() == segments.len(),
            "segment_sum: need a [{}] vector, got {}",
            segments.len(),
            v.shape()
        );
        let mut out = vec![0.0f32; n_segments];
        for (k, &s) in segments.iter().enumerate() {
            assert!(
                s < n_segments,
                "segment_sum: segment id {s} >= n_segments {n_segments}"
            );
            out[s] += v.as_slice()[k];
        }
        self.unary(
            Tensor::vector(out),
            Op::SegmentSum(self.id, Rc::clone(segments)),
        )
    }

    /// Reinterprets the value with a new same-volume shape. Gradients are
    /// reshaped back automatically because buffers are row-major on both
    /// sides — implemented as a transpose-free unary view.
    pub fn reshape(&self, shape: Shape) -> Var {
        let v = self.value().reshape(shape);
        self.unary(v, Op::Reshape(self.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn forward_values_match_tensor_ops() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_rows(&[&[1.0, -2.0]]));
        assert_eq!(a.relu().value().as_slice(), &[1.0, 0.0]);
        assert_eq!(a.leaky_relu(0.1).value().as_slice(), &[1.0, -0.2]);
        assert_eq!(a.neg().value().as_slice(), &[-1.0, 2.0]);
        assert_eq!(a.add_scalar(1.0).value().as_slice(), &[2.0, -1.0]);
        let s = a.sigmoid().value();
        assert!((s.as_slice()[0] - 0.73106).abs() < 1e-4);
    }

    #[test]
    fn pairwise_cosine_matches_reduce_kernel() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_rows(&[&[1.0, 0.0], &[1.0, 1.0]]));
        let b = g.leaf(Tensor::from_rows(&[&[0.0, 1.0], &[1.0, 1.0]]));
        let cs = a.pairwise_cosine(&b).value();
        assert!(cs.as_slice()[0].abs() < 1e-6);
        assert!((cs.as_slice()[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn segment_softmax_sums_to_one_per_segment() {
        let g = Graph::new();
        let x = g.leaf(Tensor::vector(vec![1.0, 2.0, 3.0, -1.0, 500.0]));
        let segments = Rc::new(vec![0usize, 0, 1, 1, 1]);
        let y = x.segment_softmax(&segments).value();
        let s0 = y.as_slice()[0] + y.as_slice()[1];
        let s1 = y.as_slice()[2] + y.as_slice()[3] + y.as_slice()[4];
        assert!((s0 - 1.0).abs() < 1e-6);
        assert!((s1 - 1.0).abs() < 1e-6);
        assert!(y.all_finite(), "huge logits must not overflow");
    }

    #[test]
    fn segment_sum_pools_by_segment() {
        let g = Graph::new();
        let x = g.leaf(Tensor::vector(vec![1.0, 2.0, 3.0, 4.0]));
        let segments = Rc::new(vec![1usize, 0, 1, 0]);
        let y = x.segment_sum(&segments, 2).value();
        assert_eq!(y.as_slice(), &[6.0, 4.0]);
    }
}
