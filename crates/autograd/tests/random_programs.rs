//! Property-based gradcheck over randomly composed tape programs: chains
//! of smooth ops applied to random matrices, validated against central
//! differences. Complements the per-op tests by exercising arbitrary
//! compositions (shared subexpressions, mixed shapes).

use ahntp_autograd::{check_gradients, Graph, Var};
use ahntp_tensor::Tensor;
use proptest::prelude::*;

/// Smooth unary ops only (no ReLU kinks — random inputs would land on
/// non-differentiable points and poison the numeric estimates).
#[derive(Debug, Clone, Copy)]
enum UnaryOp {
    Sigmoid,
    Tanh,
    ScaledExp,
    Scale,
    AddScalar,
    Softplusish, // sigmoid ∘ scale: another smooth squash
}

fn apply(op: UnaryOp, v: &Var) -> Var {
    match op {
        UnaryOp::Sigmoid => v.sigmoid(),
        UnaryOp::Tanh => v.tanh(),
        UnaryOp::ScaledExp => v.scale(0.3).exp(),
        UnaryOp::Scale => v.scale(-1.7),
        UnaryOp::AddScalar => v.add_scalar(0.4),
        UnaryOp::Softplusish => v.scale(2.0).sigmoid(),
    }
}

fn arb_op() -> impl Strategy<Value = UnaryOp> {
    prop_oneof![
        Just(UnaryOp::Sigmoid),
        Just(UnaryOp::Tanh),
        Just(UnaryOp::ScaledExp),
        Just(UnaryOp::Scale),
        Just(UnaryOp::AddScalar),
        Just(UnaryOp::Softplusish),
    ]
}

fn arb_matrix() -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-1.2f32..1.2, 12)
        .prop_map(|v| Tensor::from_vec(3, 4, v).expect("12 elements"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_unary_chains_gradcheck(
        a in arb_matrix(),
        ops in proptest::collection::vec(arb_op(), 1..6),
    ) {
        check_gradients(
            std::slice::from_ref(&a),
            |_, vars| {
                let mut v = vars[0].clone();
                for &op in &ops {
                    v = apply(op, &v);
                }
                v.mean()
            },
            1e-3,
            3e-2,
        );
    }

    #[test]
    fn random_binary_trees_gradcheck(
        a in arb_matrix(),
        b in arb_matrix(),
        op1 in arb_op(),
        op2 in arb_op(),
        combine_mul in proptest::bool::ANY,
    ) {
        check_gradients(
            &[a.clone(), b.clone()],
            |_, vars| {
                let x = apply(op1, &vars[0]);
                let y = apply(op2, &vars[1]);
                let z = if combine_mul { x.mul(&y) } else { x.add(&y) };
                // Shared subexpression on top: z used twice.
                z.mul(&z).mean()
            },
            1e-3,
            3e-2,
        );
    }

    #[test]
    fn matmul_sandwich_gradcheck(
        a in arb_matrix(),
        op in arb_op(),
    ) {
        // a (3x4) @ a^T (4x3) → 3x3 through a smooth op → scalar.
        check_gradients(
            std::slice::from_ref(&a),
            |_, vars| {
                let m = vars[0].matmul_t(&vars[0]);
                apply(op, &m).sum()
            },
            1e-3,
            4e-2,
        );
    }

    #[test]
    fn forward_values_are_deterministic(
        a in arb_matrix(),
        ops in proptest::collection::vec(arb_op(), 1..5),
    ) {
        let run = || {
            let g = Graph::new();
            let mut v = g.constant(a.clone());
            for &op in &ops {
                v = apply(op, &v);
            }
            v.value()
        };
        prop_assert_eq!(run(), run());
    }
}
