//! Finite-difference validation of every adjoint on the tape.
//!
//! Each test builds a small scalar loss through one (or a few) ops and
//! checks the analytic gradients of *all* inputs against central
//! differences. f32 + central differences supports roughly 1e-2 relative
//! tolerance at eps = 1e-2; inputs are chosen away from kinks (ReLU at 0)
//! so the comparison is well-posed.

use ahntp_autograd::check_gradients;
use ahntp_tensor::{CsrMatrix, Tensor};
use std::rc::Rc;

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

fn t(rows: usize, cols: usize, seed: u64) -> Tensor {
    // Deterministic, kink-free values in [0.3, 1.8] with alternating sign.
    let mut v = Vec::with_capacity(rows * cols);
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    for i in 0..rows * cols {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let u = ((state >> 40) as f32) / ((1u64 << 24) as f32); // [0,1)
        let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
        v.push(sign * (0.3 + 1.5 * u));
    }
    Tensor::from_vec(rows, cols, v).expect("sized correctly")
}

#[test]
fn grad_add_sub_mul_div() {
    let a = t(2, 3, 1);
    let b = t(2, 3, 2);
    check_gradients(
        &[a.clone(), b.clone()],
        |_, v| v[0].add(&v[1]).sum(),
        EPS,
        TOL,
    );
    check_gradients(
        &[a.clone(), b.clone()],
        |_, v| v[0].sub(&v[1]).mean(),
        EPS,
        TOL,
    );
    check_gradients(
        &[a.clone(), b.clone()],
        |_, v| v[0].mul(&v[1]).sum(),
        EPS,
        TOL,
    );
    check_gradients(&[a, b], |_, v| v[0].div(&v[1]).sum(), EPS, TOL);
}

#[test]
fn grad_scale_and_add_scalar() {
    let a = t(2, 2, 3);
    check_gradients(
        &[a],
        |_, v| v[0].scale(3.5).add_scalar(-1.0).sum(),
        EPS,
        TOL,
    );
}

#[test]
fn grad_matmul() {
    let a = t(3, 4, 4);
    let b = t(4, 2, 5);
    check_gradients(&[a, b], |_, v| v[0].matmul(&v[1]).sum(), EPS, TOL);
}

#[test]
fn grad_matmul_t_and_transpose() {
    let a = t(3, 4, 6);
    let b = t(2, 4, 7);
    check_gradients(&[a.clone(), b], |_, v| v[0].matmul_t(&v[1]).sum(), EPS, TOL);
    let c = t(4, 3, 8);
    check_gradients(&[a, c], |_, v| v[0].transpose().mul(&v[1]).sum(), EPS, TOL);
}

#[test]
fn grad_matmul_vector_promotions() {
    let a = t(3, 4, 40);
    let x = {
        let m = t(1, 4, 41);
        Tensor::vector(m.as_slice().to_vec())
    };
    // matrix @ vector
    check_gradients(
        &[a.clone(), x.clone()],
        |_, v| v[0].matmul(&v[1]).sum(),
        EPS,
        TOL,
    );
    // vector @ matrix
    let y = {
        let m = t(1, 3, 42);
        Tensor::vector(m.as_slice().to_vec())
    };
    check_gradients(&[y, a], |_, v| v[0].matmul(&v[1]).sum(), EPS, TOL);
}

#[test]
fn grad_pointwise_nonlinearities() {
    let a = t(2, 3, 9);
    check_gradients(std::slice::from_ref(&a), |_, v| v[0].relu().sum(), EPS, TOL);
    check_gradients(std::slice::from_ref(&a), |_, v| v[0].leaky_relu(0.2).sum(), EPS, TOL);
    check_gradients(std::slice::from_ref(&a), |_, v| v[0].sigmoid().sum(), EPS, TOL);
    check_gradients(std::slice::from_ref(&a), |_, v| v[0].tanh().sum(), EPS, TOL);
    check_gradients(std::slice::from_ref(&a), |_, v| v[0].scale(0.5).exp().sum(), EPS, TOL);
    // ln over strictly-positive inputs (sigmoid maps into (0,1))
    check_gradients(&[a], |_, v| v[0].sigmoid().ln_eps(1e-6).sum(), EPS, TOL);
}

#[test]
fn grad_add_bias() {
    let a = t(3, 2, 10);
    let bias = Tensor::vector(vec![0.7, -0.4]);
    check_gradients(&[a, bias], |_, v| v[0].add_bias(&v[1]).sum(), EPS, TOL);
}

#[test]
fn grad_spmm() {
    let h: Rc<CsrMatrix<f32>> = Rc::new(
        CsrMatrix::from_triplets(
            3,
            4,
            &[(0, 0, 1.0), (0, 2, 0.5), (1, 1, 2.0), (2, 3, -1.0), (2, 0, 0.25)],
        )
        .expect("valid triplets"),
    );
    let x = t(4, 2, 11);
    check_gradients(
        &[x],
        move |g, v| g.spmm(&h, &v[0]).sum(),
        EPS,
        TOL,
    );
}

#[test]
fn grad_concat_cols() {
    let a = t(2, 2, 12);
    let b = t(2, 3, 13);
    check_gradients(
        &[a, b],
        |g, v| g.concat_cols(&[&v[0], &v[1]]).mul(&g.concat_cols(&[&v[0], &v[1]])).sum(),
        EPS,
        TOL,
    );
}

#[test]
fn grad_gather_rows_with_repeats() {
    let a = t(4, 3, 14);
    let idx = Rc::new(vec![0usize, 2, 2, 3]);
    check_gradients(
        &[a],
        move |_, v| {
            let gathered = v[0].gather_rows(&idx);
            gathered.mul(&gathered).sum()
        },
        EPS,
        TOL,
    );
}

#[test]
fn grad_scale_rows() {
    let a = t(3, 2, 15);
    let factors = Rc::new(vec![0.5f32, 2.0, -1.0]);
    check_gradients(
        &[a],
        move |_, v| v[0].scale_rows(&factors).sum(),
        EPS,
        TOL,
    );
}

#[test]
fn grad_pairwise_cosine() {
    let a = t(4, 3, 16);
    let b = t(4, 3, 17);
    check_gradients(
        &[a, b],
        |_, v| v[0].pairwise_cosine(&v[1]).sum(),
        EPS,
        TOL,
    );
}

#[test]
fn grad_segment_softmax() {
    let a = Tensor::vector(vec![0.5, -0.3, 1.2, 0.8, -0.9]);
    let segments = Rc::new(vec![0usize, 0, 1, 1, 1]);
    check_gradients(
        &[a],
        move |_, v| {
            // weight the softmax so the gradient is not trivially zero
            let sm = v[0].segment_softmax(&segments);
            sm.mul(&sm).sum()
        },
        1e-3,
        TOL,
    );
}

#[test]
fn grad_segment_sum() {
    let a = Tensor::vector(vec![0.5, -0.3, 1.2, 0.8]);
    let segments = Rc::new(vec![1usize, 0, 1, 0]);
    check_gradients(
        &[a],
        move |_, v| {
            let s = v[0].segment_sum(&segments, 2);
            s.mul(&s).sum()
        },
        EPS,
        TOL,
    );
}

#[test]
fn grad_weighted_gather() {
    let pairs = Rc::new(vec![(0usize, 0usize), (0, 1), (1, 1), (2, 0), (2, 2)]);
    let w = Tensor::vector(vec![0.5, -0.2, 1.0, 0.7, 0.3]);
    let h = t(3, 2, 18);
    check_gradients(
        &[w, h],
        move |g, v| {
            let y = g.weighted_gather(&pairs, 3, &v[0], &v[1]);
            y.mul(&y).sum()
        },
        EPS,
        TOL,
    );
}

#[test]
fn grad_composite_mlp_like_pipeline() {
    // A realistic slice of the model: linear → ReLU → linear → sigmoid →
    // BCE-style loss, checking gradients of weights and biases jointly.
    let x = t(4, 3, 19);
    let w1 = t(3, 5, 20);
    let b1 = Tensor::vector(vec![0.1, -0.2, 0.3, 0.0, 0.05]);
    let w2 = t(5, 1, 21);
    check_gradients(
        &[x, w1, b1, w2],
        |_, v| {
            let h = v[0].matmul(&v[1]).add_bias(&v[2]).relu();
            let p = h.matmul(&v[3]).sigmoid();
            // -mean(log p) over pseudo-positive labels
            p.ln_eps(1e-7).mean().neg()
        },
        EPS,
        TOL,
    );
}

#[test]
fn grad_contrastive_like_pipeline() {
    // exp(cos/t) pooled by segments and log-ratioed — the shape of Eq. 20.
    let a = t(6, 4, 22);
    let b = t(6, 4, 23);
    let seg = Rc::new(vec![0usize, 0, 1, 1, 2, 2]);
    check_gradients(
        &[a, b],
        move |_, v| {
            let cs = v[0].pairwise_cosine(&v[1]).scale(1.0 / 0.3).exp();
            let pooled = cs.segment_sum(&seg, 3);
            pooled.ln_eps(1e-7).mean().neg()
        },
        EPS,
        TOL,
    );
}

#[test]
fn grad_reshape_passthrough() {
    let a = t(2, 3, 24);
    check_gradients(
        &[a],
        |_, v| {
            let r = v[0].reshape(ahntp_tensor::Shape::Vector(6));
            r.mul(&r).sum()
        },
        EPS,
        TOL,
    );
}

#[test]
fn gradcheck_report_is_informative() {
    let a = t(2, 2, 25);
    let report = check_gradients(&[a], |_, v| v[0].tanh().sum(), EPS, TOL);
    assert_eq!(report.checked, 4);
    assert!(report.max_rel_err <= TOL);
}
