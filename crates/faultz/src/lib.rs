//! Deterministic failpoint registry for the AHNTP stack.
//!
//! A *failpoint* is a named site in production code where a test (or an
//! operator, via the environment) can inject a fault: an error return, a
//! panic, or a delay. Sites are compiled in permanently and wired through
//! the hot seams of the stack — checkpoint I/O, the training loop,
//! hypergraph cache builds, every serve request stage — so that "the disk
//! died mid-checkpoint" or "the batcher wedged" become deterministic,
//! assertable test scenarios instead of prayers.
//!
//! Everything is plain `std` plus the in-workspace telemetry crate: no
//! external dependencies, mirroring `ahntp-telemetry`'s design.
//!
//! # Cost when disabled
//!
//! The fast path of every site is one relaxed atomic load of the global
//! armed-site count followed by a single always-false predicted branch —
//! the same budget as a disabled telemetry hook. No string is hashed, no
//! lock is touched, and nothing allocates until at least one failpoint is
//! armed.
//!
//! # Arming
//!
//! Programmatically (tests):
//!
//! ```
//! use ahntp_faultz::{self as faultz, Action, FaultSpec};
//!
//! let _guard = faultz::scoped("demo.site", FaultSpec::new(Action::Err));
//! assert!(faultz::hit("demo.site").is_some());
//! drop(_guard); // site disarmed, hit count cleared
//! assert!(faultz::hit("demo.site").is_none());
//! ```
//!
//! Or from the environment, read once on first use:
//!
//! ```text
//! AHNTP_FAILPOINTS='ckpt.io.write=err;serve.batch=delay(10);train.epoch=nth(3)'
//! ```
//!
//! The env grammar is `site=action` pairs separated by `;` (or `,`), with
//! actions `err` (inject an error on every hit), `panic` (panic on every
//! hit), `delay(ms)` (sleep that many milliseconds on every hit), and
//! `nth(k)` (inject an error on the k-th hit only, 1-based — the
//! "crash on the third checkpoint write" form). Programmatic specs can
//! combine any action with an `nth` gate via [`FaultSpec::on_nth`].
//!
//! # Evaluating
//!
//! Fallible code uses the [`failpoint!`] macro, which early-returns an
//! error converted from [`Injected`] (sites pick their error type via a
//! `From<Injected>` impl, or supply a closure building the return value):
//!
//! ```ignore
//! fn write(path: &Path, bytes: &[u8]) -> io::Result<()> {
//!     failpoint!("ckpt.io.write");            // returns Err(Injected.into())
//!     ...
//! }
//! ```
//!
//! Infallible code (the training loop, cache builds) calls
//! [`enforce`], which escalates an injected error to a panic — the only
//! honest way to "fail" a function that cannot return an error. Code that
//! wants to *degrade* rather than fail (the serve batcher) calls [`hit`]
//! directly and branches on the result.
//!
//! Every triggered fault increments the `faultz.triggered` telemetry
//! counter (plus per-site `faultz.<site>.triggered`), so chaos tests can
//! assert that the metrics snapshot accounts for every injected event.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// The error value a triggered failpoint injects. Consumer crates convert
/// it into their own error types via `From<Injected>` impls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injected {
    site: String,
}

impl Injected {
    /// Name of the failpoint that fired.
    pub fn site(&self) -> &str {
        &self.site
    }
}

impl std::fmt::Display for Injected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at failpoint `{}`", self.site)
    }
}

impl std::error::Error for Injected {}

impl From<Injected> for std::io::Error {
    fn from(inj: Injected) -> std::io::Error {
        std::io::Error::other(inj.to_string())
    }
}

impl From<Injected> for String {
    fn from(inj: Injected) -> String {
        inj.to_string()
    }
}

/// What a triggered failpoint does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Inject an error ([`hit`] returns `Some(Injected)`).
    Err,
    /// Panic with a message naming the site.
    Panic,
    /// Sleep this many milliseconds, then continue normally.
    Delay(u64),
}

/// A full fault specification: an action plus an optional `nth` gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    action: Action,
    /// When set, the action fires only on this (1-based) evaluation of the
    /// site; every other evaluation is a no-op.
    nth: Option<u64>,
}

impl FaultSpec {
    /// A spec that fires its action on every evaluation.
    pub fn new(action: Action) -> FaultSpec {
        FaultSpec { action, nth: None }
    }

    /// Restricts the spec to fire only on the `n`-th evaluation (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn on_nth(mut self, n: u64) -> FaultSpec {
        assert!(n > 0, "nth gates are 1-based");
        self.nth = Some(n);
        self
    }

    /// Parses the env grammar: `err`, `panic`, `delay(ms)`, `nth(k)`.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed spec.
    pub fn parse(text: &str) -> Result<FaultSpec, String> {
        let text = text.trim();
        match text {
            "err" => return Ok(FaultSpec::new(Action::Err)),
            "panic" => return Ok(FaultSpec::new(Action::Panic)),
            _ => {}
        }
        let arg = |prefix: &str| -> Option<Result<u64, String>> {
            let inner = text.strip_prefix(prefix)?.strip_suffix(')')?;
            Some(
                inner
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| format!("bad numeric argument in {text:?}")),
            )
        };
        if let Some(ms) = arg("delay(") {
            return Ok(FaultSpec::new(Action::Delay(ms?)));
        }
        if let Some(k) = arg("nth(") {
            let k = k?;
            if k == 0 {
                return Err(format!("nth is 1-based, got {text:?}"));
            }
            return Ok(FaultSpec::new(Action::Err).on_nth(k));
        }
        Err(format!(
            "unknown failpoint action {text:?} (expected err, panic, delay(ms), or nth(k))"
        ))
    }
}

struct SiteState {
    spec: FaultSpec,
    hits: u64,
}

struct Registry {
    sites: HashMap<String, SiteState>,
}

static ARMED_SITES: AtomicUsize = AtomicUsize::new(0);
static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
static ENV_INIT: OnceLock<()> = OnceLock::new();

fn registry() -> MutexGuard<'static, Registry> {
    REGISTRY
        .get_or_init(|| {
            Mutex::new(Registry {
                sites: HashMap::new(),
            })
        })
        .lock()
        // Failpoints panic by design; a poisoned registry is still valid.
        .unwrap_or_else(PoisonError::into_inner)
}

/// Reads `AHNTP_FAILPOINTS` once and arms the sites it names. Malformed
/// entries are warned about and skipped, matching the telemetry crate's
/// env-parsing policy (never silently ignore, never abort).
fn init_from_env() {
    ENV_INIT.get_or_init(|| {
        let Ok(raw) = std::env::var("AHNTP_FAILPOINTS") else {
            return;
        };
        for entry in raw.split([';', ',']).filter(|e| !e.trim().is_empty()) {
            let Some((site, spec)) = entry.split_once('=') else {
                ahntp_telemetry::warn!(
                    "faultz",
                    "AHNTP_FAILPOINTS entry {entry:?} is not site=action; skipped"
                );
                continue;
            };
            match FaultSpec::parse(spec) {
                // `arm`, not `configure`: configure() re-enters
                // init_from_env(), and a re-entrant OnceLock::get_or_init
                // deadlocks.
                Ok(spec) => arm(site.trim(), spec),
                Err(e) => {
                    ahntp_telemetry::warn!("faultz", "AHNTP_FAILPOINTS: {e}; skipped");
                }
            }
        }
    });
}

/// Whether any failpoint is armed. One relaxed atomic load — the gate the
/// [`failpoint!`] macro and every helper check before doing real work.
#[inline]
pub fn armed() -> bool {
    init_from_env();
    ARMED_SITES.load(Ordering::Relaxed) != 0
}

/// Arms `site` with `spec`, replacing any previous spec and resetting the
/// site's hit count.
pub fn configure(site: &str, spec: FaultSpec) {
    init_from_env();
    arm(site, spec);
}

/// The arming core, shared by [`configure`] and the env initializer
/// (which must not re-enter [`configure`]'s `init_from_env`).
fn arm(site: &str, spec: FaultSpec) {
    let mut reg = registry();
    let fresh = reg
        .sites
        .insert(site.to_string(), SiteState { spec, hits: 0 })
        .is_none();
    if fresh {
        ARMED_SITES.fetch_add(1, Ordering::Relaxed);
    }
}

/// Disarms `site` (no-op if it was not armed).
pub fn disarm(site: &str) {
    let mut reg = registry();
    if reg.sites.remove(site).is_some() {
        ARMED_SITES.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Disarms every failpoint.
pub fn clear() {
    let mut reg = registry();
    let n = reg.sites.len();
    reg.sites.clear();
    ARMED_SITES.fetch_sub(n, Ordering::Relaxed);
}

/// Number of times `site` has been evaluated since it was last configured
/// (0 for unarmed sites — unarmed evaluations are not tracked).
pub fn hits(site: &str) -> u64 {
    registry().sites.get(site).map_or(0, |s| s.hits)
}

/// RAII guard returned by [`scoped`]: disarms its site on drop.
pub struct ScopedFault {
    site: String,
}

impl Drop for ScopedFault {
    fn drop(&mut self) {
        disarm(&self.site);
    }
}

/// Arms `site` for the lifetime of the returned guard — the test-friendly
/// entry point that cannot leak armed faults into later tests.
#[must_use = "the failpoint is disarmed when the guard drops"]
pub fn scoped(site: &str, spec: FaultSpec) -> ScopedFault {
    configure(site, spec);
    ScopedFault {
        site: site.to_string(),
    }
}

/// Evaluates the failpoint `site`: counts the hit and, if an armed spec
/// matches, performs its action. `Some(Injected)` means "fail now";
/// `None` means continue (possibly after a delay).
///
/// # Panics
///
/// Panics when the armed action is [`Action::Panic`] — that is the action.
pub fn hit(site: &str) -> Option<Injected> {
    if !armed() {
        return None;
    }
    let action = {
        let mut reg = registry();
        let state = reg.sites.get_mut(site)?;
        state.hits += 1;
        match state.spec.nth {
            Some(n) if state.hits != n => return None,
            _ => state.spec.action,
        }
    };
    ahntp_telemetry::counter_add("faultz.triggered", 1);
    ahntp_telemetry::counter_add(&format!("faultz.{site}.triggered"), 1);
    // Mark the trigger in the Chrome trace so injected faults line up
    // with the spans they perturbed.
    ahntp_telemetry::trace_instant("faultz", site);
    match action {
        Action::Err => {
            ahntp_telemetry::warn!("faultz", "failpoint `{site}`: injecting error");
            Some(Injected {
                site: site.to_string(),
            })
        }
        Action::Panic => {
            ahntp_telemetry::warn!("faultz", "failpoint `{site}`: injecting panic");
            panic!("failpoint `{site}`: injected panic");
        }
        Action::Delay(ms) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            None
        }
    }
}

/// [`hit`] for infallible contexts: an injected error escalates to a
/// panic (there is no error channel to return it through), delays and
/// panics behave as usual.
///
/// # Panics
///
/// Panics when the armed action is [`Action::Err`] or [`Action::Panic`].
pub fn enforce(site: &str) {
    if let Some(inj) = hit(site) {
        panic!("failpoint `{}`: injected failure ({inj})", inj.site());
    }
}

/// Evaluates a failpoint and early-returns on injection.
///
/// Two forms:
///
/// * `failpoint!("site")` — on injection, `return Err(injected.into())`;
///   the enclosing function's error type must implement `From<Injected>`.
/// * `failpoint!("site", |inj| expr)` — on injection, `return expr;` the
///   closure receives the [`Injected`] value and builds the full return
///   value (not just the error).
///
/// When no failpoint is armed anywhere, both forms cost one relaxed
/// atomic load.
#[macro_export]
macro_rules! failpoint {
    ($site:expr) => {
        if $crate::armed() {
            if let Some(inj) = $crate::hit($site) {
                return Err(inj.into());
            }
        }
    };
    ($site:expr, $ret:expr) => {
        if $crate::armed() {
            if let Some(inj) = $crate::hit($site) {
                #[allow(clippy::redundant_closure_call)]
                return ($ret)(inj);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; tests in this file serialize on one
    // lock so their arming cannot interleave.
    static GATE: Mutex<()> = Mutex::new(());

    fn exclusive() -> MutexGuard<'static, ()> {
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn unarmed_sites_are_silent() {
        let _gate = exclusive();
        assert!(hit("tests.nowhere").is_none());
        assert_eq!(hits("tests.nowhere"), 0);
    }

    #[test]
    fn err_fires_on_every_hit_and_scoped_disarms() {
        let _gate = exclusive();
        let guard = scoped("tests.err", FaultSpec::new(Action::Err));
        for _ in 0..3 {
            let inj = hit("tests.err").expect("armed err fires");
            assert_eq!(inj.site(), "tests.err");
        }
        assert_eq!(hits("tests.err"), 3);
        drop(guard);
        assert!(hit("tests.err").is_none());
    }

    #[test]
    fn nth_gates_to_exactly_one_hit() {
        let _gate = exclusive();
        let _guard = scoped("tests.nth", FaultSpec::new(Action::Err).on_nth(3));
        assert!(hit("tests.nth").is_none());
        assert!(hit("tests.nth").is_none());
        assert!(hit("tests.nth").is_some(), "third hit fires");
        assert!(hit("tests.nth").is_none(), "and only the third");
    }

    #[test]
    fn panic_action_panics_with_the_site_name() {
        let _gate = exclusive();
        let _guard = scoped("tests.panic", FaultSpec::new(Action::Panic));
        let result = std::panic::catch_unwind(|| hit("tests.panic"));
        let err = result.expect_err("must panic");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("tests.panic"), "{msg}");
    }

    #[test]
    fn delay_returns_none_after_sleeping() {
        let _gate = exclusive();
        let _guard = scoped("tests.delay", FaultSpec::new(Action::Delay(5)));
        let started = std::time::Instant::now();
        assert!(hit("tests.delay").is_none());
        assert!(started.elapsed() >= std::time::Duration::from_millis(5));
    }

    #[test]
    fn enforce_escalates_err_to_panic() {
        let _gate = exclusive();
        let _guard = scoped("tests.enforce", FaultSpec::new(Action::Err));
        let result = std::panic::catch_unwind(|| enforce("tests.enforce"));
        let err = result.expect_err("must panic");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("tests.enforce"), "{msg}");
    }

    #[test]
    fn spec_parsing_covers_the_env_grammar() {
        assert_eq!(FaultSpec::parse("err").unwrap(), FaultSpec::new(Action::Err));
        assert_eq!(
            FaultSpec::parse(" panic ").unwrap(),
            FaultSpec::new(Action::Panic)
        );
        assert_eq!(
            FaultSpec::parse("delay(25)").unwrap(),
            FaultSpec::new(Action::Delay(25))
        );
        assert_eq!(
            FaultSpec::parse("nth(4)").unwrap(),
            FaultSpec::new(Action::Err).on_nth(4)
        );
        assert!(FaultSpec::parse("nth(0)").is_err());
        assert!(FaultSpec::parse("delay(soon)").is_err());
        assert!(FaultSpec::parse("explode").is_err());
    }

    #[test]
    fn macro_returns_the_converted_error() {
        let _gate = exclusive();
        fn guarded() -> Result<u32, String> {
            failpoint!("tests.macro");
            Ok(7)
        }
        assert_eq!(guarded(), Ok(7), "unarmed: straight through");
        let _guard = scoped("tests.macro", FaultSpec::new(Action::Err));
        let err = guarded().expect_err("armed: injected");
        assert!(err.contains("tests.macro"), "{err}");
    }

    #[test]
    fn macro_closure_form_builds_the_return_value() {
        let _gate = exclusive();
        fn guarded() -> u32 {
            failpoint!("tests.macro.closure", |_inj| 99);
            7
        }
        assert_eq!(guarded(), 7);
        let _guard = scoped("tests.macro.closure", FaultSpec::new(Action::Err));
        assert_eq!(guarded(), 99);
    }

    #[test]
    fn configure_resets_hit_counts() {
        let _gate = exclusive();
        let _guard = scoped("tests.reset", FaultSpec::new(Action::Err).on_nth(2));
        assert!(hit("tests.reset").is_none());
        assert!(hit("tests.reset").is_some());
        configure("tests.reset", FaultSpec::new(Action::Err).on_nth(2));
        assert!(hit("tests.reset").is_none(), "count restarted");
        assert!(hit("tests.reset").is_some());
        disarm("tests.reset");
    }

    #[test]
    fn triggered_counter_accounts_for_every_injection() {
        let _gate = exclusive();
        ahntp_telemetry::set_enabled(true);
        let before = ahntp_telemetry::counter_get("faultz.triggered");
        let site_before = ahntp_telemetry::counter_get("faultz.tests.counted.triggered");
        let _guard = scoped("tests.counted", FaultSpec::new(Action::Err));
        let n = 4;
        for _ in 0..n {
            assert!(hit("tests.counted").is_some());
        }
        assert_eq!(ahntp_telemetry::counter_get("faultz.triggered"), before + n);
        assert_eq!(
            ahntp_telemetry::counter_get("faultz.tests.counted.triggered"),
            site_before + n
        );
    }
}
