//! Personalized PageRank from honest seed sets — the Sybil-defense prior.
//!
//! Classic PageRank teleports uniformly, so a dense fake cluster can
//! accumulate rank from its own internal edges. *Personalized* PageRank
//! teleports only to a trusted seed set: trust mass originates at honest
//! seeds and can reach a Sybil region only by crossing attack edges. That
//! yields the formal guarantee this module's callers test against
//! (SNIPPETS.md Snippet 1 / Yu et al.): at the fixed point
//! `s = d · Pᵀ s + (1 − d) · e_H` the total mass inside a Sybil region
//! `S` satisfies
//!
//! ```text
//! Σ_{v ∈ S} s(v)  ≤  (d / (1 − d)) · Σ_{(h → v) ∈ attack} s(h) / out(h)
//! ```
//!
//! — bounded by the attack-edge cut, *independent of how many Sybil nodes
//! sit behind it*. [`sybil_mass_bound`] computes the right-hand side from
//! a converged vector so tests can check the inequality directly.
//!
//! # Determinism
//!
//! The iteration multiplies by the transposed row-normalised adjacency
//! with [`CsrMatrix::mul_vec`], whose output is row-banded across the
//! `ahntp-par` pool: each output entry is one serially-computed dot, so
//! the result is bitwise identical at every `AHNTP_THREADS` setting —
//! same discipline as every other kernel in the workspace. (Plain
//! [`pagerank`](crate::pagerank) uses the serial `t_mul_vec` scatter;
//! this module pays one explicit transpose up front to buy banding.)

use crate::DiGraph;
use ahntp_tensor::CsrMatrix;

/// Configuration for the personalized power iteration.
#[derive(Debug, Clone, Copy)]
pub struct PprConfig {
    /// Damping factor `d ∈ (0, 1)`: the probability of following an edge
    /// rather than teleporting back to the seed set. The Sybil bound
    /// scales with `d / (1 − d)`, so smaller `d` is a tighter defense at
    /// the cost of shorter-range trust propagation.
    pub damping: f64,
    /// Stop when the L1 residual between iterates falls below this.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
}

impl Default for PprConfig {
    fn default() -> Self {
        PprConfig {
            damping: 0.85,
            tolerance: 1e-10,
            max_iterations: 200,
        }
    }
}

/// What the power iteration actually did — exposed so property tests can
/// assert the convergence contract instead of trusting it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PprStats {
    /// Iterations run (≥ 1 for any non-empty graph).
    pub iterations: usize,
    /// L1 residual of the last iterate.
    pub residual: f64,
    /// Whether the residual fell below the tolerance (false only when the
    /// iteration cap hit first).
    pub converged: bool,
}

/// Personalized PageRank over the graph's adjacency — see
/// [`ppr_from_seeds`].
pub fn ppr(g: &DiGraph, seeds: &[usize], cfg: &PprConfig) -> Vec<f64> {
    ppr_from_seeds(g.adjacency(), seeds, cfg)
}

/// Personalized PageRank mass per node, teleporting uniformly over
/// `seeds`: the fixed point of `s = d · Pᵀ s + (1 − d) · e_H` where `P`
/// is the row-normalised walk matrix and `e_H` is uniform over the seed
/// set. Dangling-row mass is redistributed to the *seeds* (not uniformly
/// — a uniform fix would leak trust into a disconnected Sybil region),
/// so `Σ s = 1` at every iterate.
///
/// Duplicate seed ids are collapsed; the teleport stays uniform over the
/// distinct seeds.
///
/// # Panics
///
/// Panics when `w` is not square, `damping` is outside `(0, 1)`, `seeds`
/// is empty (trust must originate somewhere), or a seed id is out of
/// range.
pub fn ppr_from_seeds(w: &CsrMatrix<f64>, seeds: &[usize], cfg: &PprConfig) -> Vec<f64> {
    ppr_from_seeds_with_stats(w, seeds, cfg).0
}

/// [`ppr_from_seeds`] plus the iteration's [`PprStats`].
pub fn ppr_from_seeds_with_stats(
    w: &CsrMatrix<f64>,
    seeds: &[usize],
    cfg: &PprConfig,
) -> (Vec<f64>, PprStats) {
    let n = w.rows();
    assert_eq!(n, w.cols(), "ppr: matrix must be square");
    assert!(
        cfg.damping > 0.0 && cfg.damping < 1.0,
        "ppr: damping must be in (0, 1), got {}",
        cfg.damping
    );
    assert!(!seeds.is_empty(), "ppr: need at least one honest seed");
    let mut distinct: Vec<usize> = seeds.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    if let Some(&bad) = distinct.iter().find(|&&u| u >= n) {
        panic!("ppr: seed {bad} out of range for a graph of {n} nodes");
    }

    let mut teleport = vec![0.0f64; n];
    let share = 1.0 / distinct.len() as f64;
    for &u in &distinct {
        teleport[u] = share;
    }

    let p = w.row_normalized();
    // Pᵀ once: the per-iteration multiply then runs through the banded
    // `mul_vec` (one output row per task) instead of the serial scatter.
    let pt = p.transpose();
    let dangling: Vec<bool> = (0..n).map(|r| p.row_nnz(r) == 0).collect();

    let d = cfg.damping;
    let mut s = teleport.clone();
    let mut stats = PprStats {
        iterations: 0,
        residual: f64::INFINITY,
        converged: false,
    };
    for _ in 0..cfg.max_iterations {
        let dangling_mass: f64 = s
            .iter()
            .zip(&dangling)
            .filter_map(|(&v, &dang)| dang.then_some(v))
            .sum();
        let mut next = pt.mul_vec(&s);
        // Teleport and dangling mass both return to the seed set.
        let back = (1.0 - d) + d * dangling_mass;
        for (v, t) in next.iter_mut().zip(&teleport) {
            *v = d * *v + back * t;
        }
        stats.residual = next.iter().zip(&s).map(|(a, b)| (a - b).abs()).sum();
        stats.iterations += 1;
        s = next;
        if stats.residual < cfg.tolerance {
            stats.converged = true;
            break;
        }
    }
    (s, stats)
}

/// Total trust mass inside a node region (e.g. the labelled Sybil set).
/// Duplicate ids are counted once.
pub fn region_mass(mass: &[f64], region: &[usize]) -> f64 {
    let mut distinct: Vec<usize> = region.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    distinct.iter().map(|&v| mass[v]).sum()
}

/// The Snippet 1 attack-edge bound, evaluated on a converged mass vector:
/// `(d / (1 − d)) · Σ_{(h → v) ∈ attack_edges} mass[h] · p(h, v)` where
/// `p` is the row-normalised walk probability of the attack edge. Any
/// region whose only inbound edges are `attack_edges` has
/// [`region_mass`] at most this value (plus convergence slack) — the
/// bound depends on the cut, never on the region's size or internal
/// density.
///
/// # Panics
///
/// Panics on an out-of-range node id or when `mass.len()` disagrees with
/// the matrix.
pub fn sybil_mass_bound(
    w: &CsrMatrix<f64>,
    mass: &[f64],
    attack_edges: &[(usize, usize)],
    damping: f64,
) -> f64 {
    assert_eq!(mass.len(), w.rows(), "ppr: mass length must match the graph");
    let p = w.row_normalized();
    let inflow: f64 = attack_edges
        .iter()
        .map(|&(h, v)| {
            assert!(h < w.rows() && v < w.cols(), "ppr: attack edge ({h}, {v}) out of range");
            let weight = p
                .row_entries(h)
                .find_map(|(col, val)| (col == v).then_some(val))
                .unwrap_or(0.0);
            mass[h] * weight
        })
        .sum();
    // An empty float sum is -0.0; keep the zero-cut bound at +0.0.
    damping / (1.0 - damping) * inflow.max(0.0)
}

/// Rescales raw PPR mass into per-node prior trust scores in `[0, 1]`
/// (max-normalised), the form the defended-score blend consumes: the
/// best-connected honest node gets prior 1, unreachable nodes get 0.
/// An all-zero (or empty) mass vector maps to all zeros.
pub fn trust_prior(mass: &[f64]) -> Vec<f32> {
    let max = mass.iter().copied().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return vec![0.0; mass.len()];
    }
    mass.iter().map(|&m| (m / max) as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(usize, usize)]) -> DiGraph {
        DiGraph::from_edges(n, edges).expect("valid test graph")
    }

    #[test]
    fn mass_is_conserved_and_concentrated_on_seeds() {
        let g = graph(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (0, 3)]);
        let (s, stats) = ppr_from_seeds_with_stats(g.adjacency(), &[0], &PprConfig::default());
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(stats.converged, "residual {}", stats.residual);
        // The seed dominates its own cycle (the 3↔4 pair is a mass trap
        // and may legitimately hold more — that is what the attack-edge
        // bound, not raw mass comparison, is for).
        assert!(s[0] > s[1] && s[0] > s[2]);
        // Node 5 is unreachable from the seed: exactly zero, bit for bit.
        assert_eq!(s[5], 0.0);
    }

    #[test]
    fn duplicate_seeds_collapse() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let cfg = PprConfig::default();
        let a = ppr(&g, &[0, 2], &cfg);
        let b = ppr(&g, &[0, 2, 2, 0, 0], &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn dangling_mass_returns_to_seeds_not_to_strangers() {
        // 1 is dangling; 2 has no inbound path from the seed at all.
        let g = graph(3, &[(0, 1)]);
        let s = ppr(&g, &[0], &PprConfig::default());
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(s[2], 0.0, "dangling redistribution must not leak off-seed");
        assert!(s[0] > s[1]);
    }

    #[test]
    fn unreachable_region_gets_exactly_zero_mass() {
        // Two components; seeds live entirely in the first.
        let g = graph(6, &[(0, 1), (1, 0), (3, 4), (4, 5), (5, 3)]);
        let s = ppr(&g, &[0, 1], &PprConfig::default());
        assert_eq!(region_mass(&s, &[3, 4, 5]), 0.0);
        assert!((region_mass(&s, &[0, 1, 2]) - 1.0).abs() < 1e-9);
        // Duplicates in the region are counted once.
        assert_eq!(region_mass(&s, &[3, 3, 4, 5, 4]), 0.0);
    }

    #[test]
    fn attack_edge_bound_holds_on_a_dense_sybil_cluster() {
        // Honest ring 0..4, dense Sybil cluster 4..8, one attack edge 1→4.
        let mut edges = vec![(0, 1), (1, 2), (2, 3), (3, 0), (1, 4)];
        for i in 4..8 {
            for j in 4..8 {
                if i != j {
                    edges.push((i, j));
                }
            }
        }
        let g = graph(8, &edges);
        let cfg = PprConfig { tolerance: 1e-14, ..PprConfig::default() };
        let s = ppr(&g, &[0, 1, 2, 3], &cfg);
        let sybil_mass = region_mass(&s, &[4, 5, 6, 7]);
        let bound = sybil_mass_bound(g.adjacency(), &s, &[(1, 4)], cfg.damping);
        assert!(
            sybil_mass <= bound + 1e-9,
            "sybil mass {sybil_mass} exceeds bound {bound}"
        );
        assert!(sybil_mass > 0.0, "one attack edge leaks some mass");
    }

    #[test]
    fn stats_report_cap_exhaustion() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let (_, stats) = ppr_from_seeds_with_stats(
            g.adjacency(),
            &[0],
            &PprConfig { tolerance: 0.0, max_iterations: 3, ..PprConfig::default() },
        );
        assert_eq!(stats.iterations, 3);
        assert!(!stats.converged);
    }

    #[test]
    fn trust_prior_is_max_normalised() {
        let prior = trust_prior(&[0.2, 0.4, 0.0]);
        assert_eq!(prior, vec![0.5, 1.0, 0.0]);
        assert_eq!(trust_prior(&[0.0, 0.0]), vec![0.0, 0.0]);
        assert!(trust_prior(&[]).is_empty());
    }

    #[test]
    fn ppr_is_bitwise_thread_invariant() {
        let mut edges = Vec::new();
        for i in 0..40usize {
            edges.push((i, (i + 1) % 40));
            edges.push((i, (i * 7 + 3) % 40));
        }
        edges.sort_unstable();
        edges.dedup();
        let g = graph(40, &edges);
        let cfg = PprConfig::default();
        let old_threads = ahntp_par::threads();
        let old_threshold = ahntp_par::par_threshold();
        ahntp_par::set_par_threshold(0); // force banding even at toy size
        ahntp_par::set_threads(1);
        let serial: Vec<u64> = ppr(&g, &[0, 3, 17], &cfg).iter().map(|v| v.to_bits()).collect();
        for t in [2usize, 4, 7] {
            ahntp_par::set_threads(t);
            let par: Vec<u64> = ppr(&g, &[0, 3, 17], &cfg).iter().map(|v| v.to_bits()).collect();
            assert_eq!(serial, par, "ppr at {t} threads");
        }
        ahntp_par::set_par_threshold(old_threshold);
        ahntp_par::set_threads(old_threads);
    }

    #[test]
    #[should_panic(expected = "at least one honest seed")]
    fn empty_seed_set_rejected() {
        ppr(&graph(2, &[(0, 1)]), &[], &PprConfig::default());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_seed_rejected() {
        ppr(&graph(2, &[(0, 1)]), &[5], &PprConfig::default());
    }

    #[test]
    #[should_panic(expected = "damping must be in (0, 1)")]
    fn bad_damping_rejected() {
        ppr(
            &graph(2, &[(0, 1)]),
            &[0],
            &PprConfig { damping: 1.0, ..PprConfig::default() },
        );
    }
}
