//! Triangular motifs and motif-induced adjacency matrices (Fig. 4 and
//! Table II of the paper).
//!
//! `A^{M_k}_{ij}` counts how often users `i` and `j` co-occur in an instance
//! of motif `M_k` (Eq. 3). Following Table II (and its source, Zhao et al.
//! AAAI'18 / Benson et al., Science 2016), each count is a sum of masked
//! sparse products over the unidirectional (`UC`) and bidirectional (`BC`)
//! adjacency parts. Motifs M1–M3 and M5 yield asymmetric `C` and are
//! symmetrised as `C + Cᵀ`; M4, M6 and M7 produce `C` directly (M4's `C` is
//! already symmetric by construction).

use crate::DiGraph;
use ahntp_tensor::CsrMatrix;

/// The seven classical triangular motifs of Fig. 4.
///
/// In edge-notation (`→` one-way, `↔` mutual) over the triangle `{a, b, c}`:
///
/// | Motif | Structure |
/// |-------|-----------|
/// | M1    | a→b, b→c, c→a (directed 3-cycle) |
/// | M2    | a↔b, b→c, a→c (one mutual edge, cycle-free) |
/// | M3    | a↔b, b↔c, a→c (two mutual edges) |
/// | M4    | a↔b, b↔c, a↔c (fully mutual) |
/// | M5    | a→b, a→c, b→c (feed-forward / hierarchy) |
/// | M6    | a→b, a→c, b↔c (out-fan onto a mutual pair) |
/// | M7    | b→a, c→a, b↔c (in-fan from a mutual pair) |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Motif {
    /// Directed 3-cycle.
    M1,
    /// One mutual edge + two one-way edges, acyclic.
    M2,
    /// Two mutual edges + one one-way edge.
    M3,
    /// Fully mutual triangle.
    M4,
    /// Feed-forward triangle.
    M5,
    /// Out-fan onto a mutual pair.
    M6,
    /// In-fan from a mutual pair.
    M7,
}

impl Motif {
    /// All seven motifs in Fig. 4 order.
    pub const ALL: [Motif; 7] = [
        Motif::M1,
        Motif::M2,
        Motif::M3,
        Motif::M4,
        Motif::M5,
        Motif::M6,
        Motif::M7,
    ];
}

impl std::fmt::Display for Motif {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "M{}", *self as usize + 1)
    }
}

/// Computes the motif-induced adjacency matrix `A^{M_k}` of Table II.
///
/// Entry `(i, j)` is the number of `M_k` instances containing both `i` and
/// `j` (summed over the possible positions of the third user), which is
/// exactly the co-occurrence count of Eq. 3. The matrix is symmetric with a
/// zero diagonal.
pub fn motif_adjacency(g: &DiGraph, motif: Motif) -> CsrMatrix<f64> {
    let bc = g.bidirectional();
    let uc = g.unidirectional();
    let uc_t = uc.transpose();
    // Shorthand for `(x · y) ⊙ mask`.
    let prod = |x: &CsrMatrix<f64>, y: &CsrMatrix<f64>, mask: &CsrMatrix<f64>| {
        x.spmm_masked(y, mask)
    };
    let c = match motif {
        Motif::M1 => prod(&uc, &uc, &uc_t),
        Motif::M2 => prod(&bc, &uc, &uc_t)
            .add(&prod(&uc, &bc, &uc_t))
            .add(&prod(&uc, &uc, &bc)),
        Motif::M3 => prod(&bc, &bc, &uc)
            .add(&prod(&bc, &uc, &bc))
            .add(&prod(&uc, &bc, &bc)),
        Motif::M4 => prod(&bc, &bc, &bc),
        Motif::M5 => prod(&uc, &uc, &uc)
            .add(&prod(&uc, &uc_t, &uc))
            .add(&prod(&uc_t, &uc, &uc)),
        Motif::M6 => prod(&uc, &bc, &uc)
            .add(&prod(&bc, &uc_t, &uc_t))
            .add(&prod(&uc_t, &uc, &bc)),
        Motif::M7 => prod(&uc_t, &bc, &uc_t)
            .add(&prod(&bc, &uc, &uc))
            .add(&prod(&uc, &uc_t, &bc)),
    };
    // Table II symmetrises M1–M3 and M5 as `C + Cᵀ`; for M4/M6/M7 the `C`
    // above is already symmetric and is used directly.
    match motif {
        Motif::M4 | Motif::M6 | Motif::M7 => c.prune(),
        _ => c.add(&c.transpose()).prune(),
    }
}

/// Total number of instances of `motif` in the graph. Each instance of a
/// triangular motif contributes to three co-occurrence pairs, each counted
/// symmetrically, so the instance count is `sum(A) / 6`.
pub fn motif_instance_count(g: &DiGraph, motif: Motif) -> f64 {
    let a = motif_adjacency(g, motif);
    a.row_sums().iter().sum::<f64>() / 6.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(usize, usize)]) -> DiGraph {
        DiGraph::from_edges(n, edges).expect("valid test graph")
    }

    /// Role pattern of each motif over ordered roles `(a, b, c)`, derived
    /// term by term from the Table II formulas (see the `Motif` doc table).
    fn role_pattern(
        motif: Motif,
        uni: &dyn Fn(usize, usize) -> bool,
        bi: &dyn Fn(usize, usize) -> bool,
        a: usize,
        b: usize,
        c: usize,
    ) -> bool {
        match motif {
            Motif::M1 => uni(a, b) && uni(b, c) && uni(c, a),
            Motif::M2 => bi(a, b) && uni(a, c) && uni(c, b),
            Motif::M3 => bi(a, b) && bi(b, c) && uni(a, c),
            Motif::M4 => bi(a, b) && bi(b, c) && bi(a, c),
            Motif::M5 => uni(a, b) && uni(b, c) && uni(a, c),
            Motif::M6 => uni(a, b) && uni(a, c) && bi(b, c),
            Motif::M7 => uni(b, a) && uni(c, a) && bi(b, c),
        }
    }

    const PERMS: [[usize; 3]; 6] = [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ];

    /// Automorphism count of the motif pattern, computed on a canonical
    /// instance rather than hardcoded.
    fn symmetry(motif: Motif) -> usize {
        // Build the canonical instance on nodes {0, 1, 2} with roles
        // (a, b, c) = (0, 1, 2).
        let mut edges: Vec<(usize, usize)> = Vec::new();
        {
            let mut add_uni = |u: usize, v: usize| edges.push((u, v));
            match motif {
                Motif::M1 => {
                    add_uni(0, 1);
                    add_uni(1, 2);
                    add_uni(2, 0);
                }
                Motif::M2 => {
                    add_uni(0, 1);
                    add_uni(1, 0);
                    add_uni(0, 2);
                    add_uni(2, 1);
                }
                Motif::M3 => {
                    add_uni(0, 1);
                    add_uni(1, 0);
                    add_uni(1, 2);
                    add_uni(2, 1);
                    add_uni(0, 2);
                }
                Motif::M4 => {
                    for (u, v) in [(0, 1), (1, 2), (0, 2)] {
                        add_uni(u, v);
                        add_uni(v, u);
                    }
                }
                Motif::M5 => {
                    add_uni(0, 1);
                    add_uni(1, 2);
                    add_uni(0, 2);
                }
                Motif::M6 => {
                    add_uni(0, 1);
                    add_uni(0, 2);
                    add_uni(1, 2);
                    add_uni(2, 1);
                }
                Motif::M7 => {
                    add_uni(1, 0);
                    add_uni(2, 0);
                    add_uni(1, 2);
                    add_uni(2, 1);
                }
            }
        }
        let g = DiGraph::from_edges(3, &edges).expect("canonical instance is valid");
        let edge = |u: usize, v: usize| g.has_edge(u, v);
        let uni = move |u: usize, v: usize| edge(u, v) && !edge(v, u);
        let bi = move |u: usize, v: usize| edge(u, v) && edge(v, u);
        PERMS
            .iter()
            .filter(|p| role_pattern(motif, &uni, &bi, p[0], p[1], p[2]))
            .count()
    }

    /// Brute-force motif co-occurrence counting over all node triples,
    /// used as ground truth for the masked-spmm implementation.
    fn brute_force(g: &DiGraph, motif: Motif) -> ahntp_tensor::Tensor {
        let n = g.n();
        let mut a = ahntp_tensor::Tensor::zeros(n, n);
        let edge = |u: usize, v: usize| g.has_edge(u, v);
        let uni = move |u: usize, v: usize| edge(u, v) && !edge(v, u);
        let bi = move |u: usize, v: usize| edge(u, v) && edge(v, u);
        let sym = symmetry(motif);
        assert!(sym >= 1, "pattern must match its own canonical instance");
        for x in 0..n {
            for y in (x + 1)..n {
                for z in (y + 1)..n {
                    let nodes = [x, y, z];
                    let instances = PERMS
                        .iter()
                        .filter(|p| {
                            role_pattern(
                                motif,
                                &uni,
                                &bi,
                                nodes[p[0]],
                                nodes[p[1]],
                                nodes[p[2]],
                            )
                        })
                        .count();
                    assert_eq!(instances % sym, 0, "symmetry accounting broken for {motif}");
                    let count = (instances / sym) as f32;
                    if count > 0.0 {
                        for &u in &nodes {
                            for &v in &nodes {
                                if u != v {
                                    a.set(u, v, a.get(u, v) + count);
                                }
                            }
                        }
                    }
                }
            }
        }
        a
    }

    /// A 7-node graph containing every motif at least once.
    fn rich_graph() -> DiGraph {
        graph(
            7,
            &[
                // M1 cycle: 0→1→2→0
                (0, 1),
                (1, 2),
                (2, 0),
                // M4 mutual triangle: 3↔4, 4↔5, 3↔5
                (3, 4),
                (4, 3),
                (4, 5),
                (5, 4),
                (3, 5),
                (5, 3),
                // M5 feed-forward: 0→5? keep separate: 0→6, 1→6, 0→1 exists
                (0, 6),
                (1, 6),
                // connect mutual pair to a spoke for M6/M7: 6→3, 6→4 gives
                // out-fan onto mutual pair (M6); 3→2, 4→2 would give M7.
                (6, 3),
                (6, 4),
                (3, 2),
                (4, 2),
                // one mutual edge + spokes for M2/M3
                (2, 5),
                (5, 2),
            ],
        )
    }

    #[test]
    fn motif_adjacency_matches_brute_force_on_rich_graph() {
        let g = rich_graph();
        for motif in Motif::ALL {
            let fast = motif_adjacency(&g, motif).to_dense();
            let slow = brute_force(&g, motif);
            assert_eq!(
                fast.as_slice(),
                slow.as_slice(),
                "motif {motif}: masked-spmm disagrees with brute force\nfast={fast:?}\nslow={slow:?}"
            );
        }
    }

    #[test]
    fn motif_adjacency_is_symmetric_with_zero_diagonal() {
        let g = rich_graph();
        for motif in Motif::ALL {
            let a = motif_adjacency(&g, motif);
            let d = a.to_dense();
            for i in 0..g.n() {
                assert_eq!(d.get(i, i), 0.0, "{motif}: nonzero diagonal at {i}");
                for j in 0..g.n() {
                    assert_eq!(d.get(i, j), d.get(j, i), "{motif}: asymmetric at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn paper_fig6_m6_example() {
        // Fig. 6 of the paper: 6 nodes where A^{M6}_{15} = 2 because users
        // 1 and 5 co-occur in two M6 instances {1,6,5} and {1,5,4}.
        // Reconstruct: M6 = a→b, a→c, b↔c. Instances {a=1,(6,5)} and
        // {a=1,(5,4)}: edges 1→6, 1→5, 6↔5, 1→4, 5↔4. (0-indexed: 0-based
        // ids are node-1.)
        let g = graph(
            6,
            &[
                (0, 5), // 1→6
                (0, 4), // 1→5
                (5, 4), // 6↔5
                (4, 5),
                (0, 3), // 1→4
                (4, 3), // 5↔4
                (3, 4),
            ],
        );
        let a = motif_adjacency(&g, Motif::M6);
        assert_eq!(a.get(0, 4), 2.0, "A^M6 between users 1 and 5 must be 2");
        assert_eq!(a.get(4, 0), 2.0);
    }

    #[test]
    fn single_motif_graphs_count_one_instance() {
        // Pure M1 cycle.
        let m1 = graph(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(motif_instance_count(&m1, Motif::M1), 1.0);
        assert_eq!(motif_instance_count(&m1, Motif::M5), 0.0);
        // Pure M4 mutual triangle.
        let m4 = graph(3, &[(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)]);
        assert_eq!(motif_instance_count(&m4, Motif::M4), 1.0);
        assert_eq!(motif_instance_count(&m4, Motif::M1), 0.0);
        // Pure M5 feed-forward.
        let m5 = graph(3, &[(0, 1), (0, 2), (1, 2)]);
        assert_eq!(motif_instance_count(&m5, Motif::M5), 1.0);
        assert_eq!(motif_instance_count(&m5, Motif::M4), 0.0);
    }

    #[test]
    fn empty_graph_has_no_motifs() {
        let g = graph(4, &[]);
        for motif in Motif::ALL {
            assert_eq!(motif_adjacency(&g, motif).nnz(), 0);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Motif::M1.to_string(), "M1");
        assert_eq!(Motif::M7.to_string(), "M7");
    }
}
