//! Directed social-graph engine: adjacency, triangular motifs, PageRank and
//! Motif-based PageRank.
//!
//! This crate implements §III-B and §IV-B-1 of the paper:
//!
//! * [`DiGraph`] — a directed, unweighted social graph in CSR form with the
//!   unidirectional/bidirectional decomposition (`UC = R_U − BC`,
//!   `BC = R_U ⊙ R_Uᵀ`) and k-hop neighbourhood queries.
//! * [`Motif`] / [`motif_adjacency`] — the seven classical triangular
//!   motifs M1–M7 (Fig. 4) and their motif-induced adjacency matrices
//!   `A^{M_k}` (Table II), computed with masked sparse products.
//! * [`pagerank`] / [`motif_pagerank`] — the basic PageRank score `s`
//!   (Eq. 2) and the motif-based PageRank `s'` obtained by mixing the
//!   pairwise adjacency with a motif-induced adjacency (Eqs. 4–5).
//!
//! ```
//! use ahntp_graph::{DiGraph, Motif, motif_pagerank, MotifPageRankConfig};
//!
//! // The 5-user "follow" network of Fig. 2 in the paper.
//! let g = DiGraph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 1), (0, 4)]).unwrap();
//! let scores = motif_pagerank(&g, Motif::M6, &MotifPageRankConfig::default());
//! assert_eq!(scores.len(), 5);
//! // User 2 participates in the closed triangle and outranks user 4.
//! assert!(scores[2] > scores[4]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod digraph;
mod motif;
mod pagerank;
mod ppr;

pub use digraph::{DiGraph, GraphError};
pub use motif::{motif_adjacency, motif_instance_count, Motif};
pub use pagerank::{
    motif_pagerank, pagerank, personalized_pagerank, MotifPageRankConfig, PageRankConfig,
};
pub use ppr::{
    ppr, ppr_from_seeds, ppr_from_seeds_with_stats, region_mass, sybil_mass_bound, trust_prior,
    PprConfig, PprStats,
};
