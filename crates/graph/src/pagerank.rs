//! PageRank and Motif-based PageRank (Eqs. 1–5 of the paper).

use crate::{motif_adjacency, DiGraph, Motif};
use ahntp_tensor::CsrMatrix;

/// Configuration for the basic PageRank iteration (Eq. 2).
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// Damping factor `d ∈ (0, 1)`; the paper (and Brin–Page) use 0.85.
    pub damping: f64,
    /// Stop when the L1 residual between iterates falls below this.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            tolerance: 1e-10,
            max_iterations: 200,
        }
    }
}

/// Configuration for Motif-based PageRank (Eqs. 4–5).
#[derive(Debug, Clone, Copy)]
pub struct MotifPageRankConfig {
    /// Mixing weight `α` between the pairwise adjacency `R_U` and the
    /// motif-induced adjacency `A^{M_k}` (Eq. 4). The paper's best value is
    /// 0.8.
    pub alpha: f64,
    /// PageRank parameters for the mixed walk (Eq. 5).
    pub pagerank: PageRankConfig,
}

impl Default for MotifPageRankConfig {
    fn default() -> Self {
        MotifPageRankConfig {
            alpha: 0.8,
            pagerank: PageRankConfig::default(),
        }
    }
}

/// Power iteration for `s = d · Pᵀ s + (1 − d)/n · e` over an arbitrary
/// non-negative weight matrix `w` (row-normalised internally, Eq. 1).
///
/// Dangling rows (no outgoing weight) redistribute their mass uniformly,
/// the standard stochasticity fix, so `Σ s = 1` holds at every iterate.
fn power_iteration(w: &CsrMatrix<f64>, cfg: &PageRankConfig) -> Vec<f64> {
    let n = w.rows();
    assert_eq!(n, w.cols(), "power_iteration: matrix must be square");
    assert!(
        (0.0..1.0).contains(&cfg.damping) && cfg.damping > 0.0,
        "power_iteration: damping must be in (0, 1), got {}",
        cfg.damping
    );
    if n == 0 {
        return Vec::new();
    }
    let p = w.row_normalized();
    let dangling: Vec<bool> = (0..n).map(|r| p.row_nnz(r) == 0).collect();
    let uniform = 1.0 / n as f64;
    let mut s = vec![uniform; n];
    for _ in 0..cfg.max_iterations {
        // Mass that would be lost through dangling rows.
        let dangling_mass: f64 = s
            .iter()
            .zip(&dangling)
            .filter_map(|(&v, &d)| d.then_some(v))
            .sum();
        let mut next = p.t_mul_vec(&s);
        let teleport = (1.0 - cfg.damping) * uniform;
        let redistribute = cfg.damping * dangling_mass * uniform;
        for v in &mut next {
            *v = cfg.damping * *v + teleport + redistribute;
        }
        let residual: f64 = next.iter().zip(&s).map(|(a, b)| (a - b).abs()).sum();
        s = next;
        if residual < cfg.tolerance {
            break;
        }
    }
    s
}

/// Basic PageRank score `s` over the social graph (Eqs. 1–2).
pub fn pagerank(g: &DiGraph, cfg: &PageRankConfig) -> Vec<f64> {
    power_iteration(g.adjacency(), cfg)
}

/// PageRank over an arbitrary non-negative weight matrix — used for the
/// comprehensive weight matrix `W_c` of Eq. 4, and exposed for callers that
/// build their own influence graphs.
pub fn personalized_pagerank(w: &CsrMatrix<f64>, cfg: &PageRankConfig) -> Vec<f64> {
    power_iteration(w, cfg)
}

/// Motif-based PageRank `s'` (Eqs. 3–5): mixes the pairwise adjacency with
/// the motif-induced adjacency `A^{M_k}` as
/// `W_c = α · R_U + (1 − α) · A^{M_k}` and runs the damped power iteration
/// on the row-normalised `W_c`.
///
/// # Panics
///
/// Panics if `alpha` is outside `[0, 1]`.
pub fn motif_pagerank(g: &DiGraph, motif: Motif, cfg: &MotifPageRankConfig) -> Vec<f64> {
    assert!(
        (0.0..=1.0).contains(&cfg.alpha),
        "motif_pagerank: alpha must be in [0, 1], got {}",
        cfg.alpha
    );
    let a_m = motif_adjacency(g, motif);
    let wc = g
        .adjacency()
        .scale(cfg.alpha)
        .add(&a_m.scale(1.0 - cfg.alpha))
        .prune();
    power_iteration(&wc, &cfg.pagerank)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(usize, usize)]) -> DiGraph {
        DiGraph::from_edges(n, edges).expect("valid test graph")
    }

    #[test]
    fn pagerank_sums_to_one() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 0), (3, 0), (0, 4)]);
        let s = pagerank(&g, &PageRankConfig::default());
        let total: f64 = s.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total mass {total}");
        assert!(s.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn pagerank_of_cycle_is_uniform() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let s = pagerank(&g, &PageRankConfig::default());
        for &v in &s {
            assert!((v - 0.25).abs() < 1e-9, "cycle node score {v}");
        }
    }

    #[test]
    fn hub_outranks_spokes() {
        // Star pointing at node 0.
        let g = graph(5, &[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let s = pagerank(&g, &PageRankConfig::default());
        for i in 1..5 {
            assert!(s[0] > s[i], "hub must dominate spoke {i}");
        }
    }

    #[test]
    fn dangling_nodes_keep_total_mass() {
        // Node 2 has no out-edges at all.
        let g = graph(3, &[(0, 1), (1, 2)]);
        let s = pagerank(&g, &PageRankConfig::default());
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Deeper in the chain means more rank.
        assert!(s[2] > s[1] && s[1] > s[0]);
    }

    #[test]
    fn empty_graph_yields_empty_scores() {
        let g = graph(0, &[]);
        assert!(pagerank(&g, &PageRankConfig::default()).is_empty());
    }

    #[test]
    fn isolated_nodes_get_teleport_mass_only() {
        let g = graph(4, &[(0, 1), (1, 0)]);
        let s = pagerank(&g, &PageRankConfig::default());
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(s[0] > s[2] && s[1] > s[3]);
        assert!(s[2] > 0.0, "isolated nodes keep teleport mass");
    }

    #[test]
    fn motif_pagerank_alpha_one_equals_plain_pagerank() {
        let g = graph(5, &[(0, 1), (0, 2), (1, 2), (2, 1), (0, 4), (4, 3)]);
        let cfg = MotifPageRankConfig {
            alpha: 1.0,
            pagerank: PageRankConfig::default(),
        };
        let mpr = motif_pagerank(&g, Motif::M6, &cfg);
        let pr = pagerank(&g, &PageRankConfig::default());
        for (a, b) in mpr.iter().zip(&pr) {
            assert!((a - b).abs() < 1e-9, "alpha=1 must reduce to PageRank");
        }
    }

    #[test]
    fn motif_pagerank_boosts_triangle_members() {
        // Fig. 2-style graph: the {0,1,2} triangle (with 1↔2 mutual) plus a
        // pendant follow 0→4. Under M6-based MPR, user 2 (inside the
        // triangular structure) must outrank user 4 (outside it).
        let g = graph(5, &[(0, 1), (0, 2), (1, 2), (2, 1), (0, 4)]);
        let mpr = motif_pagerank(&g, Motif::M6, &MotifPageRankConfig::default());
        assert!(
            mpr[2] > mpr[4],
            "triangle member {} must outrank pendant {}",
            mpr[2],
            mpr[4]
        );
        assert!((mpr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn motif_pagerank_alpha_changes_ranking_weighting() {
        let g = graph(
            6,
            &[(0, 1), (0, 2), (1, 2), (2, 1), (0, 4), (4, 5), (5, 4), (3, 4)],
        );
        let lo = motif_pagerank(
            &g,
            Motif::M6,
            &MotifPageRankConfig {
                alpha: 0.1,
                pagerank: PageRankConfig::default(),
            },
        );
        let hi = motif_pagerank(
            &g,
            Motif::M6,
            &MotifPageRankConfig {
                alpha: 0.9,
                pagerank: PageRankConfig::default(),
            },
        );
        // Different mixes produce measurably different score vectors.
        let diff: f64 = lo.iter().zip(&hi).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-6, "alpha must influence the scores");
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0, 1]")]
    fn motif_pagerank_rejects_bad_alpha() {
        let g = graph(2, &[(0, 1)]);
        motif_pagerank(
            &g,
            Motif::M1,
            &MotifPageRankConfig {
                alpha: 1.5,
                pagerank: PageRankConfig::default(),
            },
        );
    }

    #[test]
    #[should_panic(expected = "damping must be in (0, 1)")]
    fn pagerank_rejects_bad_damping() {
        let g = graph(2, &[(0, 1)]);
        pagerank(
            &g,
            &PageRankConfig {
                damping: 1.0,
                ..PageRankConfig::default()
            },
        );
    }
}
