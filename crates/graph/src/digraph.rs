//! The directed social graph and its structural decompositions.

use ahntp_tensor::CsrMatrix;
use std::collections::VecDeque;

/// Errors from graph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint is not a valid node id.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Number of nodes in the graph.
        n: usize,
    },
    /// A self-loop was supplied (trust edges are between distinct users).
    SelfLoop(usize),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for a graph with {n} nodes")
            }
            GraphError::SelfLoop(u) => write!(f, "self-loop on node {u} is not allowed"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A directed, unweighted graph over users `0..n`, stored as a CSR 0/1
/// adjacency (`R_U` in the paper's notation). Duplicate edges collapse.
#[derive(Debug, Clone)]
pub struct DiGraph {
    n: usize,
    /// `R_U`: adj[i][j] = 1 iff there is an edge i → j.
    adj: CsrMatrix<f64>,
    /// `R_Uᵀ` cached for in-neighbour queries.
    adj_t: CsrMatrix<f64>,
}

impl DiGraph {
    /// Builds a graph from a directed edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] on out-of-range endpoints or self-loops.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<DiGraph, GraphError> {
        let mut trips = Vec::with_capacity(edges.len());
        for &(u, v) in edges {
            if u >= n {
                return Err(GraphError::NodeOutOfRange { node: u, n });
            }
            if v >= n {
                return Err(GraphError::NodeOutOfRange { node: v, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
            trips.push((u, v, 1.0f64));
        }
        let adj = CsrMatrix::from_triplets(n, n, &trips)
            .expect("endpoints validated above")
            // Duplicate edges summed to k — clamp back to a 0/1 adjacency.
            .map_values(|_| 1.0);
        let adj_t = adj.transpose();
        Ok(DiGraph { n, adj, adj_t })
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of directed edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.adj.nnz()
    }

    /// The 0/1 adjacency matrix `R_U`.
    #[inline]
    pub fn adjacency(&self) -> &CsrMatrix<f64> {
        &self.adj
    }

    /// The transposed adjacency `R_Uᵀ`.
    #[inline]
    pub fn adjacency_t(&self) -> &CsrMatrix<f64> {
        &self.adj_t
    }

    /// Whether the directed edge `u → v` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj.get(u, v) != 0.0
    }

    /// Out-neighbours of `u` (users that `u` follows/trusts).
    pub fn out_neighbors(&self, u: usize) -> Vec<usize> {
        self.adj.row_entries(u).map(|(c, _)| c).collect()
    }

    /// In-neighbours of `u` (users that follow/trust `u`).
    pub fn in_neighbors(&self, u: usize) -> Vec<usize> {
        self.adj_t.row_entries(u).map(|(c, _)| c).collect()
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: usize) -> usize {
        self.adj.row_nnz(u)
    }

    /// In-degree of `u`.
    pub fn in_degree(&self, u: usize) -> usize {
        self.adj_t.row_nnz(u)
    }

    /// The bidirectional adjacency `BC = R_U ⊙ R_Uᵀ`: mutual
    /// (reciprocated) edges only.
    pub fn bidirectional(&self) -> CsrMatrix<f64> {
        self.adj.hadamard(&self.adj_t)
    }

    /// The unidirectional adjacency `UC = R_U − BC`: edges whose reverse is
    /// absent.
    pub fn unidirectional(&self) -> CsrMatrix<f64> {
        self.adj.sub(&self.bidirectional()).prune()
    }

    /// All nodes within `k` hops of `start` (excluding `start` itself),
    /// following edges in both directions — the neighbourhood used by the
    /// multi-hop hypergroup (Eq. 9), where social proximity rather than
    /// direction matters.
    pub fn k_hop_neighbors(&self, start: usize, k: usize) -> Vec<usize> {
        assert!(
            start < self.n,
            "k_hop_neighbors: node {start} out of range for {} nodes",
            self.n
        );
        let mut dist = vec![usize::MAX; self.n];
        dist[start] = 0;
        let mut queue = VecDeque::from([start]);
        let mut out = Vec::new();
        while let Some(u) = queue.pop_front() {
            if dist[u] == k {
                continue;
            }
            for v in self
                .out_neighbors(u)
                .into_iter()
                .chain(self.in_neighbors(u))
            {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    out.push(v);
                    queue.push_back(v);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Nodes at *exactly* `hop` hops (undirected), used to build one
    /// hyperedge per hop level.
    pub fn exact_hop_neighbors(&self, start: usize, hop: usize) -> Vec<usize> {
        assert!(hop >= 1, "exact_hop_neighbors: hop must be >= 1");
        let within = self.k_hop_neighbors(start, hop);
        if hop == 1 {
            return within;
        }
        let closer: std::collections::HashSet<usize> =
            self.k_hop_neighbors(start, hop - 1).into_iter().collect();
        within.into_iter().filter(|v| !closer.contains(v)).collect()
    }

    /// Counts directed triangles through each node (a cheap clustering
    /// signal used by dataset-calibration checks).
    pub fn triangle_counts(&self) -> Vec<usize> {
        // Union adjacency (undirected view).
        let und = self.adj.add(&self.adj_t).map_values(|_| 1.0);
        let tri = und.spmm_masked(&und, &und);
        (0..self.n)
            .map(|u| {
                tri.row_entries(u)
                    .map(|(_, v)| v as usize)
                    .sum::<usize>()
                    / 2
            })
            .collect()
    }

    /// Density of the directed adjacency: `edges / (n * (n - 1))`, the
    /// "data sparsity" statistic of Table III.
    pub fn density(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        self.n_edges() as f64 / (self.n as f64 * (self.n as f64 - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 2 network: 1→2, 1→3, 2↔3, 1→5 (0-indexed: 0→1, 0→2, 1↔2, 0→4).
    fn fig2() -> DiGraph {
        DiGraph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 1), (0, 4)]).expect("valid")
    }

    #[test]
    fn construction_validates_inputs() {
        assert!(matches!(
            DiGraph::from_edges(3, &[(0, 3)]),
            Err(GraphError::NodeOutOfRange { node: 3, n: 3 })
        ));
        assert!(matches!(
            DiGraph::from_edges(3, &[(1, 1)]),
            Err(GraphError::SelfLoop(1))
        ));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = DiGraph::from_edges(2, &[(0, 1), (0, 1), (0, 1)]).expect("valid");
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.adjacency().get(0, 1), 1.0);
    }

    #[test]
    fn neighbors_and_degrees() {
        let g = fig2();
        assert_eq!(g.out_neighbors(0), vec![1, 2, 4]);
        assert_eq!(g.in_neighbors(2), vec![0, 1]);
        assert_eq!(g.out_degree(0), 3);
        assert_eq!(g.in_degree(4), 1);
        assert!(g.has_edge(1, 2) && g.has_edge(2, 1) && !g.has_edge(4, 0));
    }

    #[test]
    fn uc_bc_decomposition() {
        let g = fig2();
        let bc = g.bidirectional();
        let uc = g.unidirectional();
        // Only 1↔2 is mutual.
        assert_eq!(bc.nnz(), 2);
        assert_eq!(bc.get(1, 2), 1.0);
        assert_eq!(bc.get(2, 1), 1.0);
        // The remaining three edges are unidirectional.
        assert_eq!(uc.nnz(), 3);
        assert_eq!(uc.get(0, 1), 1.0);
        assert_eq!(uc.get(1, 2), 0.0);
        // UC + BC = R_U exactly.
        assert_eq!(uc.add(&bc).to_dense(), g.adjacency().to_dense());
    }

    #[test]
    fn k_hop_neighbors_undirected_reach() {
        // Path 0 → 1 → 2 → 3 plus isolated 4.
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3)]).expect("valid");
        assert_eq!(g.k_hop_neighbors(0, 1), vec![1]);
        assert_eq!(g.k_hop_neighbors(0, 2), vec![1, 2]);
        assert_eq!(g.k_hop_neighbors(0, 3), vec![1, 2, 3]);
        // Reachability is undirected: node 3 reaches back to 0.
        assert_eq!(g.k_hop_neighbors(3, 3), vec![0, 1, 2]);
        assert!(g.k_hop_neighbors(4, 3).is_empty());
    }

    #[test]
    fn exact_hop_rings() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).expect("valid");
        assert_eq!(g.exact_hop_neighbors(0, 1), vec![1]);
        assert_eq!(g.exact_hop_neighbors(0, 2), vec![2]);
        assert_eq!(g.exact_hop_neighbors(0, 3), vec![3]);
    }

    #[test]
    fn triangle_counts_sees_the_fig2_triangle() {
        let g = fig2();
        let t = g.triangle_counts();
        // Nodes 0, 1, 2 share one (undirected) triangle; 3 and 4 none.
        assert!(t[0] >= 1 && t[1] >= 1 && t[2] >= 1);
        assert_eq!(t[3], 0);
        assert_eq!(t[4], 0);
    }

    #[test]
    fn density_matches_definition() {
        let g = fig2();
        assert!((g.density() - 5.0 / 20.0).abs() < 1e-12);
        let tiny = DiGraph::from_edges(1, &[]).expect("valid");
        assert_eq!(tiny.density(), 0.0);
    }
}
