//! Randomised cross-validation of the graph engine: motif adjacency versus
//! an independent brute-force counter, and PageRank invariants, over random
//! digraphs.

#![allow(clippy::needless_range_loop)] // index pairs (i, j) mirror the matrix API

use ahntp_graph::{
    motif_adjacency, motif_pagerank, pagerank, DiGraph, Motif, MotifPageRankConfig,
    PageRankConfig,
};
use proptest::prelude::*;

const N: usize = 9;

fn arb_digraph() -> impl Strategy<Value = DiGraph> {
    proptest::collection::vec(proptest::bool::weighted(0.25), N * N).prop_map(|bits| {
        let mut edges = Vec::new();
        for (k, &b) in bits.iter().enumerate() {
            let (u, v) = (k / N, k % N);
            if b && u != v {
                edges.push((u, v));
            }
        }
        DiGraph::from_edges(N, &edges).expect("indices in range")
    })
}

/// Independent oracle: classify each unordered triple by its exact edge
/// pattern (up to isomorphism) and add 1 to all six ordered co-occurrence
/// pairs per instance.
fn oracle(g: &DiGraph, motif: Motif) -> Vec<Vec<f64>> {
    let n = g.n();
    let edge = |u: usize, v: usize| g.has_edge(u, v);
    let uni = |u: usize, v: usize| edge(u, v) && !edge(v, u);
    let bi = |u: usize, v: usize| edge(u, v) && edge(v, u);
    let mut a = vec![vec![0.0f64; n]; n];
    for x in 0..n {
        for y in (x + 1)..n {
            for z in (y + 1)..n {
                let t = [x, y, z];
                // Count mutual and one-way edges inside the triple.
                let mut mutual = 0;
                let mut oneway = 0;
                for i in 0..3 {
                    for j in (i + 1)..3 {
                        if bi(t[i], t[j]) {
                            mutual += 1;
                        } else if uni(t[i], t[j]) || uni(t[j], t[i]) {
                            oneway += 1;
                        }
                    }
                }
                if mutual + oneway != 3 {
                    continue; // not a triangle
                }
                let is_instance = match motif {
                    Motif::M1 => {
                        mutual == 0
                            && (uni(x, y) && uni(y, z) && uni(z, x)
                                || uni(x, z) && uni(z, y) && uni(y, x))
                    }
                    Motif::M5 => {
                        // acyclic all-one-way triangle = not a 3-cycle
                        mutual == 0
                            && !(uni(x, y) && uni(y, z) && uni(z, x)
                                || uni(x, z) && uni(z, y) && uni(y, x))
                    }
                    Motif::M4 => mutual == 3,
                    Motif::M3 => mutual == 2,
                    Motif::M2 | Motif::M6 | Motif::M7 => {
                        if mutual != 1 {
                            false
                        } else {
                            // Identify the off-pair node `c` and the mutual
                            // pair (p, q).
                            let (p, q, c) = if bi(t[0], t[1]) {
                                (t[0], t[1], t[2])
                            } else if bi(t[0], t[2]) {
                                (t[0], t[2], t[1])
                            } else {
                                (t[1], t[2], t[0])
                            };
                            match motif {
                                // M6: some node points at both mutual members.
                                Motif::M6 => uni(c, p) && uni(c, q),
                                // M7: both mutual members point at c.
                                Motif::M7 => uni(p, c) && uni(q, c),
                                // M2: a directed path through c.
                                Motif::M2 => {
                                    uni(p, c) && uni(c, q) || uni(q, c) && uni(c, p)
                                }
                                _ => unreachable!(),
                            }
                        }
                    }
                };
                if is_instance {
                    for &u in &t {
                        for &v in &t {
                            if u != v {
                                a[u][v] += 1.0;
                            }
                        }
                    }
                }
            }
        }
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn motif_adjacency_matches_pattern_oracle(g in arb_digraph()) {
        for motif in Motif::ALL {
            let fast = motif_adjacency(&g, motif);
            let slow = oracle(&g, motif);
            for i in 0..g.n() {
                for j in 0..g.n() {
                    prop_assert_eq!(
                        fast.get(i, j),
                        slow[i][j],
                        "motif {} at ({}, {})", motif, i, j
                    );
                }
            }
        }
    }

    #[test]
    fn pagerank_is_a_distribution(g in arb_digraph()) {
        let s = pagerank(&g, &PageRankConfig::default());
        let total: f64 = s.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-8, "total {}", total);
        prop_assert!(s.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn motif_pagerank_is_a_distribution(g in arb_digraph()) {
        for motif in [Motif::M1, Motif::M4, Motif::M6] {
            let s = motif_pagerank(&g, motif, &MotifPageRankConfig::default());
            let total: f64 = s.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-8, "{}: total {}", motif, total);
        }
    }

    #[test]
    fn khop_neighborhoods_are_monotone(g in arb_digraph(), start in 0usize..N) {
        let mut prev: Vec<usize> = Vec::new();
        for k in 1..4 {
            let cur = g.k_hop_neighbors(start, k);
            prop_assert!(prev.iter().all(|v| cur.contains(v)), "k-hop sets must grow");
            prop_assert!(!cur.contains(&start));
            prev = cur;
        }
    }
}
