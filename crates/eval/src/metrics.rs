//! Binary-classification metrics.

/// Metrics of a thresholded binary classifier plus ranking AUC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Fraction of correct decisions.
    pub accuracy: f64,
    /// Precision of the positive class (`tp / (tp + fp)`, 0 when empty).
    pub precision: f64,
    /// Recall of the positive class (`tp / (tp + fn)`, 0 when empty).
    pub recall: f64,
    /// Harmonic mean of precision and recall (0 when both are 0).
    pub f1: f64,
    /// Area under the ROC curve (0.5 for a random ranker).
    pub auc: f64,
    /// Number of scored pairs.
    pub n: usize,
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "acc={:.2}% f1={:.2}% (p={:.2}% r={:.2}% auc={:.3}, n={})",
            self.accuracy * 100.0,
            self.f1 * 100.0,
            self.precision * 100.0,
            self.recall * 100.0,
            self.auc,
            self.n
        )
    }
}

/// Computes accuracy/precision/recall/F1 at the given score threshold, plus
/// AUC (threshold-free).
///
/// # Panics
///
/// Panics if lengths differ or any score is NaN.
pub fn binary_metrics(scores: &[f32], labels: &[bool], threshold: f32) -> Metrics {
    assert_eq!(
        scores.len(),
        labels.len(),
        "binary_metrics: {} scores vs {} labels",
        scores.len(),
        labels.len()
    );
    assert!(
        scores.iter().all(|s| !s.is_nan()),
        "binary_metrics: NaN score"
    );
    let (mut tp, mut fp, mut tn, mut fne) = (0usize, 0usize, 0usize, 0usize);
    for (&s, &y) in scores.iter().zip(labels) {
        match (s >= threshold, y) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, false) => tn += 1,
            (false, true) => fne += 1,
        }
    }
    let n = scores.len();
    let accuracy = if n == 0 {
        0.0
    } else {
        (tp + tn) as f64 / n as f64
    };
    let precision = if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fne == 0 {
        0.0
    } else {
        tp as f64 / (tp + fne) as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    Metrics {
        accuracy,
        precision,
        recall,
        f1,
        auc: auc(scores, labels),
        n,
    }
}

/// Area under the ROC curve via the rank-sum (Mann–Whitney) formulation,
/// with midrank handling for tied scores. Returns 0.5 when either class is
/// empty (the uninformative default).
pub fn auc(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(
        scores.len(),
        labels.len(),
        "auc: {} scores vs {} labels",
        scores.len(),
        labels.len()
    );
    let n_pos = labels.iter().filter(|&&y| y).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .expect("NaN scores rejected by caller")
    });
    // Midranks over ties.
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = midrank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = ranks
        .iter()
        .zip(labels)
        .filter_map(|(&r, &y)| y.then_some(r))
        .sum();
    (rank_sum_pos - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0)
        / (n_pos as f64 * n_neg as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let m = binary_metrics(&[0.9, 0.8, 0.1, 0.2], &[true, true, false, false], 0.5);
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.auc, 1.0);
        assert_eq!(m.n, 4);
    }

    #[test]
    fn inverted_classifier() {
        let m = binary_metrics(&[0.1, 0.2, 0.9, 0.8], &[true, true, false, false], 0.5);
        assert_eq!(m.accuracy, 0.0);
        assert_eq!(m.auc, 0.0);
    }

    #[test]
    fn all_positive_predictions() {
        let m = binary_metrics(&[0.9, 0.9, 0.9], &[true, false, false], 0.5);
        assert!((m.precision - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.recall, 1.0);
        assert!((m.accuracy - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn f1_is_zero_when_nothing_predicted_positive() {
        let m = binary_metrics(&[0.1, 0.1], &[true, false], 0.5);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn auc_of_random_interleaving_is_half() {
        let scores = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
        let labels = [false, true, false, true, false, true, false, true];
        let a = auc(&scores, &labels);
        assert!((a - 0.625).abs() < 1e-12, "alternating gives 0.625, got {a}");
        // Truly balanced interleaving: pos/neg alternate with equal gaps.
        let labels2 = [true, false, true, false, true, false, true, false];
        let b = auc(&scores, &labels2);
        assert!(((a + b) / 2.0 - 0.5).abs() < 1e-12, "symmetry around 0.5");
    }

    #[test]
    fn auc_with_ties_uses_midranks() {
        // All scores identical → AUC must be exactly 0.5.
        let a = auc(&[0.5, 0.5, 0.5, 0.5], &[true, false, true, false]);
        assert!((a - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_degenerate_classes() {
        assert_eq!(auc(&[0.4, 0.6], &[true, true]), 0.5);
        assert_eq!(auc(&[], &[]), 0.5);
    }

    #[test]
    fn display_is_compact() {
        let m = binary_metrics(&[0.9, 0.1], &[true, false], 0.5);
        let s = m.to_string();
        assert!(s.contains("acc=100.00%"));
    }

    #[test]
    #[should_panic(expected = "NaN score")]
    fn rejects_nan_scores() {
        binary_metrics(&[f32::NAN], &[true], 0.5);
    }
}
