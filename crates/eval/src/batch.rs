//! Mini-batch training: per-epoch [`BatchPlan`]s and the batched model
//! interface, sharing the full-batch loop skeleton.
//!
//! A plan is built once per epoch from a [`MiniBatchConfig`] and carries
//! everything the model needs to run the epoch: which fraction of
//! hyperedges to sample (the model does the sampling, seeded from the
//! plan), the labelled pairs grouped into micro-batches, and how many
//! micro-batches accumulate into one optimizer step.
//!
//! The defining invariant: a plan built from [`MiniBatchConfig::exact`]
//! (ratio `1.0`, one in-order batch, accumulation `1`) makes
//! [`train_and_evaluate_minibatch`] reproduce [`crate::train_and_evaluate`]
//! **bitwise** — same loss trajectory, same parameters, at any thread
//! count. The exactness test suite pins this down.

use crate::trainer::training_loop;
use crate::{EvalReport, LedgerObserver, NoopObserver, TrainConfig, TrainObserver, TrustModel};
use ahntp_data::{plan_micro_batches, LabeledPair, MiniBatchConfig};

/// One epoch's worth of mini-batch work, handed to
/// [`BatchTrustModel::train_epoch_planned`].
#[derive(Debug, Clone)]
pub struct BatchPlan {
    /// Zero-based epoch this plan was built for.
    pub epoch: u64,
    /// Base seed hyperedge sampling must derive from (combined with
    /// `epoch`, so every epoch resamples deterministically).
    pub seed: u64,
    /// Fraction of hyperedges the model should sample, in `(0, 1]`.
    pub edge_ratio: f64,
    /// Micro-batches per optimizer step (≥ 1).
    pub accumulation: usize,
    /// Labelled pairs grouped into micro-batches; together they cover the
    /// epoch's training pairs exactly once.
    pub batches: Vec<Vec<LabeledPair>>,
}

impl BatchPlan {
    /// The identity plan: every hyperedge, every pair in one in-order
    /// batch, one optimizer step. Training through this plan is bitwise
    /// identical to full-batch training.
    pub fn full(pairs: &[LabeledPair]) -> BatchPlan {
        BatchPlan {
            epoch: 0,
            seed: 0,
            edge_ratio: 1.0,
            accumulation: 1,
            batches: vec![pairs.to_vec()],
        }
    }

    /// Builds the plan for one epoch from the mini-batch knobs: pairs are
    /// shuffled and chunked per `(cfg.seed, epoch)` (see
    /// [`plan_micro_batches`]); hyperedge sampling is deferred to the
    /// model, which derives it from `seed`/`epoch`/`edge_ratio`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`MiniBatchConfig::validate`].
    pub fn for_epoch(pairs: &[LabeledPair], cfg: &MiniBatchConfig, epoch: u64) -> BatchPlan {
        cfg.validate().expect("invalid mini-batch config");
        let batches = plan_micro_batches(pairs.len(), cfg.batch_size, cfg.seed, epoch)
            .into_iter()
            .map(|idx| idx.into_iter().map(|i| pairs[i]).collect())
            .collect();
        BatchPlan {
            epoch,
            seed: cfg.seed,
            edge_ratio: cfg.edge_ratio,
            accumulation: cfg.accumulation,
            batches,
        }
    }

    /// Number of micro-batches.
    pub fn n_batches(&self) -> usize {
        self.batches.len()
    }

    /// Total labelled pairs across all micro-batches.
    pub fn n_pairs(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }

    /// Whether this plan is on the bitwise-exact path: every hyperedge,
    /// a single micro-batch, no accumulation.
    pub fn is_exact(&self) -> bool {
        self.edge_ratio >= 1.0 && self.batches.len() <= 1 && self.accumulation == 1
    }
}

/// A [`TrustModel`] that can train through a [`BatchPlan`] — sampling
/// hyperedges, iterating micro-batches, and accumulating gradients as the
/// plan dictates. Returns the epoch loss (for a single-batch plan this is
/// the batch loss itself; otherwise the pair-weighted mean over batches).
pub trait BatchTrustModel: TrustModel {
    /// Runs one planned epoch, returning the epoch's training loss.
    fn train_epoch_planned(&mut self, plan: &BatchPlan) -> f32;
}

/// Mini-batch counterpart of [`crate::train_and_evaluate`]: same loop
/// skeleton (divergence checks, early stopping, telemetry, ledger), but
/// each epoch builds a fresh [`BatchPlan`] from `mb` and trains through
/// [`BatchTrustModel::train_epoch_planned`].
///
/// # Panics
///
/// As [`crate::train_and_evaluate`], plus if `mb` is invalid.
pub fn train_and_evaluate_minibatch(
    model: &mut dyn BatchTrustModel,
    train: &[LabeledPair],
    test: &[LabeledPair],
    cfg: &TrainConfig,
    mb: &MiniBatchConfig,
) -> EvalReport {
    if ahntp_telemetry::env_flag("AHNTP_TELEMETRY") {
        let mut observer = LedgerObserver::new();
        train_and_evaluate_minibatch_observed(model, train, test, cfg, mb, &mut observer)
    } else {
        train_and_evaluate_minibatch_observed(model, train, test, cfg, mb, &mut NoopObserver)
    }
}

/// [`train_and_evaluate_minibatch`] with explicit observer hooks.
///
/// # Panics
///
/// As [`train_and_evaluate_minibatch`].
pub fn train_and_evaluate_minibatch_observed(
    model: &mut dyn BatchTrustModel,
    train: &[LabeledPair],
    test: &[LabeledPair],
    cfg: &TrainConfig,
    mb: &MiniBatchConfig,
    observer: &mut dyn TrainObserver,
) -> EvalReport {
    mb.validate().expect("invalid mini-batch config");
    training_loop(
        model,
        |m, epoch| {
            ahntp_faultz::enforce("train.plan");
            let plan = BatchPlan::for_epoch(train, mb, epoch as u64);
            ahntp_telemetry::counter_add("batch.plans", 1);
            ahntp_telemetry::counter_add("batch.micro_batches", plan.n_batches() as u64);
            m.train_epoch_planned(&plan)
        },
        crate::TrainProgress::fresh(),
        |_, _| {},
        train,
        test,
        cfg,
        observer,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train_and_evaluate;

    fn pairs(n: usize) -> Vec<LabeledPair> {
        (0..n)
            .map(|i| LabeledPair {
                trustor: i,
                trustee: i + 1,
                label: i % 2 == 0,
            })
            .collect()
    }

    #[test]
    fn full_plan_is_the_identity() {
        let ps = pairs(5);
        let plan = BatchPlan::full(&ps);
        assert!(plan.is_exact());
        assert_eq!(plan.n_batches(), 1);
        assert_eq!(plan.batches[0], ps, "single batch, original order");
    }

    #[test]
    fn exact_config_plans_match_full() {
        let ps = pairs(7);
        let plan = BatchPlan::for_epoch(&ps, &MiniBatchConfig::exact(9), 3);
        assert!(plan.is_exact());
        assert_eq!(plan.batches, BatchPlan::full(&ps).batches);
        assert_eq!(plan.epoch, 3);
        assert_eq!(plan.seed, 9);
    }

    #[test]
    fn sampled_plans_partition_pairs_and_vary_by_epoch() {
        let ps = pairs(23);
        let cfg = MiniBatchConfig::sampled(0.5, 5, 2, 11);
        let plan = BatchPlan::for_epoch(&ps, &cfg, 0);
        assert!(!plan.is_exact());
        assert_eq!(plan.n_batches(), 5);
        assert_eq!(plan.n_pairs(), 23);
        let mut seen: Vec<usize> = plan
            .batches
            .iter()
            .flatten()
            .map(|p| p.trustor)
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..23).collect::<Vec<_>>(), "every pair exactly once");
        let other = BatchPlan::for_epoch(&ps, &cfg, 1);
        assert_ne!(plan.batches, other.batches, "epochs reshuffle");
        let again = BatchPlan::for_epoch(&ps, &cfg, 0);
        assert_eq!(plan.batches, again.batches, "same epoch → same plan");
    }

    #[test]
    #[should_panic(expected = "invalid mini-batch config")]
    fn invalid_config_rejected() {
        BatchPlan::for_epoch(&pairs(3), &MiniBatchConfig::sampled(0.0, 4, 1, 1), 0);
    }

    /// A fake batched model: the "loss" encodes the plan it received, so
    /// the test can check the loop built the right plans in the right
    /// order — and that the exact path feeds identical epochs.
    struct PlanProbe {
        losses: Vec<f32>,
        plans_seen: Vec<(u64, usize, usize)>, // (epoch, n_batches, n_pairs)
    }

    impl TrustModel for PlanProbe {
        fn name(&self) -> String {
            "plan-probe".into()
        }
        fn train_epoch(&mut self, _pairs: &[LabeledPair]) -> f32 {
            self.losses.remove(0)
        }
        fn predict(&self, pairs: &[LabeledPair]) -> Vec<f32> {
            vec![0.5; pairs.len()]
        }
    }

    impl BatchTrustModel for PlanProbe {
        fn train_epoch_planned(&mut self, plan: &BatchPlan) -> f32 {
            self.plans_seen
                .push((plan.epoch, plan.n_batches(), plan.n_pairs()));
            self.losses.remove(0)
        }
    }

    #[test]
    fn minibatch_loop_feeds_one_plan_per_epoch() {
        let tr = pairs(10);
        let te = pairs(4);
        let mut m = PlanProbe {
            losses: (0..4).map(|i| 1.0 / (i + 1) as f32).collect(),
            plans_seen: Vec::new(),
        };
        let cfg = TrainConfig {
            epochs: 4,
            patience: 0,
            ..TrainConfig::default()
        };
        let report = train_and_evaluate_minibatch(
            &mut m,
            &tr,
            &te,
            &cfg,
            &MiniBatchConfig::sampled(0.5, 3, 2, 7),
        );
        assert_eq!(report.epochs_run, 4);
        assert_eq!(
            m.plans_seen,
            vec![(0, 4, 10), (1, 4, 10), (2, 4, 10), (3, 4, 10)],
            "one plan per epoch, epochs in order, pairs always covered"
        );
    }

    #[test]
    fn exact_minibatch_report_matches_full_batch() {
        // Same deterministic fake loss sequence through both entry points:
        // the shared loop must produce byte-identical reports.
        let tr = pairs(6);
        let te = pairs(4);
        let cfg = TrainConfig {
            epochs: 5,
            patience: 0,
            ..TrainConfig::default()
        };
        let losses: Vec<f32> = (0..5).map(|i| 1.0 / (i + 2) as f32).collect();
        let mut full = PlanProbe {
            losses: losses.clone(),
            plans_seen: Vec::new(),
        };
        let full_report = train_and_evaluate(&mut full, &tr, &te, &cfg);
        let mut mini = PlanProbe {
            losses,
            plans_seen: Vec::new(),
        };
        let mini_report = train_and_evaluate_minibatch(
            &mut mini,
            &tr,
            &te,
            &cfg,
            &MiniBatchConfig::exact(0),
        );
        assert_eq!(full_report.epoch_losses, mini_report.epoch_losses);
        assert_eq!(full_report.final_loss, mini_report.final_loss);
        assert!(mini.plans_seen.iter().all(|&(_, b, n)| b == 1 && n == 6));
    }
}
