//! The model interface and the shared training/evaluation loop.

use crate::{binary_metrics, Metrics};
use ahntp_data::LabeledPair;

/// A trust-prediction model: anything that can fit labelled user pairs and
/// score new ones. AHNTP, its ablation variants and all eight baselines
/// implement this, so every experiment runs through one code path.
pub trait TrustModel {
    /// Model name as it appears in result tables.
    fn name(&self) -> String;

    /// Runs one optimization epoch over the training pairs, returning the
    /// epoch's training loss.
    fn train_epoch(&mut self, pairs: &[LabeledPair]) -> f32;

    /// Scores pairs with trust probabilities in `[0, 1]`.
    fn predict(&self, pairs: &[LabeledPair]) -> Vec<f32>;

    /// Number of trainable scalars (for reporting).
    fn n_parameters(&self) -> usize {
        0
    }
}

/// Training-loop configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Maximum epochs.
    pub epochs: usize,
    /// Stop early when the training loss fails to improve by at least
    /// `min_improvement` for `patience` consecutive epochs (0 disables).
    pub patience: usize,
    /// Minimum relative loss improvement that resets patience.
    pub min_improvement: f32,
    /// Decision threshold applied to predicted probabilities.
    pub threshold: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 60,
            patience: 10,
            min_improvement: 1e-4,
            threshold: 0.5,
        }
    }
}

/// Result of one train-and-evaluate run.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Model name.
    pub model: String,
    /// Test-set metrics.
    pub test: Metrics,
    /// Training-set metrics (overfitting diagnostic).
    pub train: Metrics,
    /// Final epoch training loss.
    pub final_loss: f32,
    /// Epochs actually run (≤ `TrainConfig::epochs` with early stopping).
    pub epochs_run: usize,
}

/// Trains `model` on `train` and evaluates on both sets.
///
/// # Panics
///
/// Panics if the model produces NaN losses (divergence is a bug, not a
/// result) or an empty prediction vector.
pub fn train_and_evaluate(
    model: &mut dyn TrustModel,
    train: &[LabeledPair],
    test: &[LabeledPair],
    cfg: &TrainConfig,
) -> EvalReport {
    assert!(!train.is_empty() && !test.is_empty(), "empty split");
    let mut best_loss = f32::INFINITY;
    let mut stale = 0usize;
    let mut final_loss = f32::NAN;
    let mut epochs_run = 0usize;
    for _ in 0..cfg.epochs {
        let loss = model.train_epoch(train);
        assert!(
            loss.is_finite(),
            "{}: training diverged (loss = {loss})",
            model.name()
        );
        epochs_run += 1;
        final_loss = loss;
        if loss < best_loss * (1.0 - cfg.min_improvement) {
            best_loss = loss;
            stale = 0;
        } else {
            stale += 1;
            if cfg.patience > 0 && stale >= cfg.patience {
                break;
            }
        }
    }
    let eval = |pairs: &[LabeledPair]| -> Metrics {
        let scores = model.predict(pairs);
        assert_eq!(
            scores.len(),
            pairs.len(),
            "{}: prediction count mismatch",
            model.name()
        );
        let labels: Vec<bool> = pairs.iter().map(|p| p.label).collect();
        binary_metrics(&scores, &labels, cfg.threshold)
    };
    EvalReport {
        model: model.name(),
        test: eval(test),
        train: eval(train),
        final_loss,
        epochs_run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake model that memorises label frequencies per trustor — enough
    /// to exercise the loop mechanics deterministically.
    struct Majority {
        bias: f32,
        losses: Vec<f32>,
    }

    impl TrustModel for Majority {
        fn name(&self) -> String {
            "majority".into()
        }
        fn train_epoch(&mut self, pairs: &[LabeledPair]) -> f32 {
            let pos = pairs.iter().filter(|p| p.label).count() as f32;
            self.bias = pos / pairs.len() as f32;
            self.losses.remove(0)
        }
        fn predict(&self, pairs: &[LabeledPair]) -> Vec<f32> {
            pairs.iter().map(|_| self.bias).collect()
        }
    }

    fn pairs(labels: &[bool]) -> Vec<LabeledPair> {
        labels
            .iter()
            .enumerate()
            .map(|(i, &l)| LabeledPair {
                trustor: i,
                trustee: i + 1,
                label: l,
            })
            .collect()
    }

    #[test]
    fn early_stopping_kicks_in() {
        let mut m = Majority {
            bias: 0.0,
            losses: vec![1.0; 50],
        };
        let tr = pairs(&[true, false, false]);
        let te = pairs(&[true, false]);
        let report = train_and_evaluate(
            &mut m,
            &tr,
            &te,
            &TrainConfig {
                epochs: 50,
                patience: 3,
                ..TrainConfig::default()
            },
        );
        assert!(report.epochs_run <= 5, "flat loss must stop early");
    }

    #[test]
    fn improving_loss_runs_to_completion() {
        let mut m = Majority {
            bias: 0.0,
            losses: (0..20).map(|i| 1.0 / (i + 1) as f32).collect(),
        };
        let tr = pairs(&[true, false, false]);
        let te = pairs(&[true, false]);
        let report = train_and_evaluate(
            &mut m,
            &tr,
            &te,
            &TrainConfig {
                epochs: 20,
                patience: 3,
                ..TrainConfig::default()
            },
        );
        assert_eq!(report.epochs_run, 20);
        assert!((report.final_loss - 1.0 / 20.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "training diverged")]
    fn nan_loss_is_a_bug() {
        let mut m = Majority {
            bias: 0.0,
            losses: vec![f32::NAN],
        };
        let tr = pairs(&[true, false]);
        let te = pairs(&[true, false]);
        train_and_evaluate(&mut m, &tr, &te, &TrainConfig::default());
    }

    #[test]
    #[should_panic(expected = "empty split")]
    fn empty_split_rejected() {
        let mut m = Majority {
            bias: 0.0,
            losses: vec![1.0],
        };
        train_and_evaluate(&mut m, &[], &[], &TrainConfig::default());
    }
}
