//! The model interface and the shared training/evaluation loop.

use std::time::Instant;

use crate::checkpoint::TrainProgress;
use crate::{binary_metrics, Metrics};
use ahntp_data::LabeledPair;
use ahntp_telemetry::json::Json;
use ahntp_telemetry::RunLedger;

/// A trust-prediction model: anything that can fit labelled user pairs and
/// score new ones. AHNTP, its ablation variants and all eight baselines
/// implement this, so every experiment runs through one code path.
pub trait TrustModel {
    /// Model name as it appears in result tables.
    fn name(&self) -> String;

    /// Runs one optimization epoch over the training pairs, returning the
    /// epoch's training loss.
    fn train_epoch(&mut self, pairs: &[LabeledPair]) -> f32;

    /// Scores pairs with trust probabilities in `[0, 1]`.
    fn predict(&self, pairs: &[LabeledPair]) -> Vec<f32>;

    /// Number of trainable scalars (for reporting).
    fn n_parameters(&self) -> usize {
        0
    }
}

/// Training-loop configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Maximum epochs.
    pub epochs: usize,
    /// Stop early when the training loss fails to improve by at least
    /// `min_improvement` for `patience` consecutive epochs (0 disables).
    pub patience: usize,
    /// Minimum relative loss improvement that resets patience.
    pub min_improvement: f32,
    /// Decision threshold applied to predicted probabilities.
    pub threshold: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 60,
            patience: 10,
            min_improvement: 1e-4,
            threshold: 0.5,
        }
    }
}

/// Result of one train-and-evaluate run.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Model name.
    pub model: String,
    /// Test-set metrics.
    pub test: Metrics,
    /// Training-set metrics (overfitting diagnostic).
    pub train: Metrics,
    /// Final epoch training loss.
    pub final_loss: f32,
    /// Lowest training loss seen across all epochs.
    pub best_loss: f32,
    /// Training loss of every epoch actually run, in order.
    pub epoch_losses: Vec<f32>,
    /// Epochs actually run (≤ `TrainConfig::epochs` with early stopping).
    pub epochs_run: usize,
}

/// Per-epoch measurements handed to [`TrainObserver::on_epoch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Training loss of this epoch.
    pub loss: f32,
    /// Wall time the epoch took, in microseconds.
    pub wall_us: u64,
    /// Global gradient L2 norm of the epoch's last optimizer step, when the
    /// model's optimizer published one (`train.grad_norm` gauge). `None`
    /// for models that don't run a gradient optimizer.
    pub grad_norm: Option<f64>,
    /// Per-kernel *self*-time attribution of this epoch's wall-clock,
    /// present when profiling is on (`AHNTP_PROFILE=1` or
    /// `ahntp_telemetry::set_profiling`). Self times telescope, so
    /// `profile.total_us() <= wall_us` (up to µs truncation).
    pub profile: Option<ahntp_telemetry::KernelProfile>,
}

/// Observer hooks for the training loop. All methods default to no-ops, so
/// implementors override only what they need and existing call sites are
/// unaffected.
pub trait TrainObserver {
    /// Called once before the first epoch.
    fn on_start(&mut self, _model: &str, _cfg: &TrainConfig) {}
    /// Called after every completed epoch, in epoch order.
    fn on_epoch(&mut self, _stats: &EpochStats) {}
    /// Called once after evaluation, with the final report.
    fn on_finish(&mut self, _report: &EvalReport) {}
}

/// The default observer: does nothing.
pub struct NoopObserver;

impl TrainObserver for NoopObserver {}

/// An observer that serializes the run to a JSONL [`RunLedger`].
///
/// Records `run_start` (model + config), one `epoch` record per epoch, and
/// `run_end` with the final metrics plus a metrics-registry snapshot. Used
/// automatically by [`train_and_evaluate`] when `AHNTP_TELEMETRY=1`.
pub struct LedgerObserver {
    dir: Option<std::path::PathBuf>,
    ledger: Option<RunLedger>,
}

impl LedgerObserver {
    /// Writes to the default ledger directory (`target/telemetry` or
    /// `AHNTP_TELEMETRY_DIR`).
    pub fn new() -> LedgerObserver {
        LedgerObserver {
            dir: None,
            ledger: None,
        }
    }

    /// Writes to an explicit directory — the env-independent entry point
    /// tests should use.
    pub fn in_dir(dir: impl Into<std::path::PathBuf>) -> LedgerObserver {
        LedgerObserver {
            dir: Some(dir.into()),
            ledger: None,
        }
    }

    /// Path of the ledger file, once `on_start` has opened it.
    pub fn path(&self) -> Option<&std::path::Path> {
        self.ledger.as_ref().map(RunLedger::path)
    }

    fn run_name(model: &str) -> String {
        // Distinct per run within and across processes without needing a
        // clock: process id + a process-wide counter.
        use std::sync::atomic::{AtomicU64, Ordering};
        static RUN_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
        let slug: String = model
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '-' })
            .collect();
        format!("{slug}-p{}-r{seq}", std::process::id())
    }
}

impl Default for LedgerObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl TrainObserver for LedgerObserver {
    fn on_start(&mut self, model: &str, cfg: &TrainConfig) {
        let config = Json::obj([
            ("model", Json::from(model)),
            ("epochs", Json::from(cfg.epochs)),
            ("patience", Json::from(cfg.patience)),
            ("min_improvement", Json::from(f64::from(cfg.min_improvement))),
            ("threshold", Json::from(f64::from(cfg.threshold))),
        ]);
        let run = Self::run_name(model);
        self.ledger = match &self.dir {
            Some(dir) => RunLedger::create_in(dir, &run, config),
            None => RunLedger::create(&run, config),
        };
    }

    fn on_epoch(&mut self, stats: &EpochStats) {
        if let Some(ledger) = &mut self.ledger {
            ledger.epoch_profiled(
                stats.epoch,
                f64::from(stats.loss),
                stats.wall_us,
                stats.grad_norm.unwrap_or(f64::NAN), // serialized as null
                stats.profile.as_ref().map(ahntp_telemetry::KernelProfile::to_json),
            );
        }
    }

    fn on_finish(&mut self, report: &EvalReport) {
        if let Some(ledger) = self.ledger.take() {
            ledger.finish([
                ("final_loss", Json::from(f64::from(report.final_loss))),
                ("best_loss", Json::from(f64::from(report.best_loss))),
                ("epochs_run", Json::from(report.epochs_run)),
                ("test_auc", Json::from(report.test.auc)),
                ("test_f1", Json::from(report.test.f1)),
                ("train_auc", Json::from(report.train.auc)),
            ]);
        }
    }
}

/// Trains `model` on `train` and evaluates on both sets.
///
/// With `AHNTP_TELEMETRY=1` in the environment, the run is automatically
/// serialized to a JSONL ledger (see [`LedgerObserver`]); otherwise this is
/// [`train_and_evaluate_observed`] with a no-op observer.
///
/// # Panics
///
/// Panics if the model produces NaN losses (divergence is a bug, not a
/// result) or an empty prediction vector. When finite checks are active
/// (`AHNTP_CHECK_FINITE=1` or `ahntp_telemetry::set_finite_checks`), the
/// divergence panic names the op whose output first went non-finite.
pub fn train_and_evaluate(
    model: &mut dyn TrustModel,
    train: &[LabeledPair],
    test: &[LabeledPair],
    cfg: &TrainConfig,
) -> EvalReport {
    if ahntp_telemetry::env_flag("AHNTP_TELEMETRY") {
        let mut observer = LedgerObserver::new();
        train_and_evaluate_observed(model, train, test, cfg, &mut observer)
    } else {
        train_and_evaluate_observed(model, train, test, cfg, &mut NoopObserver)
    }
}

/// [`train_and_evaluate`] with explicit observer hooks: `on_start`, one
/// `on_epoch` per completed epoch (in order), then `on_finish` with the
/// final report.
///
/// # Panics
///
/// As [`train_and_evaluate`].
pub fn train_and_evaluate_observed(
    model: &mut dyn TrustModel,
    train: &[LabeledPair],
    test: &[LabeledPair],
    cfg: &TrainConfig,
    observer: &mut dyn TrainObserver,
) -> EvalReport {
    training_loop(
        model,
        |m, _epoch| m.train_epoch(train),
        TrainProgress::fresh(),
        |_, _| {},
        train,
        test,
        cfg,
        observer,
    )
}

/// The epoch loop shared by full-batch and mini-batch training: runs
/// `run_epoch` once per epoch with divergence checks, early stopping,
/// telemetry, and observer callbacks, then evaluates on both splits.
///
/// `run_epoch` decides what an "epoch" means — the full-batch path calls
/// `TrustModel::train_epoch`, the mini-batch path builds a per-epoch
/// `BatchPlan` and calls `BatchTrustModel::train_epoch_planned`. Everything
/// around that call (the loop skeleton) is byte-for-byte shared, which is
/// what keeps the two trajectories comparable.
///
/// Crash-safe resume rides on the same skeleton: `init` seeds the ledger
/// (a fresh [`TrainProgress`] for normal runs, a restored one when
/// resuming — the loop then starts at `init.epochs_done`), and
/// `after_epoch` observes every completed epoch's ledger *after* the
/// early-stopping decision, which is where the resumable entry points
/// write checkpoints. Each epoch also passes the `train.epoch` failpoint,
/// so chaos tests can kill training at an exact epoch.
#[allow(clippy::too_many_arguments)] // one internal call-site per entry point
pub(crate) fn training_loop<M: TrustModel + ?Sized>(
    model: &mut M,
    mut run_epoch: impl FnMut(&mut M, usize) -> f32,
    init: TrainProgress,
    mut after_epoch: impl FnMut(&M, &TrainProgress),
    train: &[LabeledPair],
    test: &[LabeledPair],
    cfg: &TrainConfig,
    observer: &mut dyn TrainObserver,
) -> EvalReport {
    assert!(!train.is_empty() && !test.is_empty(), "empty split");
    assert_eq!(
        init.epochs_done,
        init.epoch_losses.len(),
        "inconsistent resume ledger"
    );
    let name = model.name();
    ahntp_telemetry::clear_nonfinite();
    observer.on_start(&name, cfg);
    let mut best_loss = init.best_loss;
    let mut stale = init.stale;
    let mut final_loss = init.epoch_losses.last().copied().unwrap_or(f32::NAN);
    let mut epoch_losses = init.epoch_losses;
    let mut epochs_run = init.epochs_done;
    for epoch in init.epochs_done..cfg.epochs {
        // A checkpoint taken at the early-stopping epoch restores to a run
        // that has already stopped; don't train further.
        if cfg.patience > 0 && stale >= cfg.patience {
            break;
        }
        ahntp_faultz::enforce("train.epoch");
        // Snapshot the kernel accumulators around the epoch so its
        // wall-clock can be attributed per kernel (see `EpochStats`).
        let profile_before = ahntp_telemetry::profiling_enabled()
            .then(ahntp_telemetry::profile_snapshot);
        let started = Instant::now();
        let loss = run_epoch(model, epoch);
        let wall_us = started.elapsed().as_micros() as u64;
        let profile = profile_before
            .map(|before| ahntp_telemetry::profile_snapshot().delta_since(&before));
        if !loss.is_finite() {
            let provenance = ahntp_telemetry::first_nonfinite()
                .map(|e| {
                    format!(
                        "; first non-finite output from op `{}` at tape step {}",
                        e.op, e.step
                    )
                })
                .unwrap_or_default();
            panic!(
                "{name}: training diverged (loss = {loss}) at epoch {epoch}{provenance}"
            );
        }
        epochs_run += 1;
        final_loss = loss;
        epoch_losses.push(loss);
        ahntp_telemetry::counter_add("train.epochs", 1);
        ahntp_telemetry::histogram_record("train.epoch.us", wall_us);
        let stats = EpochStats {
            epoch,
            loss,
            wall_us,
            grad_norm: ahntp_telemetry::gauge_get("train.grad_norm"),
            profile,
        };
        ahntp_telemetry::debug!(
            "train",
            "{name} epoch {epoch}: loss {loss:.6}, {wall_us}us"
        );
        observer.on_epoch(&stats);
        let mut stop = false;
        if loss < best_loss * (1.0 - cfg.min_improvement) {
            best_loss = loss;
            stale = 0;
        } else {
            stale += 1;
            if cfg.patience > 0 && stale >= cfg.patience {
                ahntp_telemetry::debug!(
                    "train",
                    "{name}: early stop after epoch {epoch} (patience {})",
                    cfg.patience
                );
                stop = true;
            }
        }
        // The checkpoint hook sees the ledger *after* the stopping
        // decision, so a resume from this epoch replays the same decision.
        after_epoch(
            model,
            &TrainProgress {
                epochs_done: epoch + 1,
                best_loss,
                stale,
                epoch_losses: epoch_losses.clone(),
            },
        );
        if stop {
            break;
        }
    }
    let eval = |pairs: &[LabeledPair]| -> Metrics {
        let scores = model.predict(pairs);
        assert_eq!(
            scores.len(),
            pairs.len(),
            "{name}: prediction count mismatch"
        );
        let labels: Vec<bool> = pairs.iter().map(|p| p.label).collect();
        binary_metrics(&scores, &labels, cfg.threshold)
    };
    let test = eval(test);
    let train = eval(train);
    let report = EvalReport {
        model: name,
        test,
        train,
        final_loss,
        best_loss: best_loss.min(final_loss),
        epoch_losses,
        epochs_run,
    };
    observer.on_finish(&report);
    // With AHNTP_TRACE_OUT set, a finished training run leaves a readable
    // Chrome trace even if the process keeps going (no-op otherwise).
    ahntp_telemetry::flush_trace_to_env();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake model that memorises label frequencies per trustor — enough
    /// to exercise the loop mechanics deterministically.
    struct Majority {
        bias: f32,
        losses: Vec<f32>,
    }

    impl TrustModel for Majority {
        fn name(&self) -> String {
            "majority".into()
        }
        fn train_epoch(&mut self, pairs: &[LabeledPair]) -> f32 {
            let pos = pairs.iter().filter(|p| p.label).count() as f32;
            self.bias = pos / pairs.len() as f32;
            self.losses.remove(0)
        }
        fn predict(&self, pairs: &[LabeledPair]) -> Vec<f32> {
            pairs.iter().map(|_| self.bias).collect()
        }
    }

    fn pairs(labels: &[bool]) -> Vec<LabeledPair> {
        labels
            .iter()
            .enumerate()
            .map(|(i, &l)| LabeledPair {
                trustor: i,
                trustee: i + 1,
                label: l,
            })
            .collect()
    }

    #[test]
    fn early_stopping_kicks_in() {
        let mut m = Majority {
            bias: 0.0,
            losses: vec![1.0; 50],
        };
        let tr = pairs(&[true, false, false]);
        let te = pairs(&[true, false]);
        let report = train_and_evaluate(
            &mut m,
            &tr,
            &te,
            &TrainConfig {
                epochs: 50,
                patience: 3,
                ..TrainConfig::default()
            },
        );
        assert!(report.epochs_run <= 5, "flat loss must stop early");
    }

    #[test]
    fn improving_loss_runs_to_completion() {
        let mut m = Majority {
            bias: 0.0,
            losses: (0..20).map(|i| 1.0 / (i + 1) as f32).collect(),
        };
        let tr = pairs(&[true, false, false]);
        let te = pairs(&[true, false]);
        let report = train_and_evaluate(
            &mut m,
            &tr,
            &te,
            &TrainConfig {
                epochs: 20,
                patience: 3,
                ..TrainConfig::default()
            },
        );
        assert_eq!(report.epochs_run, 20);
        assert!((report.final_loss - 1.0 / 20.0).abs() < 1e-6);
        assert_eq!(report.best_loss, report.final_loss);
        assert_eq!(report.epoch_losses.len(), 20);
        assert_eq!(report.epoch_losses[0], 1.0);
    }

    #[test]
    fn best_loss_survives_a_late_regression() {
        // Loss dips to 0.2 then regresses; best_loss must keep the dip.
        let mut m = Majority {
            bias: 0.0,
            losses: vec![1.0, 0.2, 0.9, 0.8],
        };
        let tr = pairs(&[true, false]);
        let te = pairs(&[true, false]);
        let report = train_and_evaluate(
            &mut m,
            &tr,
            &te,
            &TrainConfig {
                epochs: 4,
                patience: 0,
                ..TrainConfig::default()
            },
        );
        assert_eq!(report.best_loss, 0.2);
        assert_eq!(report.final_loss, 0.8);
        assert_eq!(report.epoch_losses, vec![1.0, 0.2, 0.9, 0.8]);
    }

    #[test]
    #[should_panic(expected = "training diverged")]
    fn nan_loss_is_a_bug() {
        let mut m = Majority {
            bias: 0.0,
            losses: vec![f32::NAN],
        };
        let tr = pairs(&[true, false]);
        let te = pairs(&[true, false]);
        train_and_evaluate(&mut m, &tr, &te, &TrainConfig::default());
    }

    #[test]
    fn divergence_panic_names_epoch_and_recorded_op() {
        // Simulate what the autograd tape does under AHNTP_CHECK_FINITE:
        // record the first non-finite op, then diverge two epochs later.
        ahntp_telemetry::clear_nonfinite();
        struct Diverging {
            epoch: usize,
        }
        impl TrustModel for Diverging {
            fn name(&self) -> String {
                "diverging".into()
            }
            fn train_epoch(&mut self, _pairs: &[LabeledPair]) -> f32 {
                self.epoch += 1;
                if self.epoch == 3 {
                    ahntp_telemetry::record_nonfinite("exp", 42);
                    f32::NAN
                } else {
                    1.0 / self.epoch as f32
                }
            }
            fn predict(&self, pairs: &[LabeledPair]) -> Vec<f32> {
                vec![0.5; pairs.len()]
            }
        }
        let tr = pairs(&[true, false]);
        let te = pairs(&[true, false]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            train_and_evaluate(&mut Diverging { epoch: 0 }, &tr, &te, &TrainConfig::default());
        }));
        let err = result.expect_err("NaN loss must panic");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is a String");
        assert!(msg.contains("training diverged"), "got: {msg}");
        assert!(msg.contains("at epoch 2"), "got: {msg}");
        assert!(msg.contains("op `exp` at tape step 42"), "got: {msg}");
        ahntp_telemetry::clear_nonfinite();
    }

    #[test]
    fn observer_sees_every_epoch_in_order() {
        #[derive(Default)]
        struct Recorder {
            started: Vec<String>,
            epochs: Vec<usize>,
            losses: Vec<f32>,
            finished: usize,
        }
        impl TrainObserver for Recorder {
            fn on_start(&mut self, model: &str, _cfg: &TrainConfig) {
                self.started.push(model.to_string());
            }
            fn on_epoch(&mut self, stats: &EpochStats) {
                assert_eq!(self.started.len(), 1, "on_start precedes epochs");
                assert_eq!(self.finished, 0, "on_finish comes last");
                self.epochs.push(stats.epoch);
                self.losses.push(stats.loss);
            }
            fn on_finish(&mut self, report: &EvalReport) {
                self.finished += 1;
                assert_eq!(self.epochs.len(), report.epochs_run);
            }
        }
        let mut m = Majority {
            bias: 0.0,
            losses: (0..10).map(|i| 1.0 / (i + 1) as f32).collect(),
        };
        let tr = pairs(&[true, false, false]);
        let te = pairs(&[true, false]);
        let mut rec = Recorder::default();
        let report = train_and_evaluate_observed(
            &mut m,
            &tr,
            &te,
            &TrainConfig {
                epochs: 10,
                patience: 0,
                ..TrainConfig::default()
            },
            &mut rec,
        );
        assert_eq!(rec.started, vec!["majority".to_string()]);
        assert_eq!(rec.epochs, (0..10).collect::<Vec<_>>());
        assert_eq!(rec.losses, report.epoch_losses);
        assert_eq!(rec.finished, 1);
        assert_eq!(report.epochs_run, 10);
    }

    #[test]
    fn ledger_observer_writes_one_record_per_epoch() {
        ahntp_telemetry::set_enabled(true);
        let dir = std::env::temp_dir().join(format!(
            "ahntp-eval-ledger-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut m = Majority {
            bias: 0.0,
            losses: (0..5).map(|i| 1.0 / (i + 1) as f32).collect(),
        };
        let tr = pairs(&[true, false, false]);
        let te = pairs(&[true, false]);
        let mut obs = LedgerObserver::in_dir(&dir);
        let report = train_and_evaluate_observed(
            &mut m,
            &tr,
            &te,
            &TrainConfig {
                epochs: 5,
                patience: 0,
                ..TrainConfig::default()
            },
            &mut obs,
        );
        assert_eq!(report.epochs_run, 5);
        // on_finish consumed the ledger; find the file in the directory.
        let entries: Vec<_> = std::fs::read_dir(&dir)
            .expect("ledger dir exists")
            .map(|e| e.expect("dir entry").path())
            .collect();
        assert_eq!(entries.len(), 1, "one run → one ledger file");
        let text = std::fs::read_to_string(&entries[0]).expect("readable ledger");
        let records: Vec<Json> = text
            .lines()
            .map(|l| ahntp_telemetry::json::parse(l).expect("valid JSONL"))
            .collect();
        assert_eq!(records.len(), 7, "run_start + 5 epochs + run_end");
        let epoch_records: Vec<&Json> = records
            .iter()
            .filter(|r| r.get("kind").and_then(Json::as_str) == Some("epoch"))
            .collect();
        assert_eq!(epoch_records.len(), 5);
        for (i, r) in epoch_records.iter().enumerate() {
            assert_eq!(r.get("epoch").and_then(Json::as_f64), Some(i as f64));
            assert!(r.get("loss").and_then(Json::as_f64).is_some());
            assert!(r.get("wall_us").and_then(Json::as_f64).is_some());
        }
        let end = records.last().expect("non-empty");
        assert_eq!(end.get("kind").and_then(Json::as_str), Some("run_end"));
        assert!(end.get("test_auc").and_then(Json::as_f64).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "empty split")]
    fn empty_split_rejected() {
        let mut m = Majority {
            bias: 0.0,
            losses: vec![1.0],
        };
        train_and_evaluate(&mut m, &[], &[], &TrainConfig::default());
    }
}
