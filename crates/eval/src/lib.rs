//! Evaluation substrate: binary-classification metrics (§V-A-3 uses
//! accuracy and F1), the [`TrustModel`] interface every method in the
//! evaluation implements, and the training/evaluation loop shared by all
//! experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attack;
mod batch;
mod checkpoint;
mod metrics;
mod trainer;

pub use attack::{
    evaluate_under_attack, score_inflation, AttackReport, DefendedInflation, DefendedScore,
    InflationMetrics,
};
pub use batch::{
    train_and_evaluate_minibatch, train_and_evaluate_minibatch_observed, BatchPlan,
    BatchTrustModel,
};
pub use checkpoint::{
    read_checkpoint, train_and_evaluate_minibatch_resumable,
    train_and_evaluate_minibatch_resumable_observed, train_and_evaluate_resumable,
    train_and_evaluate_resumable_observed, write_checkpoint_atomic, CheckpointConfig,
    ResumableBatchModel, ResumableModel, TrainProgress,
};
pub use metrics::{auc, binary_metrics, Metrics};
pub use trainer::{
    train_and_evaluate, train_and_evaluate_observed, EpochStats, EvalReport, LedgerObserver,
    NoopObserver, TrainConfig, TrainObserver, TrustModel,
};
