//! Crash-safe training: atomic checkpoint I/O and resumable entry points.
//!
//! The training loop is deterministic given the model's parameters, the
//! optimizer's state, and the epoch index (mini-batch plans are derived
//! statelessly from `(seed, epoch)`), so checkpointing *after each epoch*
//! and replaying from the last checkpoint reproduces an uninterrupted run
//! **bitwise** — same loss trajectory, same final parameters. This module
//! supplies the pieces the loop itself cannot know about:
//!
//! * [`TrainProgress`] — the loop-ledger slice of a checkpoint (epochs
//!   completed, best loss, patience clock, per-epoch losses).
//! * [`ResumableModel`] — a [`TrustModel`] that can serialise and restore
//!   its full training state (parameters + optimizer moments + sampler
//!   seed) as opaque bytes. `ahntp::Ahntp` implements this with the
//!   `AHNTP002` frame from `ahntp-nn`; the eval crate never sees the
//!   format.
//! * [`write_checkpoint_atomic`] / [`read_checkpoint`] — write-temp,
//!   fsync, rename. A crash at any instant leaves either the old
//!   checkpoint or the new one on disk, never a torn file (torn *temp*
//!   files are ignored on resume, and the CRC seal inside the frame
//!   catches anything that still slips through).
//! * [`train_and_evaluate_resumable`] /
//!   [`train_and_evaluate_minibatch_resumable`] — the resumable
//!   counterparts of the standard entry points, driven by a
//!   [`CheckpointConfig`].
//!
//! Fault injection: the I/O helpers carry `ckpt.io.write`,
//! `ckpt.io.fsync`, `ckpt.io.rename`, and `ckpt.io.read` failpoints
//! (crate `ahntp-faultz`), and the epoch loop itself carries
//! `train.epoch` — arming it with `nth(k)` kills training at epoch `k`,
//! which is how the crash-resume exactness suite simulates crashes.

use std::io::Write;
use std::path::{Path, PathBuf};

use crate::trainer::training_loop;
use crate::{
    BatchPlan, BatchTrustModel, EvalReport, LedgerObserver, NoopObserver, TrainConfig,
    TrainObserver, TrustModel,
};
use ahntp_data::{LabeledPair, MiniBatchConfig};
use ahntp_faultz::failpoint;

/// The training-loop ledger at a checkpoint boundary: everything the loop
/// needs to continue *besides* the model/optimizer state (which travels as
/// opaque bytes through [`ResumableModel`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainProgress {
    /// Epochs fully completed.
    pub epochs_done: usize,
    /// Best epoch loss seen so far (`f32::INFINITY` before epoch 1).
    pub best_loss: f32,
    /// Consecutive epochs without sufficient improvement (patience clock).
    pub stale: usize,
    /// Training loss of every completed epoch, in order.
    pub epoch_losses: Vec<f32>,
}

impl TrainProgress {
    /// Progress of a run that has not started: zero epochs, infinite best
    /// loss, empty trajectory.
    pub fn fresh() -> TrainProgress {
        TrainProgress {
            epochs_done: 0,
            best_loss: f32::INFINITY,
            stale: 0,
            epoch_losses: Vec::new(),
        }
    }
}

impl Default for TrainProgress {
    fn default() -> Self {
        Self::fresh()
    }
}

/// A [`TrustModel`] whose complete training state — parameters, optimizer
/// moments, sampler seed — can round-trip through bytes, making training
/// crash-safe and resumable.
///
/// The encoding is the model's business (AHNTP uses the CRC-sealed
/// `AHNTP002` frame from `ahntp-nn`); the contract is behavioural:
/// restoring the bytes into an identically-configured model and re-running
/// epochs `progress.epochs_done..` must reproduce an uninterrupted run
/// bitwise.
pub trait ResumableModel: TrustModel {
    /// Serialises the full training state, embedding the loop ledger
    /// `progress` so a resumed run continues the same trajectory.
    fn encode_train_state(&self, progress: &TrainProgress) -> Vec<u8>;

    /// Restores a state produced by [`ResumableModel::encode_train_state`]
    /// into this model, returning the embedded loop ledger.
    ///
    /// # Errors
    ///
    /// Returns a description when the bytes are corrupt, were written by a
    /// differently-configured model, or carry a different sampler seed —
    /// resuming from any of those would silently change the trajectory.
    fn decode_train_state(&mut self, bytes: &[u8]) -> Result<TrainProgress, String>;
}

/// A model that is both mini-batch-capable and resumable. Blanket-implemented;
/// exists so `dyn` call sites can name the combination.
pub trait ResumableBatchModel: BatchTrustModel + ResumableModel {}

impl<T: BatchTrustModel + ResumableModel + ?Sized> ResumableBatchModel for T {}

/// Where and how often to checkpoint, and whether to resume.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Checkpoint file path. Written atomically (temp + fsync + rename),
    /// so the file is always either absent, the previous checkpoint, or
    /// the new one — never torn.
    pub path: PathBuf,
    /// Checkpoint after every `every`-th completed epoch (and always after
    /// the epoch that triggers early stopping). `1` = every epoch, the
    /// crash-safe default; larger values trade redone epochs on resume for
    /// less I/O. Values of 0 are treated as 1.
    pub every: usize,
    /// When set, restore this file before training and continue from its
    /// embedded progress. A missing file starts fresh (the normal state of
    /// a first run under a crash-restart supervisor); an unreadable or
    /// corrupt file panics rather than silently retraining from scratch.
    pub resume_from: Option<PathBuf>,
}

impl CheckpointConfig {
    /// Checkpoints every epoch to `path`, never resuming.
    pub fn new(path: impl Into<PathBuf>) -> CheckpointConfig {
        CheckpointConfig {
            path: path.into(),
            every: 1,
            resume_from: None,
        }
    }

    /// Checkpoints every epoch to `path` and resumes from that same path
    /// when it exists — the crash-restart-supervisor configuration.
    pub fn resuming(path: impl Into<PathBuf>) -> CheckpointConfig {
        let path = path.into();
        CheckpointConfig {
            resume_from: Some(path.clone()),
            path,
            every: 1,
        }
    }
}

/// Writes `bytes` to `path` atomically: write a sibling temp file, fsync
/// it, then rename over the target. A crash at any point leaves the target
/// either untouched or fully written.
///
/// # Errors
///
/// Any I/O error from create/write/fsync/rename, or an injected fault from
/// the `ckpt.io.write` / `ckpt.io.fsync` / `ckpt.io.rename` failpoints.
pub fn write_checkpoint_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    failpoint!("ckpt.io.write");
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        failpoint!("ckpt.io.fsync");
        file.sync_all()?;
    }
    failpoint!("ckpt.io.rename");
    std::fs::rename(&tmp, path)?;
    ahntp_telemetry::counter_add("ckpt.writes", 1);
    Ok(())
}

/// Reads a checkpoint file written by [`write_checkpoint_atomic`].
///
/// # Errors
///
/// Any I/O error, or an injected fault from the `ckpt.io.read` failpoint.
pub fn read_checkpoint(path: &Path) -> std::io::Result<Vec<u8>> {
    failpoint!("ckpt.io.read");
    let bytes = std::fs::read(path)?;
    ahntp_telemetry::counter_add("ckpt.reads", 1);
    Ok(bytes)
}

/// Restores `ckpt.resume_from` into the model, or starts fresh.
///
/// # Panics
///
/// Panics when the checkpoint exists but cannot be read or decoded:
/// silently restarting from scratch would masquerade as a resume.
fn load_progress<M: ResumableModel + ?Sized>(
    model: &mut M,
    ckpt: &CheckpointConfig,
) -> TrainProgress {
    let Some(src) = &ckpt.resume_from else {
        return TrainProgress::fresh();
    };
    if !src.exists() {
        ahntp_telemetry::debug!(
            "ckpt",
            "no checkpoint at {}: starting fresh",
            src.display()
        );
        return TrainProgress::fresh();
    }
    let bytes = read_checkpoint(src)
        .unwrap_or_else(|e| panic!("cannot read checkpoint {}: {e}", src.display()));
    let progress = model
        .decode_train_state(&bytes)
        .unwrap_or_else(|e| panic!("refusing to resume from {}: {e}", src.display()));
    ahntp_telemetry::counter_add("train.resumes", 1);
    ahntp_telemetry::info!(
        "ckpt",
        "resumed from {} at epoch {} (best loss {})",
        src.display(),
        progress.epochs_done,
        progress.best_loss
    );
    progress
}

/// The per-epoch checkpoint hook shared by the resumable entry points.
///
/// # Panics
///
/// A failed checkpoint write panics: continuing would silently strip the
/// run of its crash safety, and the atomic-write protocol guarantees the
/// previous checkpoint is still intact for the supervisor to resume from.
fn checkpoint_hook<'a, M: ResumableModel + ?Sized>(
    ckpt: &'a CheckpointConfig,
) -> impl FnMut(&M, &TrainProgress) + 'a {
    let every = ckpt.every.max(1);
    move |model: &M, progress: &TrainProgress| {
        if progress.epochs_done % every != 0 {
            return;
        }
        let bytes = model.encode_train_state(progress);
        write_checkpoint_atomic(&ckpt.path, &bytes).unwrap_or_else(|e| {
            panic!(
                "checkpoint write failed at epoch {} ({}): {e}",
                progress.epochs_done,
                ckpt.path.display()
            )
        });
    }
}

/// [`crate::train_and_evaluate`] with crash safety: restores
/// `ckpt.resume_from` when present, then checkpoints the full training
/// state after every `ckpt.every`-th epoch. A run killed at any point and
/// resumed from its last checkpoint produces the same loss trajectory and
/// final parameters, bit for bit, as one that was never interrupted.
///
/// # Panics
///
/// As [`crate::train_and_evaluate`], plus on unreadable/corrupt resume
/// checkpoints and failed checkpoint writes (see [`CheckpointConfig`]).
pub fn train_and_evaluate_resumable(
    model: &mut dyn ResumableModel,
    train: &[LabeledPair],
    test: &[LabeledPair],
    cfg: &TrainConfig,
    ckpt: &CheckpointConfig,
) -> EvalReport {
    if ahntp_telemetry::env_flag("AHNTP_TELEMETRY") {
        let mut observer = LedgerObserver::new();
        train_and_evaluate_resumable_observed(model, train, test, cfg, ckpt, &mut observer)
    } else {
        train_and_evaluate_resumable_observed(model, train, test, cfg, ckpt, &mut NoopObserver)
    }
}

/// [`train_and_evaluate_resumable`] with explicit observer hooks. The
/// observer sees only the epochs this process actually runs — a resumed
/// run starts its `on_epoch` stream at the resume point.
///
/// # Panics
///
/// As [`train_and_evaluate_resumable`].
pub fn train_and_evaluate_resumable_observed(
    model: &mut dyn ResumableModel,
    train: &[LabeledPair],
    test: &[LabeledPair],
    cfg: &TrainConfig,
    ckpt: &CheckpointConfig,
    observer: &mut dyn TrainObserver,
) -> EvalReport {
    let init = load_progress(model, ckpt);
    training_loop(
        model,
        |m, _epoch| m.train_epoch(train),
        init,
        checkpoint_hook(ckpt),
        train,
        test,
        cfg,
        observer,
    )
}

/// [`crate::train_and_evaluate_minibatch`] with crash safety — see
/// [`train_and_evaluate_resumable`]. Mini-batch plans are derived
/// statelessly from `(seed, epoch)`, so resumed epochs rebuild exactly the
/// plans the uninterrupted run would have used.
///
/// # Panics
///
/// As [`crate::train_and_evaluate_minibatch`] and
/// [`train_and_evaluate_resumable`].
pub fn train_and_evaluate_minibatch_resumable(
    model: &mut dyn ResumableBatchModel,
    train: &[LabeledPair],
    test: &[LabeledPair],
    cfg: &TrainConfig,
    mb: &MiniBatchConfig,
    ckpt: &CheckpointConfig,
) -> EvalReport {
    if ahntp_telemetry::env_flag("AHNTP_TELEMETRY") {
        let mut observer = LedgerObserver::new();
        train_and_evaluate_minibatch_resumable_observed(
            model, train, test, cfg, mb, ckpt, &mut observer,
        )
    } else {
        train_and_evaluate_minibatch_resumable_observed(
            model,
            train,
            test,
            cfg,
            mb,
            ckpt,
            &mut NoopObserver,
        )
    }
}

/// [`train_and_evaluate_minibatch_resumable`] with explicit observer hooks.
///
/// # Panics
///
/// As [`train_and_evaluate_minibatch_resumable`].
pub fn train_and_evaluate_minibatch_resumable_observed(
    model: &mut dyn ResumableBatchModel,
    train: &[LabeledPair],
    test: &[LabeledPair],
    cfg: &TrainConfig,
    mb: &MiniBatchConfig,
    ckpt: &CheckpointConfig,
    observer: &mut dyn TrainObserver,
) -> EvalReport {
    mb.validate().expect("invalid mini-batch config");
    let init = load_progress(model, ckpt);
    training_loop(
        model,
        |m, epoch| {
            ahntp_faultz::enforce("train.plan");
            let plan = BatchPlan::for_epoch(train, mb, epoch as u64);
            ahntp_telemetry::counter_add("batch.plans", 1);
            ahntp_telemetry::counter_add("batch.micro_batches", plan.n_batches() as u64);
            m.train_epoch_planned(&plan)
        },
        init,
        checkpoint_hook(ckpt),
        train,
        test,
        cfg,
        observer,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train_and_evaluate;
    use ahntp_faultz::{scoped, Action, FaultSpec};
    use std::sync::{Mutex, PoisonError};

    /// The process-global failpoint registry forces failpoint-using tests
    /// in one binary to run serially.
    static GATE: Mutex<()> = Mutex::new(());

    /// A deterministic fake model: epoch `k` (1-based internal step) yields
    /// loss `1/step`, and the full state is just the step counter — enough
    /// to prove the resume plumbing replays trajectories exactly.
    struct Counter {
        step: u32,
    }

    impl TrustModel for Counter {
        fn name(&self) -> String {
            "counter".into()
        }
        fn train_epoch(&mut self, _pairs: &[LabeledPair]) -> f32 {
            self.step += 1;
            1.0 / self.step as f32
        }
        fn predict(&self, pairs: &[LabeledPair]) -> Vec<f32> {
            vec![0.5 + 0.001 * self.step as f32; pairs.len()]
        }
    }

    impl ResumableModel for Counter {
        fn encode_train_state(&self, progress: &TrainProgress) -> Vec<u8> {
            let mut out = self.step.to_le_bytes().to_vec();
            out.extend((progress.epochs_done as u32).to_le_bytes());
            out.extend(progress.best_loss.to_le_bytes());
            out.extend((progress.stale as u32).to_le_bytes());
            out.extend((progress.epoch_losses.len() as u32).to_le_bytes());
            for &l in &progress.epoch_losses {
                out.extend(l.to_le_bytes());
            }
            out
        }
        fn decode_train_state(&mut self, bytes: &[u8]) -> Result<TrainProgress, String> {
            let word = |i: usize| -> Result<[u8; 4], String> {
                bytes
                    .get(4 * i..4 * i + 4)
                    .map(|s| [s[0], s[1], s[2], s[3]])
                    .ok_or_else(|| "truncated fake state".to_string())
            };
            self.step = u32::from_le_bytes(word(0)?);
            let epochs_done = u32::from_le_bytes(word(1)?) as usize;
            let best_loss = f32::from_le_bytes(word(2)?);
            let stale = u32::from_le_bytes(word(3)?) as usize;
            let n = u32::from_le_bytes(word(4)?) as usize;
            let mut epoch_losses = Vec::with_capacity(n);
            for i in 0..n {
                epoch_losses.push(f32::from_le_bytes(word(5 + i)?));
            }
            Ok(TrainProgress {
                epochs_done,
                best_loss,
                stale,
                epoch_losses,
            })
        }
    }

    fn pairs(n: usize) -> Vec<LabeledPair> {
        (0..n)
            .map(|i| LabeledPair {
                trustor: i,
                trustee: i + 1,
                label: i % 2 == 0,
            })
            .collect()
    }

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ahntp-ckpt-test-{tag}-{}", std::process::id()))
    }

    #[test]
    fn atomic_write_round_trips_and_replaces() {
        let path = tmp_path("atomic");
        write_checkpoint_atomic(&path, b"first").expect("write");
        assert_eq!(read_checkpoint(&path).expect("read"), b"first");
        write_checkpoint_atomic(&path, b"second").expect("overwrite");
        assert_eq!(read_checkpoint(&path).expect("read"), b"second");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_io_faults_surface_and_preserve_the_old_checkpoint() {
        let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        let path = tmp_path("faulty");
        write_checkpoint_atomic(&path, b"good").expect("write");
        for site in ["ckpt.io.write", "ckpt.io.fsync", "ckpt.io.rename"] {
            let _fp = scoped(site, FaultSpec::new(Action::Err));
            let err = write_checkpoint_atomic(&path, b"bad").expect_err(site);
            assert!(err.to_string().contains(site), "{err}");
            assert_eq!(
                read_checkpoint(&path).expect("old checkpoint intact"),
                b"good",
                "fault at {site} must not damage the previous checkpoint"
            );
        }
        let _fp = scoped("ckpt.io.read", FaultSpec::new(Action::Err));
        assert!(read_checkpoint(&path).is_err());
        drop(_fp);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("tmp"));
    }

    #[test]
    fn resumed_run_reproduces_the_uninterrupted_report() {
        let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        let tr = pairs(6);
        let te = pairs(4);
        let cfg = TrainConfig {
            epochs: 6,
            patience: 0,
            ..TrainConfig::default()
        };
        // Golden: uninterrupted.
        let golden = train_and_evaluate(&mut Counter { step: 0 }, &tr, &te, &cfg);

        // Interrupted: run only 3 epochs, checkpointing each one.
        let path = tmp_path("resume");
        let _ = std::fs::remove_file(&path);
        let half_cfg = TrainConfig { epochs: 3, ..cfg };
        let ckpt = CheckpointConfig::resuming(&path);
        train_and_evaluate_resumable(&mut Counter { step: 0 }, &tr, &te, &half_cfg, &ckpt);

        // Resume in a *fresh* model and finish.
        let mut resumed_model = Counter { step: 0 };
        let resumed = train_and_evaluate_resumable(&mut resumed_model, &tr, &te, &cfg, &ckpt);
        assert_eq!(resumed.epoch_losses, golden.epoch_losses);
        assert_eq!(resumed.final_loss, golden.final_loss);
        assert_eq!(resumed.best_loss, golden.best_loss);
        assert_eq!(resumed.epochs_run, golden.epochs_run);
        assert_eq!(resumed_model.step, 6, "model state restored, not re-run");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_from_a_finished_run_runs_zero_epochs() {
        let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        let tr = pairs(4);
        let te = pairs(4);
        let cfg = TrainConfig {
            epochs: 4,
            patience: 0,
            ..TrainConfig::default()
        };
        let path = tmp_path("finished");
        let _ = std::fs::remove_file(&path);
        let ckpt = CheckpointConfig::resuming(&path);
        let first = train_and_evaluate_resumable(&mut Counter { step: 0 }, &tr, &te, &cfg, &ckpt);
        let mut again_model = Counter { step: 0 };
        let again = train_and_evaluate_resumable(&mut again_model, &tr, &te, &cfg, &ckpt);
        assert_eq!(again.epoch_losses, first.epoch_losses);
        assert_eq!(again.epochs_run, first.epochs_run);
        assert_eq!(again_model.step, 4, "no epochs re-run");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_resume_file_starts_fresh_and_corrupt_one_panics() {
        let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        let tr = pairs(4);
        let te = pairs(4);
        let cfg = TrainConfig {
            epochs: 2,
            patience: 0,
            ..TrainConfig::default()
        };
        let path = tmp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        let ckpt = CheckpointConfig::resuming(&path);
        let report =
            train_and_evaluate_resumable(&mut Counter { step: 0 }, &tr, &te, &cfg, &ckpt);
        assert_eq!(report.epochs_run, 2, "missing file → fresh run");

        std::fs::write(&path, b"xy").expect("plant corrupt checkpoint");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            train_and_evaluate_resumable(&mut Counter { step: 0 }, &tr, &te, &cfg, &ckpt);
        }));
        let err = result.expect_err("corrupt checkpoint must not silently retrain");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("refusing to resume"), "{msg}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn train_epoch_failpoint_kills_training_mid_run() {
        let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        let tr = pairs(4);
        let te = pairs(4);
        let cfg = TrainConfig {
            epochs: 5,
            patience: 0,
            ..TrainConfig::default()
        };
        let path = tmp_path("killed");
        let _ = std::fs::remove_file(&path);
        let ckpt = CheckpointConfig::resuming(&path);
        {
            let _fp = scoped("train.epoch", FaultSpec::new(Action::Panic).on_nth(3));
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                train_and_evaluate_resumable(&mut Counter { step: 0 }, &tr, &te, &cfg, &ckpt);
            }));
            assert!(result.is_err(), "third epoch must crash");
        }
        // Two epochs were checkpointed before the crash; resume finishes.
        let mut resumed = Counter { step: 0 };
        let report = train_and_evaluate_resumable(&mut resumed, &tr, &te, &cfg, &ckpt);
        assert_eq!(report.epochs_run, 5);
        assert_eq!(resumed.step, 5);
        let golden = train_and_evaluate(&mut Counter { step: 0 }, &tr, &te, &cfg);
        assert_eq!(report.epoch_losses, golden.epoch_losses);
        let _ = std::fs::remove_file(&path);
    }
}
