//! Adversarial evaluation: Sybil score inflation and PPR-defended scoring.
//!
//! The harness measures what a Sybil injection (`ahntp_data::inject_sybil`)
//! does to a trained trust model, and how much of the damage a
//! personalized-PageRank prior (`ahntp_graph::trust_prior`) claws back:
//!
//! * **Score inflation** — mean predicted trust on honest → Sybil probe
//!   pairs vs. matched honest → honest non-edges from the same trustors
//!   ([`score_inflation`]). A robust model scores both the same; a fooled
//!   one inflates the Sybil side.
//! * **Defended scoring** — [`DefendedScore`] alpha-blends the learned
//!   probability with the per-trustee PPR prior. Because the prior's mass
//!   in the Sybil region is bounded by the attack-edge cut (Snippet 1 /
//!   SybilGuard-style guarantee), blending strictly reduces inflation
//!   whenever the prior separates the regions at all.
//! * **Degradation** — [`evaluate_under_attack`] trains the same
//!   architecture on the clean and the injected dataset and reports both
//!   [`EvalReport`]s plus the inflation sweep over alphas.
//!
//! The harness depends only on the [`TrustModel`] trait and probe pairs,
//! so it stays generic over AHNTP and every baseline (the 9-model table
//! lives in `ahntp-bench`, which owns the model zoo).

use crate::{train_and_evaluate, EvalReport, TrainConfig, TrustModel};
use ahntp_data::{LabeledPair, SybilProbes};

/// Alpha-blended defended scoring: `(1 − α) · learned + α · prior[trustee]`.
///
/// `alpha = 0` is the undefended learned score, `alpha = 1` trusts the PPR
/// prior alone. The prior is indexed by trustee — trust is a property the
/// *target* has to have earned from the honest seed set, regardless of who
/// asks.
#[derive(Debug, Clone, Copy)]
pub struct DefendedScore<'a> {
    /// Blend weight on the prior, in `[0, 1]`.
    pub alpha: f32,
    /// Per-node trust prior in `[0, 1]` (`ahntp_graph::trust_prior`).
    pub prior: &'a [f32],
}

impl<'a> DefendedScore<'a> {
    /// Builds a defended scorer.
    ///
    /// # Panics
    ///
    /// Panics when `alpha` is not a finite value in `[0, 1]`.
    pub fn new(alpha: f32, prior: &'a [f32]) -> DefendedScore<'a> {
        assert!(
            alpha.is_finite() && (0.0..=1.0).contains(&alpha),
            "defense alpha must be in [0, 1], got {alpha}"
        );
        DefendedScore { alpha, prior }
    }

    /// Blends one learned probability with the trustee's prior.
    ///
    /// # Panics
    ///
    /// Panics when `trustee` is outside the prior.
    pub fn blend(&self, trustee: usize, learned: f32) -> f32 {
        (1.0 - self.alpha) * learned + self.alpha * self.prior[trustee]
    }

    /// Blends a batch of learned scores, pair-aligned.
    ///
    /// # Panics
    ///
    /// Panics when the slices disagree in length or a trustee is outside
    /// the prior.
    pub fn blend_pairs(&self, pairs: &[LabeledPair], learned: &[f32]) -> Vec<f32> {
        assert_eq!(pairs.len(), learned.len(), "pairs/scores length mismatch");
        pairs
            .iter()
            .zip(learned)
            .map(|(p, &s)| self.blend(p.trustee, s))
            .collect()
    }
}

/// Mean predicted trust on Sybil probes vs. the matched honest controls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InflationMetrics {
    /// Mean score over honest → Sybil probe pairs.
    pub sybil_mean: f32,
    /// Mean score over honest → honest control pairs.
    pub honest_mean: f32,
}

impl InflationMetrics {
    /// Sybil-to-honest inflation ratio (1.0 = no inflation; the honest
    /// mean is floored at `1e-12` so an all-zero control set cannot
    /// divide by zero).
    pub fn ratio(&self) -> f32 {
        self.sybil_mean / self.honest_mean.max(1e-12)
    }
}

/// Computes [`InflationMetrics`] from probe scores.
///
/// # Panics
///
/// Panics when either side is empty or contains a non-finite score.
pub fn score_inflation(sybil_scores: &[f32], honest_scores: &[f32]) -> InflationMetrics {
    let mean = |s: &[f32], what: &str| -> f32 {
        assert!(!s.is_empty(), "no {what} probe scores");
        assert!(s.iter().all(|v| v.is_finite()), "non-finite {what} probe score");
        s.iter().sum::<f32>() / s.len() as f32
    };
    InflationMetrics {
        sybil_mean: mean(sybil_scores, "sybil"),
        honest_mean: mean(honest_scores, "honest"),
    }
}

/// Inflation after defending at one alpha.
#[derive(Debug, Clone, Copy)]
pub struct DefendedInflation {
    /// The blend weight used.
    pub alpha: f32,
    /// Inflation of the blended scores.
    pub inflation: InflationMetrics,
}

/// Full degradation report for one architecture.
#[derive(Debug, Clone)]
pub struct AttackReport {
    /// Model name (from [`TrustModel::name`] of the attacked instance).
    pub model: String,
    /// Train/test result on the clean host dataset.
    pub clean: EvalReport,
    /// Train/test result on the Sybil-injected dataset.
    pub attacked: EvalReport,
    /// Inflation of the raw learned scores.
    pub undefended: InflationMetrics,
    /// Inflation after blending with the PPR prior, one entry per alpha.
    pub defended: Vec<DefendedInflation>,
}

impl AttackReport {
    /// Test-AUC lost to the injection (positive = the attack hurt).
    pub fn auc_drop(&self) -> f64 {
        self.clean.test.auc - self.attacked.test.auc
    }
}

/// Trains `clean_model` on the host split and `attacked_model` on the
/// injected split, then sweeps the defense over `alphas` on the probe
/// pairs. `prior` must cover every node of the *injected* graph (honest
/// nodes carry mass, Sybils carry whatever escaped the attack cut).
///
/// # Panics
///
/// Panics when `probes` has an empty side, an alpha is outside `[0, 1]`,
/// or a probe trustee falls outside `prior`.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_under_attack(
    clean_model: &mut dyn TrustModel,
    clean_train: &[LabeledPair],
    clean_test: &[LabeledPair],
    attacked_model: &mut dyn TrustModel,
    attacked_train: &[LabeledPair],
    attacked_test: &[LabeledPair],
    probes: &SybilProbes,
    prior: &[f32],
    alphas: &[f32],
    cfg: &TrainConfig,
) -> AttackReport {
    let clean = train_and_evaluate(clean_model, clean_train, clean_test, cfg);
    let attacked = train_and_evaluate(attacked_model, attacked_train, attacked_test, cfg);
    let sybil_raw = attacked_model.predict(&probes.sybil);
    let honest_raw = attacked_model.predict(&probes.honest);
    let undefended = score_inflation(&sybil_raw, &honest_raw);
    let defended = alphas
        .iter()
        .map(|&alpha| {
            let d = DefendedScore::new(alpha, prior);
            DefendedInflation {
                alpha,
                inflation: score_inflation(
                    &d.blend_pairs(&probes.sybil, &sybil_raw),
                    &d.blend_pairs(&probes.honest, &honest_raw),
                ),
            }
        })
        .collect();
    AttackReport {
        model: attacked_model.name(),
        clean,
        attacked,
        undefended,
        defended,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(trustees: &[usize]) -> Vec<LabeledPair> {
        trustees
            .iter()
            .map(|&t| LabeledPair { trustor: 0, trustee: t, label: false })
            .collect()
    }

    #[test]
    fn blend_endpoints_recover_learned_and_prior() {
        let prior = [1.0, 0.0, 0.5];
        let learned = 0.8;
        assert_eq!(DefendedScore::new(0.0, &prior).blend(1, learned), learned);
        assert_eq!(DefendedScore::new(1.0, &prior).blend(1, learned), 0.0);
        let mid = DefendedScore::new(0.5, &prior).blend(2, learned);
        assert!((mid - 0.65).abs() < 1e-6);
    }

    #[test]
    fn blend_pairs_uses_each_trustee() {
        let prior = [0.0, 1.0];
        let d = DefendedScore::new(0.5, &prior);
        let out = d.blend_pairs(&pairs(&[0, 1]), &[0.6, 0.6]);
        assert!((out[0] - 0.3).abs() < 1e-6);
        assert!((out[1] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn inflation_ratio_and_means() {
        let m = score_inflation(&[0.9, 0.7], &[0.4, 0.4]);
        assert!((m.sybil_mean - 0.8).abs() < 1e-6);
        assert!((m.honest_mean - 0.4).abs() < 1e-6);
        assert!((m.ratio() - 2.0).abs() < 1e-5);
        // All-zero controls do not divide by zero.
        assert!(score_inflation(&[0.5], &[0.0]).ratio().is_finite());
    }

    #[test]
    fn defense_strictly_reduces_inflation_when_the_prior_separates() {
        // Learned scores are fooled (Sybils outscore honest targets); the
        // prior is 0 on Sybil trustees and positive on honest ones.
        let prior = [0.9f32, 0.9, 0.0, 0.0]; // nodes 0-1 honest, 2-3 Sybil
        let sybil_pairs = pairs(&[2, 3]);
        let honest_pairs = pairs(&[0, 1]);
        let sybil_raw = [0.85f32, 0.75];
        let honest_raw = [0.55f32, 0.45];
        let undefended = score_inflation(&sybil_raw, &honest_raw);
        for alpha in [0.1f32, 0.3, 0.5, 0.9] {
            let d = DefendedScore::new(alpha, &prior);
            let defended = score_inflation(
                &d.blend_pairs(&sybil_pairs, &sybil_raw),
                &d.blend_pairs(&honest_pairs, &honest_raw),
            );
            assert!(
                defended.ratio() < undefended.ratio(),
                "alpha={alpha}: defended {} !< undefended {}",
                defended.ratio(),
                undefended.ratio()
            );
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0, 1]")]
    fn alpha_out_of_range_rejected() {
        DefendedScore::new(1.5, &[0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn misaligned_blend_rejected() {
        DefendedScore::new(0.5, &[0.0]).blend_pairs(&pairs(&[0]), &[0.1, 0.2]);
    }

    struct FixedModel {
        table: std::collections::HashMap<usize, f32>,
    }

    impl TrustModel for FixedModel {
        fn name(&self) -> String {
            "Fixed".into()
        }
        fn train_epoch(&mut self, _pairs: &[LabeledPair]) -> f32 {
            0.1
        }
        fn predict(&self, pairs: &[LabeledPair]) -> Vec<f32> {
            pairs
                .iter()
                .map(|p| self.table.get(&p.trustee).copied().unwrap_or(0.5))
                .collect()
        }
    }

    #[test]
    fn evaluate_under_attack_reports_sweep() {
        let table: std::collections::HashMap<usize, f32> =
            [(0, 0.4), (1, 0.4), (2, 0.9), (3, 0.9)].into();
        let mut clean = FixedModel { table: table.clone() };
        let mut attacked = FixedModel { table };
        let train = [LabeledPair { trustor: 0, trustee: 1, label: true }];
        let probes = SybilProbes { sybil: pairs(&[2, 3]), honest: pairs(&[0, 1]) };
        let prior = [0.8f32, 0.8, 0.0, 0.0];
        let cfg = TrainConfig { epochs: 1, ..TrainConfig::default() };
        let report = evaluate_under_attack(
            &mut clean, &train, &train, &mut attacked, &train, &train, &probes, &prior,
            &[0.0, 0.5], &cfg,
        );
        assert_eq!(report.model, "Fixed");
        assert_eq!(report.defended.len(), 2);
        // alpha = 0 is exactly the undefended measurement.
        assert_eq!(report.defended[0].inflation, report.undefended);
        assert!(report.defended[1].inflation.ratio() < report.undefended.ratio());
        assert!(report.undefended.ratio() > 2.0);
    }
}
