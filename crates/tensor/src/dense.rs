//! The dense tensor type and its constructors/accessors.

use crate::{Shape, TensorError};

/// A dense, row-major, `f32` tensor of rank 1 or 2.
///
/// `Tensor` is a value type: arithmetic produces new tensors. In-place
/// variants (`*_inplace`, [`Tensor::map_inplace`]) exist for the optimizer
/// hot path. The backing storage is a plain `Vec<f32>` so cloning is an
/// honest O(n) copy — the autograd tape above this crate is responsible for
/// avoiding gratuitous clones.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    pub(crate) data: Vec<f32>,
    pub(crate) shape: Shape,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Avoid dumping megabytes of floats on assertion failures.
        const PREVIEW: usize = 8;
        let head: Vec<f32> = self.data.iter().take(PREVIEW).copied().collect();
        let ellipsis = if self.data.len() > PREVIEW { ", …" } else { "" };
        write!(f, "Tensor{} {:?}{}", self.shape, head, ellipsis)
    }
}

impl Tensor {
    /// A `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor {
            data: vec![0.0; rows * cols],
            shape: Shape::Matrix(rows, cols),
        }
    }

    /// A length-`n` vector filled with zeros.
    pub fn zeros_vec(n: usize) -> Tensor {
        Tensor {
            data: vec![0.0; n],
            shape: Shape::Vector(n),
        }
    }

    /// A `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Tensor {
        Tensor {
            data: vec![value; rows * cols],
            shape: Shape::Matrix(rows, cols),
        }
    }

    /// A length-`n` vector filled with `value`.
    pub fn full_vec(n: usize, value: f32) -> Tensor {
        Tensor {
            data: vec![value; n],
            shape: Shape::Vector(n),
        }
    }

    /// The `n x n` identity matrix.
    pub fn eye(n: usize) -> Tensor {
        let mut t = Tensor::zeros(n, n);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Builds a matrix from a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Tensor, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::LengthMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Tensor {
            data,
            shape: Shape::Matrix(rows, cols),
        })
    }

    /// Builds a matrix from a row-major buffer, panicking on length mismatch.
    /// Convenience for tests and literals.
    pub fn matrix(rows: usize, cols: usize, data: Vec<f32>) -> Tensor {
        Tensor::from_vec(rows, cols, data).expect("Tensor::matrix: length mismatch")
    }

    /// Builds a vector from a buffer.
    pub fn vector(data: Vec<f32>) -> Tensor {
        let n = data.len();
        Tensor {
            data,
            shape: Shape::Vector(n),
        }
    }

    /// Builds a matrix row by row from nested slices (test convenience).
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Tensor {
        assert!(!rows.is_empty(), "Tensor::from_rows: no rows given");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "Tensor::from_rows: row {i} has length {} but row 0 has {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Tensor {
            data,
            shape: Shape::Matrix(rows.len(), cols),
        }
    }

    /// The shape of this tensor.
    #[inline]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of rows (1 for vectors).
    #[inline]
    pub fn rows(&self) -> usize {
        self.shape.rows()
    }

    /// Number of columns (length for vectors).
    #[inline]
    pub fn cols(&self) -> usize {
        self.shape.cols()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the backing row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access by `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        let cols = self.cols();
        assert!(
            row < self.rows() && col < cols,
            "Tensor::get: index ({row}, {col}) out of bounds for {}",
            self.shape
        );
        self.data[row * cols + col]
    }

    /// Mutable element access by `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        let cols = self.cols();
        assert!(
            row < self.rows() && col < cols,
            "Tensor::set: index ({row}, {col}) out of bounds for {}",
            self.shape
        );
        self.data[row * cols + col] = value;
    }

    /// A read-only view of row `r` (vectors are a single row).
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let cols = self.cols();
        assert!(
            r < self.rows(),
            "Tensor::row: row {r} out of bounds for {}",
            self.shape
        );
        &self.data[r * cols..(r + 1) * cols]
    }

    /// A mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let cols = self.cols();
        assert!(
            r < self.rows(),
            "Tensor::row_mut: row {r} out of bounds for {}",
            self.shape
        );
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Reinterprets the tensor with a new shape of identical volume.
    ///
    /// # Panics
    ///
    /// Panics if the volumes differ.
    pub fn reshape(mut self, shape: Shape) -> Tensor {
        assert_eq!(
            self.shape.volume(),
            shape.volume(),
            "Tensor::reshape: cannot reshape {} into {shape}",
            self.shape
        );
        self.shape = shape;
        self
    }

    /// A new matrix built from the rows of `self` selected by `indices`
    /// (rows may repeat). This is the `gather` used to pull user embeddings
    /// for a batch of trust pairs.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        let cols = self.cols();
        let mut data = Vec::with_capacity(indices.len() * cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Tensor {
            data,
            shape: Shape::Matrix(indices.len(), cols),
        }
    }

    /// True when every element is finite (no NaN/inf). Used by training
    /// loops to fail fast on divergence.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_have_expected_shapes() {
        assert_eq!(Tensor::zeros(2, 3).shape(), Shape::Matrix(2, 3));
        assert_eq!(Tensor::zeros_vec(4).shape(), Shape::Vector(4));
        assert_eq!(Tensor::full(2, 2, 3.0).as_slice(), &[3.0; 4]);
        let i = Tensor::eye(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.get(2, 2), 1.0);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert_eq!(
            Tensor::from_vec(2, 2, vec![1.0; 3]).unwrap_err(),
            TensorError::LengthMismatch {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn from_rows_builds_row_major() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.get(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "row 1 has length 3")]
    fn from_rows_rejects_ragged() {
        Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0, 5.0]]);
    }

    #[test]
    fn gather_rows_selects_and_repeats() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = t.gather_rows(&[2, 0, 2]);
        assert_eq!(g.shape(), Shape::Matrix(3, 2));
        assert_eq!(g.as_slice(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::matrix(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let v = t.reshape(Shape::Vector(6));
        assert_eq!(v.shape(), Shape::Vector(6));
        assert_eq!(v.as_slice()[5], 6.0);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_rejects_volume_change() {
        Tensor::zeros(2, 3).reshape(Shape::Vector(5));
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::zeros(1, 3);
        assert!(t.all_finite());
        t.set(0, 1, f32::NAN);
        assert!(!t.all_finite());
    }

    #[test]
    fn debug_output_is_truncated() {
        let t = Tensor::zeros(100, 100);
        let s = format!("{t:?}");
        assert!(s.len() < 200, "debug output too long: {s}");
        assert!(s.contains("[100x100]"));
    }

    #[test]
    fn row_views() {
        let mut t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
        t.row_mut(0)[1] = 9.0;
        assert_eq!(t.get(0, 1), 9.0);
    }
}
