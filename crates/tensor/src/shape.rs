//! Tensor shapes (rank 1 and rank 2).

/// The shape of a [`crate::Tensor`]: either a vector of length `n` or a
/// row-major `rows x cols` matrix.
///
/// Rank-1 and rank-2 shapes are kept distinct (rather than normalising
/// vectors to `1 x n`) because the paper's equations mix genuine vectors
/// (PageRank scores, attention coefficients) with matrices (feature and
/// weight matrices), and silent rank coercion is a classic source of
/// broadcasting bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shape {
    /// A rank-1 tensor with `n` elements.
    Vector(usize),
    /// A rank-2, row-major tensor with `rows * cols` elements.
    Matrix(usize, usize),
}

impl Shape {
    /// Total number of elements.
    #[inline]
    pub fn volume(&self) -> usize {
        match *self {
            Shape::Vector(n) => n,
            Shape::Matrix(r, c) => r * c,
        }
    }

    /// Number of rows: `1` for vectors (treated as a single row when a
    /// matrix view is required).
    #[inline]
    pub fn rows(&self) -> usize {
        match *self {
            Shape::Vector(_) => 1,
            Shape::Matrix(r, _) => r,
        }
    }

    /// Number of columns: the length for vectors.
    #[inline]
    pub fn cols(&self) -> usize {
        match *self {
            Shape::Vector(n) => n,
            Shape::Matrix(_, c) => c,
        }
    }

    /// Whether this is a rank-1 shape.
    #[inline]
    pub fn is_vector(&self) -> bool {
        matches!(self, Shape::Vector(_))
    }

    /// The transposed shape. Transposing a vector is an error at a higher
    /// level; here it is the identity, mirroring the mathematical convention
    /// that a vector has no orientation until lifted to a matrix.
    #[inline]
    pub fn transposed(&self) -> Shape {
        match *self {
            Shape::Vector(n) => Shape::Vector(n),
            Shape::Matrix(r, c) => Shape::Matrix(c, r),
        }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Shape::Vector(n) => write!(f, "[{n}]"),
            Shape::Matrix(r, c) => write!(f, "[{r}x{c}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_rows_cols() {
        assert_eq!(Shape::Vector(7).volume(), 7);
        assert_eq!(Shape::Matrix(3, 4).volume(), 12);
        assert_eq!(Shape::Vector(7).rows(), 1);
        assert_eq!(Shape::Vector(7).cols(), 7);
        assert_eq!(Shape::Matrix(3, 4).rows(), 3);
        assert_eq!(Shape::Matrix(3, 4).cols(), 4);
    }

    #[test]
    fn transpose_swaps_matrix_dims() {
        assert_eq!(Shape::Matrix(3, 4).transposed(), Shape::Matrix(4, 3));
        assert_eq!(Shape::Vector(3).transposed(), Shape::Vector(3));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Shape::Matrix(2, 5).to_string(), "[2x5]");
        assert_eq!(Shape::Vector(9).to_string(), "[9]");
    }
}
