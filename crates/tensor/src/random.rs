//! Deterministic random initialisation helpers.
//!
//! Every stochastic component in the reproduction (weight init, dataset
//! generation, negative sampling) is seeded so that experiment tables are
//! bit-reproducible run to run. [`SplitMix64`] is used to derive independent
//! sub-streams from a single experiment seed; the actual sampling goes
//! through `rand`.

use crate::{Shape, Tensor};
use rand::{Rng, SeedableRng};

/// A tiny, fast, well-mixed 64-bit PRNG used purely for *seed derivation*:
/// hashing a parent seed plus a stream label into an independent child seed.
///
/// This is the SplitMix64 generator of Steele, Lea & Flood (OOPSLA'14) — the
/// same one `rand` uses internally to seed other generators.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derives an independent child seed for the given stream label.
    /// Identical `(seed, label)` pairs always produce the same child.
    pub fn derive(seed: u64, label: &str) -> u64 {
        let mut g = SplitMix64::new(seed);
        let mut acc = g.next_u64();
        for b in label.bytes() {
            acc ^= u64::from(b);
            let mut h = SplitMix64::new(acc);
            acc = h.next_u64();
        }
        acc
    }
}

/// Glorot/Xavier uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. The standard choice for the tanh /
/// linear / attention parameters in the model.
pub fn xavier_uniform(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let a = (6.0 / (rows + cols) as f32).sqrt();
    let data = (0..rows * cols).map(|_| rng.gen_range(-a..=a)).collect();
    Tensor {
        data,
        shape: Shape::Matrix(rows, cols),
    }
}

/// He/Kaiming normal initialisation: `N(0, sqrt(2 / fan_in))`. The standard
/// choice for the ReLU MLP towers (Eqs. 17–18).
pub fn he_normal(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let std = (2.0 / rows as f32).sqrt();
    // Box–Muller from uniform draws keeps us independent of rand_distr.
    let mut data = Vec::with_capacity(rows * cols);
    while data.len() < rows * cols {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < rows * cols {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor {
        data,
        shape: Shape::Matrix(rows, cols),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_label_sensitive() {
        assert_eq!(
            SplitMix64::derive(42, "weights"),
            SplitMix64::derive(42, "weights")
        );
        assert_ne!(
            SplitMix64::derive(42, "weights"),
            SplitMix64::derive(42, "bias")
        );
        assert_ne!(
            SplitMix64::derive(42, "weights"),
            SplitMix64::derive(43, "weights")
        );
    }

    #[test]
    fn splitmix_sequence_changes() {
        let mut g = SplitMix64::new(0);
        let a = g.next_u64();
        let b = g.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn xavier_respects_bound_and_seed() {
        let t = xavier_uniform(30, 50, 7);
        let a = (6.0f32 / 80.0).sqrt();
        assert!(t.as_slice().iter().all(|&v| v.abs() <= a));
        assert_eq!(t, xavier_uniform(30, 50, 7));
        assert_ne!(t, xavier_uniform(30, 50, 8));
    }

    #[test]
    fn he_normal_has_plausible_moments() {
        let t = he_normal(200, 100, 3);
        let mean = t.mean();
        let var: f32 =
            t.as_slice().iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / t.len() as f32;
        let expected_var = 2.0 / 200.0;
        assert!(mean.abs() < 0.01, "mean {mean} too far from 0");
        assert!(
            (var - expected_var).abs() < expected_var * 0.2,
            "var {var} vs expected {expected_var}"
        );
    }

    #[test]
    fn he_normal_handles_odd_element_count() {
        let t = he_normal(1, 3, 11);
        assert_eq!(t.len(), 3);
        assert!(t.all_finite());
    }
}
