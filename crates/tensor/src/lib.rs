//! Dense f32 tensor algebra and CSR sparse kernels.
//!
//! This crate is the numerical substrate for the AHNTP reproduction. It
//! provides exactly the operations the model's computation graph needs:
//!
//! * [`Tensor`] — a row-major, dense, `f32`, rank-1/rank-2 tensor with
//!   element-wise arithmetic, matrix multiplication, broadcasting against
//!   rows/columns, reductions, and row-wise softmax.
//! * [`CsrMatrix`] — a compressed-sparse-row matrix (generic over `f32` /
//!   `f64`) with sparse·sparse and sparse·dense products, masked (Hadamard)
//!   products, transpose, and degree/normalization helpers. These are the
//!   kernels behind the motif-induced adjacency computation (Table II of the
//!   paper) and hypergraph incidence aggregation.
//!
//! # Shape errors
//!
//! Like `ndarray` and friends, dimension mismatches are programming errors,
//! not recoverable conditions: all operations validate shapes and panic with
//! a message naming the operation and both shapes. Fallible constructors
//! ([`Tensor::from_vec`], [`CsrMatrix::from_triplets`]) return
//! [`TensorError`] for data-dependent failures instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dense;
mod matmul;
mod ops;
mod random;
mod reduce;
mod shape;
mod sparse;

pub use dense::Tensor;
pub use random::{he_normal, xavier_uniform, SplitMix64};
pub use shape::Shape;
pub use sparse::{CooTriplet, CsrMatrix};

/// Errors produced by fallible tensor constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided buffer length does not match the requested shape.
    LengthMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// A triplet coordinate lies outside the declared matrix dimensions.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Declared number of rows.
        rows: usize,
        /// Declared number of columns.
        cols: usize,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "buffer length {actual} does not match shape volume {expected}"
            ),
            TensorError::IndexOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "triplet ({row}, {col}) out of bounds for a {rows}x{cols} matrix"
            ),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_mentions_both_sides() {
        let e = TensorError::LengthMismatch {
            expected: 6,
            actual: 5,
        };
        let s = e.to_string();
        assert!(s.contains('6') && s.contains('5'));
        let e = TensorError::IndexOutOfBounds {
            row: 9,
            col: 1,
            rows: 3,
            cols: 3,
        };
        assert!(e.to_string().contains("9"));
    }
}
