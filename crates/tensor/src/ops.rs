//! Element-wise arithmetic and broadcasting.
//!
//! The element-wise kernels band their (embarrassingly parallel) output
//! across the `ahntp-par` pool once the element count clears
//! `ahntp_par::par_enabled`. Every element is written by exactly one task
//! with the same per-element expression as the serial loop, so parallel
//! results are bitwise identical at any thread count. Closures therefore
//! need `Sync`; every mapper in this codebase is a pure function, so the
//! bound is free.

use crate::matmul::record_par;
use crate::{Shape, Tensor};
use ahntp_telemetry::{KernelKind, KernelSpan};

#[inline]
fn assert_same_shape(op: &str, a: &Tensor, b: &Tensor) {
    assert_eq!(
        a.shape(),
        b.shape(),
        "Tensor::{op}: shape mismatch {} vs {}",
        a.shape(),
        b.shape()
    );
}

impl Tensor {
    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        let _k = KernelSpan::enter("tensor.map", KernelKind::Elementwise);
        let n = self.data.len();
        if ahntp_par::par_enabled(n) {
            record_par("tensor.map.par_calls");
            let band = ahntp_par::band_size(n);
            ahntp_par::par_chunks(&mut self.data, band, |_, chunk| {
                for v in chunk {
                    *v = f(*v);
                }
            });
        } else {
            for v in &mut self.data {
                *v = f(*v);
            }
        }
    }

    /// Element-wise combination of two same-shape tensors.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        assert_same_shape("zip", self, other);
        let _k = KernelSpan::enter("tensor.zip", KernelKind::Elementwise);
        let mut out = self.clone();
        let n = out.data.len();
        if ahntp_par::par_enabled(n) {
            record_par("tensor.zip.par_calls");
            let band = ahntp_par::band_size(n);
            let b = &other.data;
            ahntp_par::par_chunks(&mut out.data, band, |ci, chunk| {
                let off = ci * band;
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = f(*v, b[off + i]);
                }
            });
        } else {
            for (v, &bv) in out.data.iter_mut().zip(&other.data) {
                *v = f(*v, bv);
            }
        }
        out
    }

    /// `self + other` (same shape).
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_same_shape("add", self, other);
        self.zip(other, |a, b| a + b)
    }

    /// `self - other` (same shape).
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_same_shape("sub", self, other);
        self.zip(other, |a, b| a - b)
    }

    /// Hadamard (element-wise) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        assert_same_shape("mul", self, other);
        self.zip(other, |a, b| a * b)
    }

    /// Element-wise division.
    pub fn div(&self, other: &Tensor) -> Tensor {
        assert_same_shape("div", self, other);
        self.zip(other, |a, b| a / b)
    }

    /// `self + scalar`.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v + s)
    }

    /// `self * scalar`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// `self += other * alpha` (axpy), in place. The optimizer hot path.
    pub fn axpy_inplace(&mut self, alpha: f32, other: &Tensor) {
        assert_same_shape("axpy_inplace", self, other);
        let _k = KernelSpan::enter("tensor.axpy", KernelKind::Elementwise);
        let n = self.data.len();
        if ahntp_par::par_enabled(n) {
            record_par("tensor.axpy.par_calls");
            let band = ahntp_par::band_size(n);
            let b = &other.data;
            ahntp_par::par_chunks(&mut self.data, band, |ci, chunk| {
                let off = ci * band;
                for (i, a) in chunk.iter_mut().enumerate() {
                    *a += alpha * b[off + i];
                }
            });
        } else {
            for (a, &b) in self.data.iter_mut().zip(&other.data) {
                *a += alpha * b;
            }
        }
    }

    /// Adds `row` (a vector of length `cols`) to every row of `self`.
    /// This is the bias broadcast of a linear layer.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Tensor {
        assert!(
            row.shape().is_vector() && row.len() == self.cols(),
            "Tensor::add_row_broadcast: need a [{}] vector, got {}",
            self.cols(),
            row.shape()
        );
        let _k = KernelSpan::enter("tensor.add_row_broadcast", KernelKind::Elementwise);
        let mut out = self.clone();
        let cols = self.cols();
        if ahntp_par::par_enabled(out.data.len()) && self.rows() >= 2 {
            record_par("tensor.add_row_broadcast.par_calls");
            let band = ahntp_par::band_size(self.rows());
            let bias = &row.data;
            ahntp_par::par_chunks(&mut out.data, band * cols, |_, chunk| {
                for band_row in chunk.chunks_mut(cols) {
                    for (v, &b) in band_row.iter_mut().zip(bias) {
                        *v += b;
                    }
                }
            });
        } else {
            for r in 0..self.rows() {
                let base = r * cols;
                for c in 0..cols {
                    out.data[base + c] += row.data[c];
                }
            }
        }
        out
    }

    /// Multiplies each row `r` of `self` by `col[r]` — a per-row scaling,
    /// used e.g. to weight node features by PageRank scores.
    pub fn scale_rows(&self, col: &Tensor) -> Tensor {
        assert!(
            col.shape().is_vector() && col.len() == self.rows(),
            "Tensor::scale_rows: need a [{}] vector, got {}",
            self.rows(),
            col.shape()
        );
        let _k = KernelSpan::enter("tensor.scale_rows", KernelKind::Elementwise);
        let mut out = self.clone();
        let cols = self.cols();
        if ahntp_par::par_enabled(out.data.len()) && self.rows() >= 2 {
            record_par("tensor.scale_rows.par_calls");
            let band = ahntp_par::band_size(self.rows());
            let scales = &col.data;
            ahntp_par::par_chunks(&mut out.data, band * cols, |ci, chunk| {
                let row0 = ci * band;
                for (bi, band_row) in chunk.chunks_mut(cols).enumerate() {
                    let s = scales[row0 + bi];
                    for v in band_row {
                        *v *= s;
                    }
                }
            });
        } else {
            for r in 0..self.rows() {
                let s = col.data[r];
                for v in &mut out.data[r * cols..(r + 1) * cols] {
                    *v *= s;
                }
            }
        }
        out
    }

    /// Concatenates matrices horizontally (same row count). The `||`
    /// operator of Eqs. (6)–(9) and (14) in the paper.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "Tensor::concat_cols: no tensors given");
        let rows = parts[0].rows();
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(
                p.rows(),
                rows,
                "Tensor::concat_cols: part {i} has {} rows, expected {rows}",
                p.rows()
            );
        }
        let total_cols: usize = parts.iter().map(|p| p.cols()).sum();
        let mut data = Vec::with_capacity(rows * total_cols);
        for r in 0..rows {
            for p in parts {
                data.extend_from_slice(p.row(r));
            }
        }
        Tensor {
            data,
            shape: Shape::Matrix(rows, total_cols),
        }
    }

    /// Concatenates matrices vertically (same column count).
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "Tensor::concat_rows: no tensors given");
        let cols = parts[0].cols();
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(
                p.cols(),
                cols,
                "Tensor::concat_rows: part {i} has {} cols, expected {cols}",
                p.cols()
            );
        }
        let total_rows: usize = parts.iter().map(|p| p.rows()).sum();
        let mut data = Vec::with_capacity(total_rows * cols);
        for p in parts {
            data.extend_from_slice(p.as_slice());
        }
        Tensor {
            data,
            shape: Shape::Matrix(total_rows, cols),
        }
    }

    /// Splits a matrix into column blocks of the given widths (inverse of
    /// [`Tensor::concat_cols`]).
    pub fn split_cols(&self, widths: &[usize]) -> Vec<Tensor> {
        let total: usize = widths.iter().sum();
        assert_eq!(
            total,
            self.cols(),
            "Tensor::split_cols: widths sum to {total}, tensor has {} cols",
            self.cols()
        );
        let rows = self.rows();
        let mut out: Vec<Tensor> = widths
            .iter()
            .map(|&w| Tensor::zeros(rows, w))
            .collect();
        for r in 0..rows {
            let mut offset = 0;
            let src = self.row(r);
            for (part, &w) in out.iter_mut().zip(widths) {
                part.row_mut(r).copy_from_slice(&src[offset..offset + w]);
                offset += w;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t22() -> Tensor {
        Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = t22();
        let b = Tensor::full(2, 2, 2.0);
        assert_eq!(a.add(&b).as_slice(), &[3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sub(&b).as_slice(), &[-1.0, 0.0, 1.0, 2.0]);
        assert_eq!(a.mul(&b).as_slice(), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(a.div(&b).as_slice(), &[0.5, 1.0, 1.5, 2.0]);
        assert_eq!(a.scale(10.0).as_slice(), &[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(a.add_scalar(1.0).as_slice(), &[2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_rejects_mismatched_shapes() {
        t22().add(&Tensor::zeros(2, 3));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t22();
        let g = Tensor::full(2, 2, 1.0);
        a.axpy_inplace(-0.5, &g);
        assert_eq!(a.as_slice(), &[0.5, 1.5, 2.5, 3.5]);
    }

    #[test]
    fn row_broadcast_adds_bias() {
        let a = t22();
        let bias = Tensor::vector(vec![10.0, 20.0]);
        assert_eq!(
            a.add_row_broadcast(&bias).as_slice(),
            &[11.0, 22.0, 13.0, 24.0]
        );
    }

    #[test]
    fn scale_rows_applies_per_row_factor() {
        let a = t22();
        let s = Tensor::vector(vec![2.0, 0.5]);
        assert_eq!(a.scale_rows(&s).as_slice(), &[2.0, 4.0, 1.5, 2.0]);
    }

    #[test]
    fn concat_and_split_cols_roundtrip() {
        let a = t22();
        let b = Tensor::from_rows(&[&[5.0], &[6.0]]);
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), Shape::Matrix(2, 3));
        assert_eq!(c.row(0), &[1.0, 2.0, 5.0]);
        let parts = c.split_cols(&[2, 1]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn concat_rows_stacks() {
        let a = t22();
        let b = Tensor::from_rows(&[&[9.0, 9.0]]);
        let c = Tensor::concat_rows(&[&a, &b]);
        assert_eq!(c.shape(), Shape::Matrix(3, 2));
        assert_eq!(c.row(2), &[9.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "part 1 has 3 rows")]
    fn concat_cols_rejects_row_mismatch() {
        let a = t22();
        let b = Tensor::zeros(3, 1);
        Tensor::concat_cols(&[&a, &b]);
    }
}
