//! Reductions, norms, and row-wise softmax.
//!
//! Row-wise reductions (`row_sums`, `row_norms`, `softmax_rows`,
//! `normalize_rows`) band their output rows across the `ahntp-par` pool:
//! each row is reduced by exactly one task in the serial order, so results
//! are bitwise identical at any thread count. Whole-tensor scalar
//! reductions (`sum`, `mean`, `frobenius_norm`, `col_sums`, …) stay serial
//! on purpose — splitting them would change the accumulation order and
//! therefore the rounding.

use crate::matmul::record_par;
use crate::{Shape, Tensor};
use ahntp_telemetry::{KernelKind, KernelSpan};

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (−∞ for empty tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (+∞ for empty tensors).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Per-row sums as a vector of length `rows`.
    pub fn row_sums(&self) -> Tensor {
        let _k = KernelSpan::enter("tensor.row_sums", KernelKind::Reduction);
        let cols = self.cols();
        let mut out = vec![0.0f32; self.rows()];
        if ahntp_par::par_enabled(self.data.len()) && self.rows() >= 2 {
            record_par("tensor.row_sums.par_calls");
            let band = ahntp_par::band_size(self.rows());
            ahntp_par::par_chunks(&mut out, band, |ci, chunk| {
                let row0 = ci * band;
                for (bi, o) in chunk.iter_mut().enumerate() {
                    let r = row0 + bi;
                    *o = self.data[r * cols..(r + 1) * cols].iter().sum();
                }
            });
        } else {
            for (r, o) in out.iter_mut().enumerate() {
                *o = self.data[r * cols..(r + 1) * cols].iter().sum();
            }
        }
        Tensor {
            data: out,
            shape: Shape::Vector(self.rows()),
        }
    }

    /// Per-column sums as a vector of length `cols`.
    pub fn col_sums(&self) -> Tensor {
        let _k = KernelSpan::enter("tensor.col_sums", KernelKind::Reduction);
        let cols = self.cols();
        let mut out = vec![0.0f32; cols];
        for r in 0..self.rows() {
            for (o, &v) in out.iter_mut().zip(&self.data[r * cols..(r + 1) * cols]) {
                *o += v;
            }
        }
        Tensor {
            data: out,
            shape: Shape::Vector(cols),
        }
    }

    /// Per-row Euclidean norms as a vector of length `rows`.
    pub fn row_norms(&self) -> Tensor {
        let _k = KernelSpan::enter("tensor.row_norms", KernelKind::Reduction);
        let cols = self.cols();
        let norm_of_row = |r: usize| -> f32 {
            self.data[r * cols..(r + 1) * cols]
                .iter()
                .map(|&v| v * v)
                .sum::<f32>()
                .sqrt()
        };
        let mut out = vec![0.0f32; self.rows()];
        if ahntp_par::par_enabled(self.data.len()) && self.rows() >= 2 {
            record_par("tensor.row_norms.par_calls");
            let band = ahntp_par::band_size(self.rows());
            ahntp_par::par_chunks(&mut out, band, |ci, chunk| {
                for (bi, o) in chunk.iter_mut().enumerate() {
                    *o = norm_of_row(ci * band + bi);
                }
            });
        } else {
            for (r, o) in out.iter_mut().enumerate() {
                *o = norm_of_row(r);
            }
        }
        Tensor {
            data: out,
            shape: Shape::Vector(self.rows()),
        }
    }

    /// Frobenius norm of the whole tensor.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum::<f32>().sqrt()
    }

    /// Numerically-stable row-wise softmax (max-shifted).
    pub fn softmax_rows(&self) -> Tensor {
        let _k = KernelSpan::enter("tensor.softmax_rows", KernelKind::Reduction);
        let cols = self.cols();
        let softmax_row = |row: &mut [f32]| {
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - m).exp();
                z += *v;
            }
            // All-(-inf) rows would give z = 0; treat them as uniform so
            // attention over an empty neighbourhood stays well-defined.
            if z > 0.0 {
                for v in row.iter_mut() {
                    *v /= z;
                }
            } else {
                let u = 1.0 / cols as f32;
                for v in row.iter_mut() {
                    *v = u;
                }
            }
        };
        let mut out = self.clone();
        if ahntp_par::par_enabled(2 * out.data.len()) && self.rows() >= 2 {
            record_par("tensor.softmax_rows.par_calls");
            let band = ahntp_par::band_size(self.rows());
            ahntp_par::par_chunks(&mut out.data, band * cols, |_, chunk| {
                for row in chunk.chunks_mut(cols) {
                    softmax_row(row);
                }
            });
        } else {
            for r in 0..self.rows() {
                softmax_row(&mut out.data[r * cols..(r + 1) * cols]);
            }
        }
        out
    }

    /// Rows rescaled to unit L2 norm; zero rows are left untouched.
    pub fn normalize_rows(&self) -> Tensor {
        let _k = KernelSpan::enter("tensor.normalize_rows", KernelKind::Reduction);
        let cols = self.cols();
        let normalize_row = |row: &mut [f32]| {
            let n: f32 = row.iter().map(|&v| v * v).sum::<f32>().sqrt();
            if n > 0.0 {
                for v in row.iter_mut() {
                    *v /= n;
                }
            }
        };
        let mut out = self.clone();
        if ahntp_par::par_enabled(2 * out.data.len()) && self.rows() >= 2 {
            record_par("tensor.normalize_rows.par_calls");
            let band = ahntp_par::band_size(self.rows());
            ahntp_par::par_chunks(&mut out.data, band * cols, |_, chunk| {
                for row in chunk.chunks_mut(cols) {
                    normalize_row(row);
                }
            });
        } else {
            for r in 0..self.rows() {
                normalize_row(&mut out.data[r * cols..(r + 1) * cols]);
            }
        }
        out
    }

    /// Cosine similarity between row `i` of `self` and row `j` of `other`.
    /// Returns 0.0 when either row is all-zero.
    pub fn cosine_rows(&self, i: usize, other: &Tensor, j: usize) -> f32 {
        let a = self.row(i);
        let b = other.row(j);
        assert_eq!(
            a.len(),
            b.len(),
            "Tensor::cosine_rows: width mismatch {} vs {}",
            a.len(),
            b.len()
        );
        let mut dot = 0.0f32;
        let mut na = 0.0f32;
        let mut nb = 0.0f32;
        for (&x, &y) in a.iter().zip(b) {
            dot += x * y;
            na += x * x;
            nb += y * y;
        }
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na.sqrt() * nb.sqrt())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t23() -> Tensor {
        Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    #[test]
    fn scalar_reductions() {
        let t = t23();
        assert_eq!(t.sum(), 21.0);
        assert_eq!(t.mean(), 3.5);
        assert_eq!(t.max(), 6.0);
        assert_eq!(t.min(), 1.0);
    }

    #[test]
    fn axis_reductions() {
        let t = t23();
        assert_eq!(t.row_sums().as_slice(), &[6.0, 15.0]);
        assert_eq!(t.col_sums().as_slice(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn norms() {
        let t = Tensor::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        assert_eq!(t.row_norms().as_slice(), &[5.0, 0.0]);
        assert_eq!(t.frobenius_norm(), 5.0);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let t = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[-1000.0, 0.0, 1000.0]]);
        let s = t.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {r} sums to {sum}");
        }
        assert!(s.get(0, 2) > s.get(0, 1) && s.get(0, 1) > s.get(0, 0));
        // extreme logits stay finite
        assert!(s.all_finite());
        assert!((s.get(1, 2) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_handles_uniform_row() {
        let t = Tensor::from_rows(&[&[5.0, 5.0]]);
        let s = t.softmax_rows();
        assert!((s.get(0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn normalize_rows_unit_norm_and_zero_row_safe() {
        let t = Tensor::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        let n = t.normalize_rows();
        assert!((n.row_norms().as_slice()[0] - 1.0).abs() < 1e-6);
        assert_eq!(n.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn cosine_rows_basic_identities() {
        let t = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[-1.0, 0.0], &[0.0, 0.0]]);
        assert!((t.cosine_rows(0, &t, 0) - 1.0).abs() < 1e-6);
        assert!(t.cosine_rows(0, &t, 1).abs() < 1e-6);
        assert!((t.cosine_rows(0, &t, 2) + 1.0).abs() < 1e-6);
        assert_eq!(t.cosine_rows(0, &t, 3), 0.0);
    }
}
