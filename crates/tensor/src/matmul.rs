//! Dense matrix multiplication and transpose.

use ahntp_telemetry::counter_add;

use crate::{Shape, Tensor};

/// Records one dense-product invocation in the global metrics registry.
/// `counter_add` is a no-op (one relaxed load) while telemetry is off.
#[inline]
fn record_matmul(kernel: &str, m: usize, n: usize, k: usize) {
    if !ahntp_telemetry::enabled() {
        return;
    }
    counter_add("tensor.matmul.calls", 1);
    counter_add(&format!("tensor.{kernel}.calls"), 1);
    // Upper bound: zero-skip makes the realised count data-dependent.
    counter_add("tensor.matmul.flops", 2 * (m * n * k) as u64);
    counter_add(
        "tensor.alloc.bytes",
        (m * n * std::mem::size_of::<f32>()) as u64,
    );
}

impl Tensor {
    /// Dense matrix product `self @ other`.
    ///
    /// Vectors are promoted to matrices in the only way that makes the
    /// product well-formed (`[n]` on the left acts as `1 x n`; on the right
    /// as `n x 1`), and the result is demoted back to a vector when one side
    /// was a vector. Uses the cache-friendly `i-k-j` loop order, which is
    /// within a small factor of BLAS for the ≤512-wide matrices this model
    /// uses.
    ///
    /// # Panics
    ///
    /// Panics when the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k1) = (self.rows(), self.cols());
        let (k2, n) = match other.shape() {
            Shape::Matrix(r, c) => (r, c),
            Shape::Vector(len) => (len, 1),
        };
        assert_eq!(
            k1, k2,
            "Tensor::matmul: inner dimensions disagree: {} @ {}",
            self.shape(),
            other.shape()
        );
        let k = k1;
        record_matmul("matmul", m, n, k);
        let mut out = vec![0.0f32; m * n];
        let a = &self.data;
        // When `other` is a vector we can index it directly as a column.
        let b = &other.data;
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (kk, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue; // feature matrices after ReLU are often sparse
                }
                let b_row = &b[kk * n..(kk + 1) * n];
                for (o, &bkj) in out_row.iter_mut().zip(b_row) {
                    *o += aik * bkj;
                }
            }
        }
        let shape = match (self.shape(), other.shape()) {
            (Shape::Vector(_), Shape::Matrix(_, c)) => Shape::Vector(c),
            (Shape::Matrix(r, _), Shape::Vector(_)) => Shape::Vector(r),
            (Shape::Vector(_), Shape::Vector(_)) => Shape::Vector(1),
            _ => Shape::Matrix(m, n),
        };
        Tensor { data: out, shape }
    }

    /// `self^T @ other` without materialising the transpose.
    pub fn t_matmul(&self, other: &Tensor) -> Tensor {
        // (A^T B)_{ij} = sum_k A_{ki} B_{kj}
        let (k1, m) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(
            k1, k2,
            "Tensor::t_matmul: row counts disagree: {} vs {}",
            self.shape(),
            other.shape()
        );
        record_matmul("t_matmul", m, n, k1);
        let mut out = vec![0.0f32; m * n];
        for kk in 0..k1 {
            let a_row = &self.data[kk * m..(kk + 1) * m];
            let b_row = &other.data[kk * n..(kk + 1) * n];
            for (i, &aki) in a_row.iter().enumerate() {
                if aki == 0.0 {
                    continue;
                }
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &bkj) in out_row.iter_mut().zip(b_row) {
                    *o += aki * bkj;
                }
            }
        }
        Tensor {
            data: out,
            shape: Shape::Matrix(m, n),
        }
    }

    /// `self @ other^T` without materialising the transpose.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        // (A B^T)_{ij} = dot(A_i, B_j) — both operands walk rows, so this is
        // the friendliest kernel of the three.
        let (m, k1) = (self.rows(), self.cols());
        let (n, k2) = (other.rows(), other.cols());
        assert_eq!(
            k1, k2,
            "Tensor::matmul_t: column counts disagree: {} vs {}",
            self.shape(),
            other.shape()
        );
        record_matmul("matmul_t", m, n, k1);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = self.row(i);
            for j in 0..n {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (&x, &y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                out[i * n + j] = acc;
            }
        }
        Tensor {
            data: out,
            shape: Shape::Matrix(m, n),
        }
    }

    /// Materialised transpose.
    pub fn transpose(&self) -> Tensor {
        match self.shape() {
            Shape::Vector(_) => self.clone(),
            Shape::Matrix(r, c) => {
                let mut out = vec![0.0f32; r * c];
                for i in 0..r {
                    for j in 0..c {
                        out[j * r + i] = self.data[i * c + j];
                    }
                }
                Tensor {
                    data: out,
                    shape: Shape::Matrix(c, r),
                }
            }
        }
    }

    /// Dot product of two equal-length vectors (or flattened tensors of the
    /// same shape).
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.shape(),
            other.shape(),
            "Tensor::dot: shape mismatch {} vs {}",
            self.shape(),
            other.shape()
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Tensor::eye(3)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    fn vector_promotions() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = Tensor::vector(vec![1.0, 1.0]);
        // A @ v = row sums
        let av = a.matmul(&v);
        assert_eq!(av.shape(), Shape::Vector(2));
        assert_eq!(av.as_slice(), &[3.0, 7.0]);
        // v @ A = column sums
        let va = v.matmul(&a);
        assert_eq!(va.shape(), Shape::Vector(2));
        assert_eq!(va.as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn fused_transpose_products_match_explicit() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]); // 2x3
        let b = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]); // 2x2
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
        let c = Tensor::from_rows(&[&[1.0, 1.0, 1.0], &[2.0, 2.0, 2.0]]); // 2x3
        assert_eq!(a.matmul_t(&c), a.matmul(&c.transpose()));
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn dot_product() {
        let a = Tensor::vector(vec![1.0, 2.0, 3.0]);
        let b = Tensor::vector(vec![4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b), 32.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn matmul_rejects_bad_inner_dim() {
        Tensor::zeros(2, 3).matmul(&Tensor::zeros(2, 3));
    }
}
