//! Dense matrix multiplication and transpose.
//!
//! The three product kernels are row-partitioned across the `ahntp-par`
//! worker pool when the estimated FLOP count clears
//! `ahntp_par::par_enabled`. Each output row is owned by exactly one task
//! and accumulated in the same `k`-ascending order (with the same
//! zero-skip tests) as the serial loop, so parallel results are bitwise
//! identical to serial ones at any thread count.

use ahntp_telemetry::{counter_add, KernelKind, KernelSpan};

use crate::{Shape, Tensor};

/// Records one dense-product invocation in the global metrics registry.
/// `counter_add` is a no-op (one relaxed load) while telemetry is off.
/// The per-kernel counter name is interned at compile time so hot kernels
/// never allocate for metrics.
#[inline]
fn record_matmul(kernel_calls: &'static str, m: usize, n: usize, k: usize) {
    if !ahntp_telemetry::enabled() {
        return;
    }
    counter_add("tensor.matmul.calls", 1);
    counter_add(kernel_calls, 1);
    // Upper bound: zero-skip makes the realised count data-dependent.
    counter_add("tensor.matmul.flops", 2 * (m * n * k) as u64);
    counter_add(
        "tensor.alloc.bytes",
        (m * n * std::mem::size_of::<f32>()) as u64,
    );
}

/// Counts one parallel-path dispatch for a kernel.
#[inline]
pub(crate) fn record_par(par_calls: &'static str) {
    if ahntp_telemetry::enabled() {
        counter_add(par_calls, 1);
    }
}

/// `matmul` band kernel: fills output rows `row0..row0 + out_band/n` with
/// the cache-friendly `i-k-j` loop. Used for both the serial whole-matrix
/// call and each parallel band, so the two paths are the same code.
fn matmul_rows(a: &[f32], b: &[f32], k: usize, n: usize, row0: usize, out_band: &mut [f32]) {
    let rows = out_band.len().checked_div(n).unwrap_or(0);
    for bi in 0..rows {
        let i = row0 + bi;
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out_band[bi * n..(bi + 1) * n];
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue; // feature matrices after ReLU are often sparse
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bkj) in out_row.iter_mut().zip(b_row) {
                *o += aik * bkj;
            }
        }
    }
}

/// `t_matmul` band kernel: output row `i` gathers `sum_k A[k][i] * B[k]`
/// with `k` ascending and the same `a[k][i] == 0` skip as the serial
/// scatter loop, so per-element accumulation order is identical.
fn t_matmul_rows(
    a: &[f32],
    b: &[f32],
    m: usize,
    n: usize,
    kdim: usize,
    row0: usize,
    out_band: &mut [f32],
) {
    let rows = out_band.len().checked_div(n).unwrap_or(0);
    for bi in 0..rows {
        let i = row0 + bi;
        let out_row = &mut out_band[bi * n..(bi + 1) * n];
        for kk in 0..kdim {
            let aki = a[kk * m + i];
            if aki == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bkj) in out_row.iter_mut().zip(b_row) {
                *o += aki * bkj;
            }
        }
    }
}

/// `matmul_t` band kernel: plain row-dot-row products.
fn matmul_t_rows(a: &[f32], b: &[f32], k: usize, n: usize, row0: usize, out_band: &mut [f32]) {
    let rows = out_band.len().checked_div(n).unwrap_or(0);
    for bi in 0..rows {
        let i = row0 + bi;
        let a_row = &a[(row0 + bi) * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            out_band[bi * n + j] = acc;
        }
    }
}

impl Tensor {
    /// Dense matrix product `self @ other`.
    ///
    /// Vectors are promoted to matrices in the only way that makes the
    /// product well-formed (`[n]` on the left acts as `1 x n`; on the right
    /// as `n x 1`), and the result is demoted back to a vector when one side
    /// was a vector. Uses the cache-friendly `i-k-j` loop order, which is
    /// within a small factor of BLAS for the ≤512-wide matrices this model
    /// uses; large products are row-partitioned across the worker pool with
    /// bitwise-identical results.
    ///
    /// # Panics
    ///
    /// Panics when the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k1) = (self.rows(), self.cols());
        let (k2, n) = match other.shape() {
            Shape::Matrix(r, c) => (r, c),
            Shape::Vector(len) => (len, 1),
        };
        assert_eq!(
            k1, k2,
            "Tensor::matmul: inner dimensions disagree: {} @ {}",
            self.shape(),
            other.shape()
        );
        let k = k1;
        record_matmul("tensor.matmul.calls", m, n, k);
        let _k = KernelSpan::enter("tensor.matmul", KernelKind::Matmul);
        let mut out = vec![0.0f32; m * n];
        let a = &self.data;
        // When `other` is a vector we can index it directly as a column.
        let b = &other.data;
        if ahntp_par::par_enabled(2 * m * n * k) && m >= 2 {
            record_par("tensor.matmul.par_calls");
            let band = ahntp_par::band_size(m);
            ahntp_par::par_chunks(&mut out, band * n, |ci, chunk| {
                matmul_rows(a, b, k, n, ci * band, chunk);
            });
        } else {
            matmul_rows(a, b, k, n, 0, &mut out);
        }
        let shape = match (self.shape(), other.shape()) {
            (Shape::Vector(_), Shape::Matrix(_, c)) => Shape::Vector(c),
            (Shape::Matrix(r, _), Shape::Vector(_)) => Shape::Vector(r),
            (Shape::Vector(_), Shape::Vector(_)) => Shape::Vector(1),
            _ => Shape::Matrix(m, n),
        };
        Tensor { data: out, shape }
    }

    /// `self^T @ other` without materialising the transpose.
    pub fn t_matmul(&self, other: &Tensor) -> Tensor {
        // (A^T B)_{ij} = sum_k A_{ki} B_{kj}
        let (k1, m) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(
            k1, k2,
            "Tensor::t_matmul: row counts disagree: {} vs {}",
            self.shape(),
            other.shape()
        );
        record_matmul("tensor.t_matmul.calls", m, n, k1);
        let _k = KernelSpan::enter("tensor.t_matmul", KernelKind::Matmul);
        let mut out = vec![0.0f32; m * n];
        if ahntp_par::par_enabled(2 * m * n * k1) && m >= 2 {
            // Gather form: each task owns a band of output rows and walks
            // k ascending, matching the serial scatter's per-element
            // accumulation order exactly.
            record_par("tensor.t_matmul.par_calls");
            let (a, b) = (&self.data, &other.data);
            let band = ahntp_par::band_size(m);
            ahntp_par::par_chunks(&mut out, band * n, |ci, chunk| {
                t_matmul_rows(a, b, m, n, k1, ci * band, chunk);
            });
        } else {
            // Serial scatter: k-outer keeps both operands streaming.
            for kk in 0..k1 {
                let a_row = &self.data[kk * m..(kk + 1) * m];
                let b_row = &other.data[kk * n..(kk + 1) * n];
                for (i, &aki) in a_row.iter().enumerate() {
                    if aki == 0.0 {
                        continue;
                    }
                    let out_row = &mut out[i * n..(i + 1) * n];
                    for (o, &bkj) in out_row.iter_mut().zip(b_row) {
                        *o += aki * bkj;
                    }
                }
            }
        }
        Tensor {
            data: out,
            shape: Shape::Matrix(m, n),
        }
    }

    /// `self @ other^T` without materialising the transpose.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        // (A B^T)_{ij} = dot(A_i, B_j) — both operands walk rows, so this is
        // the friendliest kernel of the three.
        let (m, k1) = (self.rows(), self.cols());
        let (n, k2) = (other.rows(), other.cols());
        assert_eq!(
            k1, k2,
            "Tensor::matmul_t: column counts disagree: {} vs {}",
            self.shape(),
            other.shape()
        );
        record_matmul("tensor.matmul_t.calls", m, n, k1);
        let _k = KernelSpan::enter("tensor.matmul_t", KernelKind::Matmul);
        let mut out = vec![0.0f32; m * n];
        let (a, b) = (&self.data, &other.data);
        if ahntp_par::par_enabled(2 * m * n * k1) && m >= 2 {
            record_par("tensor.matmul_t.par_calls");
            let band = ahntp_par::band_size(m);
            ahntp_par::par_chunks(&mut out, band * n, |ci, chunk| {
                matmul_t_rows(a, b, k1, n, ci * band, chunk);
            });
        } else {
            matmul_t_rows(a, b, k1, n, 0, &mut out);
        }
        Tensor {
            data: out,
            shape: Shape::Matrix(m, n),
        }
    }

    /// Materialised transpose.
    pub fn transpose(&self) -> Tensor {
        match self.shape() {
            Shape::Vector(_) => self.clone(),
            Shape::Matrix(r, c) => {
                let mut out = vec![0.0f32; r * c];
                for i in 0..r {
                    for j in 0..c {
                        out[j * r + i] = self.data[i * c + j];
                    }
                }
                Tensor {
                    data: out,
                    shape: Shape::Matrix(c, r),
                }
            }
        }
    }

    /// Dot product of two equal-length vectors (or flattened tensors of the
    /// same shape).
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.shape(),
            other.shape(),
            "Tensor::dot: shape mismatch {} vs {}",
            self.shape(),
            other.shape()
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Tensor::eye(3)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    fn vector_promotions() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = Tensor::vector(vec![1.0, 1.0]);
        // A @ v = row sums
        let av = a.matmul(&v);
        assert_eq!(av.shape(), Shape::Vector(2));
        assert_eq!(av.as_slice(), &[3.0, 7.0]);
        // v @ A = column sums
        let va = v.matmul(&a);
        assert_eq!(va.shape(), Shape::Vector(2));
        assert_eq!(va.as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn fused_transpose_products_match_explicit() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]); // 2x3
        let b = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]); // 2x2
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
        let c = Tensor::from_rows(&[&[1.0, 1.0, 1.0], &[2.0, 2.0, 2.0]]); // 2x3
        assert_eq!(a.matmul_t(&c), a.matmul(&c.transpose()));
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn dot_product() {
        let a = Tensor::vector(vec![1.0, 2.0, 3.0]);
        let b = Tensor::vector(vec![4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b), 32.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn matmul_rejects_bad_inner_dim() {
        Tensor::zeros(2, 3).matmul(&Tensor::zeros(2, 3));
    }
}
