//! Compressed-sparse-row matrices.
//!
//! The motif-induced adjacency computation of Table II is a pipeline of
//! sparse products masked by sparse patterns — `(UC · UC) ⊙ UCᵀ` and
//! friends — over social graphs whose adjacency is far too sparse (0.17 % /
//! 0.49 % density in the paper's datasets) to densify at scale. The kernels
//! here implement exactly that pipeline:
//!
//! * [`CsrMatrix::spmm`] — Gustavson sparse·sparse product,
//! * [`CsrMatrix::spmm_masked`] — sparse·sparse product restricted to the
//!   pattern of a mask, fusing the Hadamard step so no dense intermediate is
//!   ever built,
//! * [`CsrMatrix::hadamard`], [`CsrMatrix::add`] — pattern intersection /
//!   union combinators,
//! * [`CsrMatrix::mul_dense`] / [`CsrMatrix::t_mul_dense`] — the
//!   incidence-matrix aggregations `H·X` and `Hᵀ·X` used by every hypergraph
//!   convolution (and their autograd backward passes).
//!
//! Values are generic over [`Scalar`] because the learnable math runs in
//! `f32` while motif counting and PageRank run in `f64` (see DESIGN.md §5).

use ahntp_telemetry::{counter_add, KernelKind, KernelSpan};

use crate::matmul::record_par;
use crate::{Tensor, TensorError};

/// Pre-interned counter names for one sparse kernel, so the hot path never
/// builds a `format!` string per call.
struct SparseCounters {
    calls: &'static str,
    nnz_in: &'static str,
    nnz_out: &'static str,
}

static SPMM_COUNTERS: SparseCounters = SparseCounters {
    calls: "tensor.spmm.calls",
    nnz_in: "tensor.spmm.nnz_in",
    nnz_out: "tensor.spmm.nnz_out",
};
static SPMM_MASKED_COUNTERS: SparseCounters = SparseCounters {
    calls: "tensor.spmm_masked.calls",
    nnz_in: "tensor.spmm_masked.nnz_in",
    nnz_out: "tensor.spmm_masked.nnz_out",
};
static MUL_DENSE_COUNTERS: SparseCounters = SparseCounters {
    calls: "tensor.mul_dense.calls",
    nnz_in: "tensor.mul_dense.nnz_in",
    nnz_out: "tensor.mul_dense.nnz_out",
};
static T_MUL_DENSE_COUNTERS: SparseCounters = SparseCounters {
    calls: "tensor.t_mul_dense.calls",
    nnz_in: "tensor.t_mul_dense.nnz_in",
    nnz_out: "tensor.t_mul_dense.nnz_out",
};
static SELECT_ROWS_COUNTERS: SparseCounters = SparseCounters {
    calls: "tensor.select_rows.calls",
    nnz_in: "tensor.select_rows.nnz_in",
    nnz_out: "tensor.select_rows.nnz_out",
};
static SELECT_COLS_COUNTERS: SparseCounters = SparseCounters {
    calls: "tensor.select_cols.calls",
    nnz_in: "tensor.select_cols.nnz_in",
    nnz_out: "tensor.select_cols.nnz_out",
};

/// Counts one sparse-kernel invocation and the nonzeros it consumed and
/// produced. No-op while telemetry is disabled.
#[inline]
fn record_sparse(kernel: &SparseCounters, nnz_in: usize, nnz_out: usize) {
    if !ahntp_telemetry::enabled() {
        return;
    }
    counter_add(kernel.calls, 1);
    counter_add(kernel.nnz_in, nnz_in as u64);
    counter_add(kernel.nnz_out, nnz_out as u64);
}

/// A COO entry `(row, col, value)` used to build [`CsrMatrix`].
pub type CooTriplet<T> = (usize, usize, T);

/// Minimal numeric bound for sparse values: `f32` and `f64`.
pub trait Scalar:
    Copy
    + PartialEq
    + PartialOrd
    + std::fmt::Debug
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::AddAssign
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Lossy conversion to `f64` (exact for both implementors).
    fn to_f64(self) -> f64;
    /// Lossy conversion from `f64`.
    fn from_f64(v: f64) -> Self;
}

impl Scalar for f32 {
    const ZERO: f32 = 0.0;
    const ONE: f32 = 1.0;
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    fn from_f64(v: f64) -> f32 {
        v as f32
    }
}

impl Scalar for f64 {
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;
    fn to_f64(self) -> f64 {
        self
    }
    fn from_f64(v: f64) -> f64 {
        v
    }
}

/// A sparse matrix in compressed-sparse-row format.
///
/// Invariants (upheld by every constructor and checked by
/// [`CsrMatrix::validate`]):
/// * `row_ptr.len() == rows + 1`, `row_ptr[0] == 0`,
///   `row_ptr[rows] == col_idx.len() == values.len()`,
/// * `row_ptr` is non-decreasing,
/// * within each row, column indices are strictly increasing and `< cols`.
///
/// Explicit zeros are permitted (they arise naturally from cancellation in
/// [`CsrMatrix::sub`]) and can be removed with [`CsrMatrix::prune`].
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<T: Scalar> {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> CsrMatrix<T> {
    /// An all-zero `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The `n x n` identity.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![T::ONE; n],
        }
    }

    /// Builds a matrix from COO triplets. Duplicate coordinates are summed,
    /// which makes this directly usable as a co-occurrence counter.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for any out-of-range triplet.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[CooTriplet<T>],
    ) -> Result<Self, TensorError> {
        for &(r, c, _) in triplets {
            if r >= rows || c >= cols {
                return Err(TensorError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    rows,
                    cols,
                });
            }
        }
        let mut sorted: Vec<CooTriplet<T>> = triplets.to_vec();
        sorted.sort_unstable_by_key(|t| (t.0, t.1));
        let mut col_idx: Vec<usize> = Vec::with_capacity(sorted.len());
        let mut values: Vec<T> = Vec::with_capacity(sorted.len());
        let mut entry_rows: Vec<usize> = Vec::with_capacity(sorted.len());
        for &(r, c, v) in &sorted {
            if entry_rows.last() == Some(&r) && col_idx.last() == Some(&c) {
                // Same coordinate as the previous entry: accumulate.
                *values.last_mut().expect("values nonempty here") += v;
            } else {
                entry_rows.push(r);
                col_idx.push(c);
                values.push(v);
            }
        }
        let mut row_ptr = vec![0usize; rows + 1];
        for &r in &entry_rows {
            row_ptr[r + 1] += 1;
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let m = CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        };
        debug_assert_eq!(m.validate(), Ok(()));
        Ok(m)
    }

    /// Builds a CSR matrix from a dense tensor, keeping nonzero entries.
    pub fn from_dense(t: &Tensor) -> CsrMatrix<T> {
        let mut trips = Vec::new();
        for r in 0..t.rows() {
            for (c, &v) in t.row(r).iter().enumerate() {
                if v != 0.0 {
                    trips.push((r, c, T::from_f64(f64::from(v))));
                }
            }
        }
        CsrMatrix::from_triplets(t.rows(), t.cols(), &trips)
            .expect("from_dense: indices are in range by construction")
    }

    /// Densifies into a [`Tensor`] (f32). Intended for tests and tiny
    /// matrices only.
    pub fn to_dense(&self) -> Tensor {
        let mut t = Tensor::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                t.set(r, c, v.to_f64() as f32);
            }
        }
        t
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of explicitly stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The raw CSR row pointer array (`rows + 1` entries).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The raw CSR column index array.
    #[inline]
    pub fn col_indices(&self) -> &[usize] {
        &self.col_idx
    }

    /// The raw CSR value array.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Iterates `(col, value)` pairs of row `r` in increasing column order.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, T)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Number of stored entries in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Entry lookup: O(log nnz(row)).
    pub fn get(&self, r: usize, c: usize) -> T {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        match self.col_idx[lo..hi].binary_search(&c) {
            Ok(pos) => self.values[lo + pos],
            Err(_) => T::ZERO,
        }
    }

    /// Checks all structural invariants; returns a human-readable violation
    /// if any. Used by property tests and `debug_assert!` in combinators.
    pub fn validate(&self) -> Result<(), String> {
        if self.row_ptr.len() != self.rows + 1 {
            return Err(format!(
                "row_ptr has {} entries, expected {}",
                self.row_ptr.len(),
                self.rows + 1
            ));
        }
        if self.row_ptr[0] != 0 {
            return Err("row_ptr[0] != 0".into());
        }
        if *self.row_ptr.last().unwrap() != self.col_idx.len()
            || self.col_idx.len() != self.values.len()
        {
            return Err("row_ptr end / col_idx / values lengths disagree".into());
        }
        for r in 0..self.rows {
            if self.row_ptr[r] > self.row_ptr[r + 1] {
                return Err(format!("row_ptr decreases at row {r}"));
            }
            let row = &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("row {r}: columns not strictly increasing"));
                }
            }
            if let Some(&last) = row.last() {
                if last >= self.cols {
                    return Err(format!("row {r}: column {last} >= cols {}", self.cols));
                }
            }
        }
        Ok(())
    }

    /// Transposed copy (O(nnz) counting sort).
    pub fn transpose(&self) -> CsrMatrix<T> {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![T::ZERO; self.nnz()];
        let mut next = counts;
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                let pos = next[c];
                col_idx[pos] = r;
                values[pos] = v;
                next[c] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Applies `f` to every stored value (pattern unchanged).
    pub fn map_values(&self, f: impl Fn(T) -> T) -> CsrMatrix<T> {
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Drops stored entries for which `keep` returns false.
    pub fn filter(&self, keep: impl Fn(usize, usize, T) -> bool) -> CsrMatrix<T> {
        let mut trips = Vec::new();
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                if keep(r, c, v) {
                    trips.push((r, c, v));
                }
            }
        }
        CsrMatrix::from_triplets(self.rows, self.cols, &trips)
            .expect("filter: indices in range by construction")
    }

    /// Removes explicitly stored zeros.
    pub fn prune(&self) -> CsrMatrix<T> {
        self.filter(|_, _, v| v != T::ZERO)
    }

    /// Per-row sums (out-degrees for adjacency matrices).
    pub fn row_sums(&self) -> Vec<T> {
        (0..self.rows)
            .map(|r| {
                let mut acc = T::ZERO;
                for (_, v) in self.row_entries(r) {
                    acc += v;
                }
                acc
            })
            .collect()
    }

    /// Per-column sums (in-degrees for adjacency matrices).
    pub fn col_sums(&self) -> Vec<T> {
        let mut out = vec![T::ZERO; self.cols];
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                out[c] += v;
            }
        }
        out
    }

    /// Entrywise sum `self + other` (pattern union).
    pub fn add(&self, other: &CsrMatrix<T>) -> CsrMatrix<T> {
        self.combine(other, "add", |a, b| a + b)
    }

    /// Entrywise difference `self - other` (pattern union; cancelled entries
    /// stay as explicit zeros — call [`CsrMatrix::prune`] to drop them).
    pub fn sub(&self, other: &CsrMatrix<T>) -> CsrMatrix<T> {
        self.combine(other, "sub", |a, b| a - b)
    }

    fn combine(
        &self,
        other: &CsrMatrix<T>,
        op: &str,
        f: impl Fn(T, T) -> T,
    ) -> CsrMatrix<T> {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "CsrMatrix::{op}: dimension mismatch {}x{} vs {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::with_capacity(self.nnz() + other.nnz());
        let mut values = Vec::with_capacity(self.nnz() + other.nnz());
        for r in 0..self.rows {
            let mut a = self.row_entries(r).peekable();
            let mut b = other.row_entries(r).peekable();
            loop {
                match (a.peek().copied(), b.peek().copied()) {
                    (Some((ca, va)), Some((cb, vb))) => {
                        use std::cmp::Ordering;
                        match ca.cmp(&cb) {
                            Ordering::Less => {
                                col_idx.push(ca);
                                values.push(f(va, T::ZERO));
                                a.next();
                            }
                            Ordering::Greater => {
                                col_idx.push(cb);
                                values.push(f(T::ZERO, vb));
                                b.next();
                            }
                            Ordering::Equal => {
                                col_idx.push(ca);
                                values.push(f(va, vb));
                                a.next();
                                b.next();
                            }
                        }
                    }
                    (Some((ca, va)), None) => {
                        col_idx.push(ca);
                        values.push(f(va, T::ZERO));
                        a.next();
                    }
                    (None, Some((cb, vb))) => {
                        col_idx.push(cb);
                        values.push(f(T::ZERO, vb));
                        b.next();
                    }
                    (None, None) => break,
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Hadamard (entrywise) product — pattern intersection. This is the `⊙`
    /// of Table II; `BC = R_U ⊙ R_Uᵀ` extracts bidirectional edges.
    pub fn hadamard(&self, other: &CsrMatrix<T>) -> CsrMatrix<T> {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "CsrMatrix::hadamard: dimension mismatch {}x{} vs {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for r in 0..self.rows {
            let mut a = self.row_entries(r).peekable();
            let mut b = other.row_entries(r).peekable();
            while let (Some(&(ca, va)), Some(&(cb, vb))) = (a.peek(), b.peek()) {
                use std::cmp::Ordering;
                match ca.cmp(&cb) {
                    Ordering::Less => {
                        a.next();
                    }
                    Ordering::Greater => {
                        b.next();
                    }
                    Ordering::Equal => {
                        col_idx.push(ca);
                        values.push(va * vb);
                        a.next();
                        b.next();
                    }
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Scales every value by `s`.
    pub fn scale(&self, s: T) -> CsrMatrix<T> {
        self.map_values(|v| v * s)
    }

    /// Gustavson kernel over the row band `r0..r1`; returns the band's
    /// column indices and values plus the stored-entry count of each row.
    /// Per-row output is independent of the banding (each row accumulates
    /// in the same entry order and emits columns sorted), so stitching the
    /// bands back together reproduces the serial product bitwise.
    fn spmm_band(
        &self,
        other: &CsrMatrix<T>,
        r0: usize,
        r1: usize,
    ) -> (Vec<usize>, Vec<usize>, Vec<T>) {
        let n = other.cols;
        let mut row_lens = Vec::with_capacity(r1 - r0);
        let mut col_idx: Vec<usize> = Vec::new();
        let mut values: Vec<T> = Vec::new();
        // Dense accumulator + occupancy markers: classic Gustavson.
        let mut acc: Vec<T> = vec![T::ZERO; n];
        let mut seen = vec![false; n];
        let mut touched: Vec<usize> = Vec::new();
        for i in r0..r1 {
            let before = col_idx.len();
            for (k, vik) in self.row_entries(i) {
                for (j, vkj) in other.row_entries(k) {
                    if !seen[j] {
                        seen[j] = true;
                        touched.push(j);
                    }
                    acc[j] += vik * vkj;
                }
            }
            touched.sort_unstable();
            for &j in &touched {
                col_idx.push(j);
                values.push(acc[j]);
                acc[j] = T::ZERO;
                seen[j] = false;
            }
            touched.clear();
            row_lens.push(col_idx.len() - before);
        }
        (row_lens, col_idx, values)
    }

    /// Gustavson sparse·sparse product `self @ other`. Large products are
    /// row-banded across the worker pool and the per-band CSR fragments
    /// stitched back together; results are bitwise identical to serial.
    pub fn spmm(&self, other: &CsrMatrix<T>) -> CsrMatrix<T> {
        let _k = KernelSpan::enter("csr.spmm", KernelKind::Csr);
        assert_eq!(
            self.cols, other.rows,
            "CsrMatrix::spmm: inner dimensions disagree: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        // Exact multiply-add count: one pass over our entries, each fanning
        // out to a row of `other`. Only worth computing when a pool exists.
        let par = ahntp_par::threads() > 1 && self.rows >= 2 && {
            let mut flops = 0usize;
            for &k in &self.col_idx {
                flops += other.row_nnz(k);
            }
            ahntp_par::par_enabled(2 * flops)
        };
        let (row_ptr, col_idx, values) = if par {
            record_par("tensor.spmm.par_calls");
            let band = ahntp_par::band_size(self.rows);
            let n_bands = self.rows.div_ceil(band);
            let parts = ahntp_par::par_map(n_bands, |bi| {
                let r0 = bi * band;
                let r1 = (r0 + band).min(self.rows);
                self.spmm_band(other, r0, r1)
            });
            let total: usize = parts.iter().map(|(_, c, _)| c.len()).sum();
            let mut row_ptr = Vec::with_capacity(self.rows + 1);
            row_ptr.push(0usize);
            let mut col_idx = Vec::with_capacity(total);
            let mut values = Vec::with_capacity(total);
            for (row_lens, band_cols, band_vals) in parts {
                for len in row_lens {
                    row_ptr.push(row_ptr.last().unwrap() + len);
                }
                col_idx.extend_from_slice(&band_cols);
                values.extend_from_slice(&band_vals);
            }
            (row_ptr, col_idx, values)
        } else {
            let (row_lens, col_idx, values) = self.spmm_band(other, 0, self.rows);
            let mut row_ptr = Vec::with_capacity(self.rows + 1);
            row_ptr.push(0usize);
            for len in row_lens {
                row_ptr.push(row_ptr.last().unwrap() + len);
            }
            (row_ptr, col_idx, values)
        };
        record_sparse(&SPMM_COUNTERS, self.nnz() + other.nnz(), col_idx.len());
        CsrMatrix {
            rows: self.rows,
            cols: other.cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// `(self @ other) ⊙ mask-pattern` computed without materialising the
    /// full product: for each row, accumulation is restricted to columns
    /// present in `mask`'s row. This is the workhorse of Table II, where
    /// every motif formula has the shape `(X · Y) ⊙ Z`.
    ///
    /// Note: only `mask`'s *pattern* participates; its values are ignored,
    /// matching the Table II convention where the mask is a 0/1 adjacency.
    pub fn spmm_masked(&self, other: &CsrMatrix<T>, mask: &CsrMatrix<T>) -> CsrMatrix<T> {
        let _k = KernelSpan::enter("csr.spmm_masked", KernelKind::Csr);
        assert_eq!(
            self.cols, other.rows,
            "CsrMatrix::spmm_masked: inner dimensions disagree: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            (self.rows, other.cols),
            (mask.rows, mask.cols),
            "CsrMatrix::spmm_masked: mask is {}x{}, product is {}x{}",
            mask.rows,
            mask.cols,
            self.rows,
            other.cols
        );
        let n = other.cols;
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        row_ptr.push(0usize);
        let mut col_idx: Vec<usize> = Vec::new();
        let mut values: Vec<T> = Vec::new();
        // in_mask[j] = true while processing a row whose mask contains j.
        let mut in_mask = vec![false; n];
        let mut acc: Vec<T> = vec![T::ZERO; n];
        for i in 0..self.rows {
            let mask_cols: Vec<usize> = mask.row_entries(i).map(|(c, _)| c).collect();
            if mask_cols.is_empty() {
                row_ptr.push(col_idx.len());
                continue;
            }
            for &c in &mask_cols {
                in_mask[c] = true;
            }
            for (k, vik) in self.row_entries(i) {
                for (j, vkj) in other.row_entries(k) {
                    if in_mask[j] {
                        acc[j] += vik * vkj;
                    }
                }
            }
            for &j in &mask_cols {
                if acc[j] != T::ZERO {
                    col_idx.push(j);
                    values.push(acc[j]);
                    acc[j] = T::ZERO;
                }
                in_mask[j] = false;
            }
            row_ptr.push(col_idx.len());
        }
        record_sparse(
            &SPMM_MASKED_COUNTERS,
            self.nnz() + other.nnz(),
            col_idx.len(),
        );
        CsrMatrix {
            rows: self.rows,
            cols: n,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Gather kernel shared by [`CsrMatrix::mul_dense`] (both paths) and the
    /// parallel [`CsrMatrix::t_mul_dense`]: fills output rows starting at
    /// `row0` with `sum_k self[r][k] * x[k]`, accumulating entries of each
    /// row in ascending-`k` order (with the same `w == 0` skip everywhere),
    /// so the result is independent of how rows are banded across tasks.
    fn gather_rows_into(&self, x: &Tensor, row0: usize, out_band: &mut [f32]) {
        let cols = x.cols();
        let rows = out_band.len().checked_div(cols).unwrap_or(0);
        for bi in 0..rows {
            let out_row = &mut out_band[bi * cols..(bi + 1) * cols];
            for (k, v) in self.row_entries(row0 + bi) {
                let w = v.to_f64() as f32;
                if w == 0.0 {
                    continue;
                }
                for (o, &xv) in out_row.iter_mut().zip(x.row(k)) {
                    *o += w * xv;
                }
            }
        }
    }

    /// Sparse·dense product `self @ x` where `x` is an f32 tensor. The
    /// forward pass of every hypergraph/graph aggregation; output rows are
    /// banded across the worker pool when large enough.
    pub fn mul_dense(&self, x: &Tensor) -> Tensor {
        let _k = KernelSpan::enter("csr.mul_dense", KernelKind::Csr);
        assert_eq!(
            self.cols,
            x.rows(),
            "CsrMatrix::mul_dense: {}x{} @ {}",
            self.rows,
            self.cols,
            x.shape()
        );
        record_sparse(&MUL_DENSE_COUNTERS, self.nnz(), self.nnz() * x.cols());
        let cols = x.cols();
        let mut out = Tensor::zeros(self.rows, cols);
        if ahntp_par::par_enabled(2 * self.nnz() * cols) && self.rows >= 2 {
            record_par("tensor.mul_dense.par_calls");
            let band = ahntp_par::band_size(self.rows);
            ahntp_par::par_chunks(&mut out.data, band * cols, |ci, chunk| {
                self.gather_rows_into(x, ci * band, chunk);
            });
        } else {
            self.gather_rows_into(x, 0, &mut out.data);
        }
        out
    }

    /// `selfᵀ @ x` without materialising the transpose — the backward pass
    /// companion to [`CsrMatrix::mul_dense`].
    ///
    /// The serial path scatters row-by-row. The parallel path transposes
    /// first (O(nnz) counting sort) and gathers per output-row band; the
    /// counting sort emits each transposed row's entries in ascending
    /// former-row order, which is exactly the order the serial scatter
    /// visits them in, so both paths are bitwise identical.
    pub fn t_mul_dense(&self, x: &Tensor) -> Tensor {
        let _k = KernelSpan::enter("csr.t_mul_dense", KernelKind::Csr);
        assert_eq!(
            self.rows,
            x.rows(),
            "CsrMatrix::t_mul_dense: ({}x{})^T @ {}",
            self.rows,
            self.cols,
            x.shape()
        );
        record_sparse(&T_MUL_DENSE_COUNTERS, self.nnz(), self.nnz() * x.cols());
        let cols = x.cols();
        let mut out = Tensor::zeros(self.cols, cols);
        if ahntp_par::par_enabled(2 * self.nnz() * cols) && self.cols >= 2 {
            record_par("tensor.t_mul_dense.par_calls");
            let t = self.transpose();
            let band = ahntp_par::band_size(t.rows);
            ahntp_par::par_chunks(&mut out.data, band * cols, |ci, chunk| {
                t.gather_rows_into(x, ci * band, chunk);
            });
            return out;
        }
        for r in 0..self.rows {
            let x_row: Vec<f32> = x.row(r).to_vec();
            for (c, v) in self.row_entries(r) {
                let w = v.to_f64() as f32;
                if w == 0.0 {
                    continue;
                }
                let o = out.row_mut(c);
                for (ov, &xv) in o.iter_mut().zip(&x_row) {
                    *ov += w * xv;
                }
            }
        }
        out
    }

    /// Sparse·vector product in the scalar's own precision (used by the
    /// f64 PageRank power iteration). Each output element is one row dot
    /// product, so banding the output across the pool changes nothing.
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        let _k = KernelSpan::enter("csr.mul_vec", KernelKind::Csr);
        assert_eq!(
            self.cols,
            x.len(),
            "CsrMatrix::mul_vec: {}x{} @ [{}]",
            self.rows,
            self.cols,
            x.len()
        );
        let mut out = vec![T::ZERO; self.rows];
        if ahntp_par::par_enabled(2 * self.nnz()) && self.rows >= 2 {
            record_par("tensor.mul_vec.par_calls");
            let band = ahntp_par::band_size(self.rows);
            ahntp_par::par_chunks(&mut out, band, |ci, chunk| {
                for (bi, o) in chunk.iter_mut().enumerate() {
                    let mut acc = T::ZERO;
                    for (c, v) in self.row_entries(ci * band + bi) {
                        acc += v * x[c];
                    }
                    *o = acc;
                }
            });
            return out;
        }
        for (r, o) in out.iter_mut().enumerate() {
            let mut acc = T::ZERO;
            for (c, v) in self.row_entries(r) {
                acc += v * x[c];
            }
            *o = acc;
        }
        out
    }

    /// `selfᵀ @ x` as a vector product (PageRank uses `T_pᵀ s`).
    pub fn t_mul_vec(&self, x: &[T]) -> Vec<T> {
        let _k = KernelSpan::enter("csr.t_mul_vec", KernelKind::Csr);
        assert_eq!(
            self.rows,
            x.len(),
            "CsrMatrix::t_mul_vec: ({}x{})^T @ [{}]",
            self.rows,
            self.cols,
            x.len()
        );
        let mut out = vec![T::ZERO; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            for (c, v) in self.row_entries(r) {
                out[c] += v * xr;
            }
        }
        out
    }

    /// Converts the value type (e.g. f64 motif counts → f32 weights).
    pub fn cast<U: Scalar>(&self) -> CsrMatrix<U> {
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self.values.iter().map(|&v| U::from_f64(v.to_f64())).collect(),
        }
    }

    /// Scales every entry of row `r` by `factors[r]` (pattern unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `factors.len() != self.rows()`.
    pub fn scale_rows(&self, factors: &[T]) -> CsrMatrix<T> {
        assert_eq!(
            factors.len(),
            self.rows,
            "CsrMatrix::scale_rows: {} factors for {} rows",
            factors.len(),
            self.rows
        );
        let mut out = self.clone();
        for (r, &f) in factors.iter().enumerate() {
            let (lo, hi) = (out.row_ptr[r], out.row_ptr[r + 1]);
            for v in &mut out.values[lo..hi] {
                *v = *v * f;
            }
        }
        out
    }

    /// Extracts the submatrix whose row `i` is `self`'s row `rows[i]`
    /// (sub-incidence extraction for mini-batch hyperedge sampling).
    ///
    /// Rows may be requested in any order and may repeat; empty source rows
    /// yield empty output rows. The column dimension is unchanged. Large
    /// extractions are row-banded across the worker pool; per-row output is
    /// a verbatim copy of the source row, so the result is bitwise identical
    /// to serial at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if any requested row index is out of range.
    pub fn select_rows(&self, rows: &[usize]) -> CsrMatrix<T> {
        for (i, &r) in rows.iter().enumerate() {
            assert!(
                r < self.rows,
                "CsrMatrix::select_rows: rows[{i}] = {r} out of range for {} rows",
                self.rows
            );
        }
        let nnz_out: usize = rows.iter().map(|&r| self.row_nnz(r)).sum();
        let build_band = |i0: usize, i1: usize| -> (Vec<usize>, Vec<usize>, Vec<T>) {
            let mut row_lens = Vec::with_capacity(i1 - i0);
            let mut col_idx = Vec::new();
            let mut values = Vec::new();
            for &r in &rows[i0..i1] {
                let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
                col_idx.extend_from_slice(&self.col_idx[lo..hi]);
                values.extend_from_slice(&self.values[lo..hi]);
                row_lens.push(hi - lo);
            }
            (row_lens, col_idx, values)
        };
        let par = ahntp_par::threads() > 1 && rows.len() >= 2 && ahntp_par::par_enabled(nnz_out);
        let parts = if par {
            record_par("tensor.select_rows.par_calls");
            let band = ahntp_par::band_size(rows.len());
            let n_bands = rows.len().div_ceil(band);
            ahntp_par::par_map(n_bands, |bi| {
                let i0 = bi * band;
                let i1 = (i0 + band).min(rows.len());
                build_band(i0, i1)
            })
        } else {
            vec![build_band(0, rows.len())]
        };
        let out = Self::stitch_bands(rows.len(), self.cols, parts);
        record_sparse(&SELECT_ROWS_COUNTERS, self.nnz(), out.nnz());
        out
    }

    /// Extracts the submatrix whose column `j` is `self`'s column `cols[j]`
    /// (incidence-slice extraction along the hyperedge axis).
    ///
    /// Columns may be requested out of order and may repeat; the output is
    /// always well-formed CSR (strictly increasing columns per row), with
    /// `cols.len()` columns and the same number of rows. Rows with no entry
    /// in any requested column come out empty. Large extractions are
    /// row-banded across the worker pool and bitwise identical to serial.
    ///
    /// # Panics
    ///
    /// Panics if any requested column index is out of range.
    pub fn select_cols(&self, cols: &[usize]) -> CsrMatrix<T> {
        // Old column → every new position it was requested at (duplicates
        // allowed). Within one output row each new position receives at most
        // one entry, so sorting by new position restores the CSR invariant
        // even for out-of-order requests.
        let mut lookup: Vec<Vec<usize>> = vec![Vec::new(); self.cols];
        for (j, &c) in cols.iter().enumerate() {
            assert!(
                c < self.cols,
                "CsrMatrix::select_cols: cols[{j}] = {c} out of range for {} columns",
                self.cols
            );
            lookup[c].push(j);
        }
        let build_band = |r0: usize, r1: usize| -> (Vec<usize>, Vec<usize>, Vec<T>) {
            let mut row_lens = Vec::with_capacity(r1 - r0);
            let mut col_idx = Vec::new();
            let mut values = Vec::new();
            let mut entries: Vec<(usize, T)> = Vec::new();
            for r in r0..r1 {
                entries.clear();
                for (c, v) in self.row_entries(r) {
                    for &j in &lookup[c] {
                        entries.push((j, v));
                    }
                }
                entries.sort_unstable_by_key(|&(j, _)| j);
                for &(j, v) in &entries {
                    col_idx.push(j);
                    values.push(v);
                }
                row_lens.push(entries.len());
            }
            (row_lens, col_idx, values)
        };
        let par =
            ahntp_par::threads() > 1 && self.rows >= 2 && ahntp_par::par_enabled(self.nnz());
        let parts = if par {
            record_par("tensor.select_cols.par_calls");
            let band = ahntp_par::band_size(self.rows);
            let n_bands = self.rows.div_ceil(band);
            ahntp_par::par_map(n_bands, |bi| {
                let r0 = bi * band;
                let r1 = (r0 + band).min(self.rows);
                build_band(r0, r1)
            })
        } else {
            vec![build_band(0, self.rows)]
        };
        let out = Self::stitch_bands(self.rows, cols.len(), parts);
        record_sparse(&SELECT_COLS_COUNTERS, self.nnz(), out.nnz());
        out
    }

    /// Reassembles per-band `(row_lens, col_idx, values)` fragments into one
    /// CSR matrix (the same stitching as [`CsrMatrix::spmm`]).
    fn stitch_bands(
        rows: usize,
        cols: usize,
        parts: Vec<(Vec<usize>, Vec<usize>, Vec<T>)>,
    ) -> CsrMatrix<T> {
        let total: usize = parts.iter().map(|(_, c, _)| c.len()).sum();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::with_capacity(total);
        let mut values = Vec::with_capacity(total);
        for (row_lens, band_cols, band_vals) in parts {
            for len in row_lens {
                row_ptr.push(row_ptr.last().unwrap() + len);
            }
            col_idx.extend_from_slice(&band_cols);
            values.extend_from_slice(&band_vals);
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Row-normalises so each nonempty row sums to 1 (a right-stochastic
    /// transition matrix, Eq. 1 of the paper).
    pub fn row_normalized(&self) -> CsrMatrix<T> {
        let sums = self.row_sums();
        let mut out = self.clone();
        for (r, sum) in sums.iter().enumerate() {
            let s = sum.to_f64();
            if s != 0.0 {
                let lo = out.row_ptr[r];
                let hi = out.row_ptr[r + 1];
                for v in &mut out.values[lo..hi] {
                    *v = T::from_f64(v.to_f64() / s);
                }
            }
        }
        out
    }

    /// Asserts `entries` forms a valid CSR row: strictly increasing
    /// columns, all `< cols`.
    fn check_row_entries(entries: &[(usize, T)], cols: usize, op: &str) {
        for w in entries.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "CsrMatrix::{op}: columns not strictly increasing ({} then {})",
                w[0].0,
                w[1].0
            );
        }
        if let Some(&(last, _)) = entries.last() {
            assert!(last < cols, "CsrMatrix::{op}: column {last} >= cols {cols}");
        }
    }

    /// Replaces the stored entries of row `r` in place (an `O(nnz)`
    /// splice). The delta-maintenance path of `AggregationCache` uses this
    /// to patch exactly the incidence-operator rows a hypergraph mutation
    /// touches.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range or `entries` is not a valid CSR row
    /// (strictly increasing columns, all `< cols`).
    pub fn set_row(&mut self, r: usize, entries: &[(usize, T)]) {
        assert!(
            r < self.rows,
            "CsrMatrix::set_row: row {r} out of range for {} rows",
            self.rows
        );
        Self::check_row_entries(entries, self.cols, "set_row");
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        self.col_idx.splice(lo..hi, entries.iter().map(|&(c, _)| c));
        self.values.splice(lo..hi, entries.iter().map(|&(_, v)| v));
        let delta = entries.len() as isize - (hi - lo) as isize;
        if delta != 0 {
            for p in &mut self.row_ptr[r + 1..] {
                *p = (*p as isize + delta) as usize;
            }
        }
        debug_assert_eq!(self.validate(), Ok(()));
    }

    /// Appends one row at index `rows()` with the given entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a valid CSR row.
    pub fn push_row(&mut self, entries: &[(usize, T)]) {
        Self::check_row_entries(entries, self.cols, "push_row");
        self.col_idx.extend(entries.iter().map(|&(c, _)| c));
        self.values.extend(entries.iter().map(|&(_, v)| v));
        self.rows += 1;
        self.row_ptr.push(self.col_idx.len());
        debug_assert_eq!(self.validate(), Ok(()));
    }

    /// Removes row `r` by moving the last row into its place and shrinking
    /// the matrix by one row — the row analogue of `Vec::swap_remove`,
    /// mirroring `Hypergraph::remove_edge`'s hyperedge-id reuse.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn swap_remove_row(&mut self, r: usize) {
        assert!(
            r < self.rows,
            "CsrMatrix::swap_remove_row: row {r} out of range for {} rows",
            self.rows
        );
        let last = self.rows - 1;
        if r != last {
            let (lo, hi) = (self.row_ptr[last], self.row_ptr[last + 1]);
            let moved: Vec<(usize, T)> = self.col_idx[lo..hi]
                .iter()
                .copied()
                .zip(self.values[lo..hi].iter().copied())
                .collect();
            self.set_row(r, &moved);
        }
        let cut = self.row_ptr[last];
        self.col_idx.truncate(cut);
        self.values.truncate(cut);
        self.row_ptr.truncate(last + 1);
        self.rows = last;
        debug_assert_eq!(self.validate(), Ok(()));
    }

    /// Changes the column count in place (grow or shrink). Used when a
    /// hyperedge is added to or removed from an incidence-shaped matrix.
    ///
    /// # Panics
    ///
    /// Panics if any stored entry's column is `>= cols`.
    pub fn set_cols(&mut self, cols: usize) {
        if let Some(&max) = self.col_idx.iter().max() {
            assert!(
                max < cols,
                "CsrMatrix::set_cols: stored column {max} >= new cols {cols}"
            );
        }
        self.cols = cols;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix<f64> {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)])
            .unwrap()
    }

    #[test]
    fn from_triplets_sums_duplicates_and_sorts() {
        let m =
            CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (0, 0, 2.0), (0, 1, 3.0)]).unwrap();
        m.validate().unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(0, 1), 4.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn from_triplets_rejects_out_of_bounds() {
        let e = CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).unwrap_err();
        assert!(matches!(e, TensorError::IndexOutOfBounds { row: 2, .. }));
    }

    #[test]
    fn dense_roundtrip() {
        let m = small();
        let d = m.to_dense();
        assert_eq!(d.get(2, 1), 4.0);
        let back: CsrMatrix<f32> = CsrMatrix::<f32>::from_dense(&d);
        assert_eq!(back.nnz(), 4);
        assert_eq!(back.get(0, 2), 2.0);
    }

    #[test]
    fn transpose_roundtrip_and_entries() {
        let m = small();
        let t = m.transpose();
        t.validate().unwrap();
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(1, 2), 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn add_sub_hadamard() {
        let a = small();
        let b = CsrMatrix::from_triplets(3, 3, &[(0, 0, 10.0), (1, 1, 5.0)]).unwrap();
        let s = a.add(&b);
        assert_eq!(s.get(0, 0), 11.0);
        assert_eq!(s.get(1, 1), 5.0);
        assert_eq!(s.get(0, 2), 2.0);
        let d = a.sub(&b);
        assert_eq!(d.get(0, 0), -9.0);
        assert_eq!(d.get(1, 1), -5.0);
        let h = a.hadamard(&b);
        assert_eq!(h.nnz(), 1);
        assert_eq!(h.get(0, 0), 10.0);
    }

    #[test]
    fn sub_then_prune_drops_cancelled_entries() {
        let a = small();
        let d = a.sub(&a);
        assert_eq!(d.nnz(), 4); // explicit zeros
        assert_eq!(d.prune().nnz(), 0);
    }

    #[test]
    fn set_row_splices_in_place() {
        let mut m = small();
        m.set_row(0, &[(1, 7.0)]); // shrink row 0 from 2 entries to 1
        m.validate().unwrap();
        assert_eq!(m.get(0, 1), 7.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(2, 1), 4.0); // later rows untouched
        m.set_row(1, &[(0, 1.0), (2, 2.0)]); // grow the empty row
        m.validate().unwrap();
        assert_eq!(m.get(1, 2), 2.0);
        assert_eq!(m.nnz(), 5);
        m.set_row(2, &[]); // clear a row
        m.validate().unwrap();
        assert_eq!(m.row_nnz(2), 0);
    }

    #[test]
    fn push_and_swap_remove_rows() {
        let mut m = small();
        m.push_row(&[(0, 9.0), (1, 8.0)]);
        m.validate().unwrap();
        assert_eq!(m.rows(), 4);
        assert_eq!(m.get(3, 0), 9.0);
        // Remove row 0: the pushed last row moves into its slot.
        m.swap_remove_row(0);
        m.validate().unwrap();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.get(0, 1), 8.0);
        assert_eq!(m.get(2, 0), 3.0);
        // Removing the last row is a plain truncation.
        m.swap_remove_row(2);
        m.validate().unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn set_cols_resizes_and_guards() {
        let mut m = small();
        m.set_cols(5);
        m.validate().unwrap();
        assert_eq!(m.cols(), 5);
        m.set_row(0, &[(4, 1.0)]);
        m.validate().unwrap();
        let shrink = std::panic::catch_unwind(move || {
            m.set_cols(3); // column 4 is stored → must panic
        });
        assert!(shrink.is_err());
    }

    #[test]
    fn set_row_rejects_bad_rows() {
        let m = small();
        for bad in [
            vec![(1usize, 1.0f64), (1, 2.0)], // duplicate column
            vec![(2, 1.0), (0, 2.0)],         // out of order
            vec![(3, 1.0)],                   // out of range
        ] {
            let mut m = m.clone();
            assert!(std::panic::catch_unwind(move || m.set_row(0, &bad)).is_err());
        }
    }

    #[test]
    fn spmm_matches_dense() {
        let a = small();
        let b = a.transpose();
        let c = a.spmm(&b);
        c.validate().unwrap();
        let dense = a.to_dense().matmul(&b.to_dense());
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (c.get(i, j) as f32 - dense.get(i, j)).abs() < 1e-6,
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn spmm_masked_equals_spmm_then_hadamard_pattern() {
        let a = small();
        let b = a.transpose();
        let mask =
            CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (0, 1, 1.0), (2, 2, 1.0)]).unwrap();
        let fused = a.spmm_masked(&b, &mask);
        fused.validate().unwrap();
        let reference = a.spmm(&b).hadamard(&mask.map_values(|_| 1.0));
        assert_eq!(fused.to_dense(), reference.to_dense());
    }

    #[test]
    fn mul_dense_and_t_mul_dense_match_dense_matmul() {
        let m = small().cast::<f32>();
        let x = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.mul_dense(&x), m.to_dense().matmul(&x));
        assert_eq!(m.t_mul_dense(&x), m.to_dense().transpose().matmul(&x));
    }

    #[test]
    fn vec_products() {
        let m = small();
        let v = vec![1.0, 1.0, 1.0];
        assert_eq!(m.mul_vec(&v), vec![3.0, 0.0, 7.0]);
        assert_eq!(m.t_mul_vec(&v), vec![4.0, 4.0, 2.0]);
    }

    #[test]
    fn row_normalized_rows_sum_to_one() {
        let m = small().row_normalized();
        let sums = m.row_sums();
        assert!((sums[0] - 1.0).abs() < 1e-12);
        assert_eq!(sums[1], 0.0); // empty row stays empty
        assert!((sums[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degree_sums() {
        let m = small();
        assert_eq!(m.row_sums(), vec![3.0, 0.0, 7.0]);
        assert_eq!(m.col_sums(), vec![4.0, 4.0, 2.0]);
    }

    #[test]
    fn identity_is_spmm_neutral() {
        let m = small();
        let i = CsrMatrix::<f64>::identity(3);
        assert_eq!(m.spmm(&i).to_dense(), m.to_dense());
        assert_eq!(i.spmm(&m).to_dense(), m.to_dense());
    }

    #[test]
    fn filter_and_map_values() {
        let m = small();
        let big = m.filter(|_, _, v| v >= 3.0);
        assert_eq!(big.nnz(), 2);
        let scaled = m.scale(2.0);
        assert_eq!(scaled.get(2, 1), 8.0);
    }

    #[test]
    fn scale_rows_scales_each_row_independently() {
        let m = small();
        let s = m.scale_rows(&[2.0, 10.0, 0.5]);
        s.validate().unwrap();
        assert_eq!(s.get(0, 0), 2.0);
        assert_eq!(s.get(0, 2), 4.0);
        assert_eq!(s.get(2, 0), 1.5);
        assert_eq!(s.get(2, 1), 2.0);
        // The empty row stays empty regardless of its factor.
        assert_eq!(s.row_nnz(1), 0);
    }

    #[test]
    #[should_panic(expected = "scale_rows")]
    fn scale_rows_rejects_wrong_factor_count() {
        small().scale_rows(&[1.0, 2.0]);
    }

    #[test]
    fn select_rows_any_order_with_repeats_and_empty_rows() {
        let m = small();
        // Out of order, with a repeat, and including the empty row.
        let s = m.select_rows(&[2, 1, 0, 2]);
        s.validate().unwrap();
        assert_eq!((s.rows(), s.cols()), (4, 3));
        assert_eq!(s.row_nnz(0), 2);
        assert_eq!(s.row_nnz(1), 0); // source row 1 is empty
        assert_eq!(s.get(0, 1), 4.0);
        assert_eq!(s.get(2, 2), 2.0);
        assert_eq!(s.get(3, 0), 3.0); // repeated request copies again
    }

    #[test]
    fn select_rows_identity_is_verbatim() {
        let m = small();
        assert_eq!(m.select_rows(&[0, 1, 2]), m);
        // Empty selection: a well-formed 0 × cols matrix.
        let none = m.select_rows(&[]);
        none.validate().unwrap();
        assert_eq!((none.rows(), none.cols(), none.nnz()), (0, 3, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn select_rows_rejects_out_of_range() {
        small().select_rows(&[0, 3]);
    }

    #[test]
    fn select_cols_out_of_order_yields_well_formed_csr() {
        let m = small();
        // Columns requested out of order: per-row entries must come back
        // sorted by the *new* positions or validate() fails.
        let s = m.select_cols(&[2, 0]);
        s.validate().unwrap();
        assert_eq!((s.rows(), s.cols()), (3, 2));
        assert_eq!(s.get(0, 0), 2.0); // old col 2
        assert_eq!(s.get(0, 1), 1.0); // old col 0
        assert_eq!(s.row_nnz(1), 0);
        assert_eq!(s.get(2, 1), 3.0);
        assert_eq!(s.get(2, 0), 0.0); // old col 2 empty in row 2
    }

    #[test]
    fn select_cols_with_repeats_and_identity() {
        let m = small();
        let s = m.select_cols(&[1, 1, 0]);
        s.validate().unwrap();
        assert_eq!((s.rows(), s.cols()), (3, 3));
        assert_eq!(s.get(2, 0), 4.0);
        assert_eq!(s.get(2, 1), 4.0); // duplicated column
        assert_eq!(s.get(2, 2), 3.0);
        assert_eq!(m.select_cols(&[0, 1, 2]), m);
        // Empty selection drops every entry but keeps the row structure.
        let none = m.select_cols(&[]);
        none.validate().unwrap();
        assert_eq!((none.rows(), none.cols(), none.nnz()), (3, 0, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn select_cols_rejects_out_of_range() {
        small().select_cols(&[0, 5]);
    }

    #[test]
    fn selections_match_dense_reference() {
        let m = small().cast::<f32>();
        let rows = [2usize, 0, 2];
        let cols = [1usize, 2, 0, 1];
        let sr = m.select_rows(&rows);
        let sc = m.select_cols(&cols);
        let d = m.to_dense();
        for (i, &r) in rows.iter().enumerate() {
            for j in 0..3 {
                assert_eq!(sr.get(i, j), d.get(r, j), "select_rows ({i},{j})");
            }
        }
        for i in 0..3 {
            for (j, &c) in cols.iter().enumerate() {
                assert_eq!(sc.get(i, j), d.get(i, c), "select_cols ({i},{j})");
            }
        }
    }
}
