//! Bitwise determinism of every parallelized kernel.
//!
//! The `ahntp-par` contract is that banding work across the pool never
//! changes results — not "close", *bitwise identical* — because every
//! output element is produced by exactly one task with the serial
//! accumulation order. These tests force the parallel path (threshold 0)
//! and compare each kernel at 1, 2, and 7 threads against the serial
//! result, including ragged shapes with fewer rows than threads.
//!
//! Tests in this binary share the process-wide pool configuration, so a
//! static mutex serializes them.

use std::sync::Mutex;

use ahntp_tensor::{CsrMatrix, Tensor};

static POOL_CONFIG: Mutex<()> = Mutex::new(());

/// Thread counts exercised: serial fallback, even split, and a count
/// larger than some test shapes' row counts.
const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

/// Runs `compute` at every thread count with the parallel threshold
/// forced to zero and asserts the f32 outputs are bitwise identical to
/// the 1-thread (exact serial) result.
fn assert_bitwise_stable(what: &str, compute: impl Fn() -> Vec<f32>) {
    let _guard = POOL_CONFIG.lock().unwrap_or_else(|e| e.into_inner());
    let old_threshold = ahntp_par::par_threshold();
    let old_threads = ahntp_par::threads();
    ahntp_par::set_par_threshold(0);
    let mut reference: Option<Vec<u32>> = None;
    for &t in &THREAD_COUNTS {
        ahntp_par::set_threads(t);
        let bits: Vec<u32> = compute().iter().map(|v| v.to_bits()).collect();
        match &reference {
            None => reference = Some(bits),
            Some(want) => assert_eq!(
                want, &bits,
                "{what}: result at {t} threads differs from serial"
            ),
        }
    }
    ahntp_par::set_par_threshold(old_threshold);
    ahntp_par::set_threads(old_threads);
}

/// Deterministic pseudo-random matrix without pulling in a RNG: values
/// mix positives, negatives, and exact zeros (to exercise the zero-skip
/// branches in matmul and the sparse gathers).
fn dense(rows: usize, cols: usize, salt: u32) -> Tensor {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
            if h % 5 == 0 {
                0.0
            } else {
                (h % 1000) as f32 / 500.0 - 1.0
            }
        })
        .collect();
    Tensor::from_vec(rows, cols, data).expect("length matches by construction")
}

fn sparse(rows: usize, cols: usize, salt: u32) -> CsrMatrix<f32> {
    CsrMatrix::from_dense(&dense(rows, cols, salt))
}

/// Shapes chosen so banding is ragged: row counts below, at, and above
/// the 7-thread band count, plus single-row and tall-thin cases.
const SHAPES: [(usize, usize, usize); 4] = [
    (3, 5, 4),   // fewer rows than threads
    (7, 7, 7),   // exactly one row per band at 7 threads
    (13, 6, 9),  // ragged final band
    (40, 17, 8), // several rows per band
];

#[test]
fn dense_products_are_bitwise_stable() {
    for &(m, k, n) in &SHAPES {
        let a = dense(m, k, 1);
        let b = dense(k, n, 2);
        assert_bitwise_stable(&format!("matmul {m}x{k}x{n}"), || {
            a.matmul(&b).as_slice().to_vec()
        });
        let at = dense(k, m, 3);
        assert_bitwise_stable(&format!("t_matmul {m}x{k}x{n}"), || {
            at.t_matmul(&b).as_slice().to_vec()
        });
        let bt = dense(n, k, 4);
        assert_bitwise_stable(&format!("matmul_t {m}x{k}x{n}"), || {
            a.matmul_t(&bt).as_slice().to_vec()
        });
    }
}

#[test]
fn sparse_kernels_are_bitwise_stable() {
    for &(m, k, n) in &SHAPES {
        let s = sparse(m, k, 5);
        let x = dense(k, n, 6);
        assert_bitwise_stable(&format!("mul_dense {m}x{k}x{n}"), || {
            s.mul_dense(&x).as_slice().to_vec()
        });
        let y = dense(m, n, 7);
        assert_bitwise_stable(&format!("t_mul_dense {m}x{k}x{n}"), || {
            s.t_mul_dense(&y).as_slice().to_vec()
        });
        let v: Vec<f32> = (0..k).map(|i| i as f32 * 0.25 - 1.0).collect();
        assert_bitwise_stable(&format!("mul_vec {m}x{k}"), || s.mul_vec(&v));
        let t = sparse(k, n, 8);
        assert_bitwise_stable(&format!("spmm {m}x{k}x{n}"), || {
            let p = s.spmm(&t);
            p.validate().expect("spmm output is valid CSR");
            p.to_dense().as_slice().to_vec()
        });
    }
}

#[test]
fn spmm_parallel_stitching_preserves_structure() {
    // Structure (row_ptr / col_idx), not just values, must be banding
    // independent — the CSR fragments are concatenated across bands.
    let _guard = POOL_CONFIG.lock().unwrap_or_else(|e| e.into_inner());
    let old_threshold = ahntp_par::par_threshold();
    let old_threads = ahntp_par::threads();
    ahntp_par::set_par_threshold(0);
    let a = sparse(13, 9, 11);
    let b = sparse(9, 12, 12);
    ahntp_par::set_threads(1);
    let serial = a.spmm(&b);
    for t in [2, 7] {
        ahntp_par::set_threads(t);
        let par = a.spmm(&b);
        assert_eq!(serial.row_ptr(), par.row_ptr(), "row_ptr at {t} threads");
        assert_eq!(serial.col_indices(), par.col_indices(), "col_idx at {t} threads");
        assert_eq!(serial.values(), par.values(), "values at {t} threads");
    }
    ahntp_par::set_par_threshold(old_threshold);
    ahntp_par::set_threads(old_threads);
}

#[test]
fn elementwise_ops_are_bitwise_stable() {
    for &(m, _, n) in &SHAPES {
        let a = dense(m, n, 13);
        let b = dense(m, n, 14);
        assert_bitwise_stable(&format!("map {m}x{n}"), || {
            a.map(|v| (v * 1.7).tanh()).as_slice().to_vec()
        });
        assert_bitwise_stable(&format!("zip {m}x{n}"), || {
            a.zip(&b, |x, y| x * y + 0.5).as_slice().to_vec()
        });
        assert_bitwise_stable(&format!("axpy {m}x{n}"), || {
            let mut c = a.clone();
            c.axpy_inplace(-0.3, &b);
            c.as_slice().to_vec()
        });
        let bias = dense(1, n, 15).row(0).to_vec();
        assert_bitwise_stable(&format!("add_row_broadcast {m}x{n}"), || {
            a.add_row_broadcast(&Tensor::vector(bias.clone()))
                .as_slice()
                .to_vec()
        });
        let scales = dense(1, m, 16).row(0).to_vec();
        assert_bitwise_stable(&format!("scale_rows {m}x{n}"), || {
            a.scale_rows(&Tensor::vector(scales.clone()))
                .as_slice()
                .to_vec()
        });
    }
}

#[test]
fn row_reductions_are_bitwise_stable() {
    for &(m, _, n) in &SHAPES {
        let a = dense(m, n, 17);
        assert_bitwise_stable(&format!("row_sums {m}x{n}"), || {
            a.row_sums().as_slice().to_vec()
        });
        assert_bitwise_stable(&format!("row_norms {m}x{n}"), || {
            a.row_norms().as_slice().to_vec()
        });
        assert_bitwise_stable(&format!("softmax_rows {m}x{n}"), || {
            a.softmax_rows().as_slice().to_vec()
        });
        assert_bitwise_stable(&format!("normalize_rows {m}x{n}"), || {
            a.normalize_rows().as_slice().to_vec()
        });
    }
}

#[test]
fn f64_mul_vec_is_bitwise_stable() {
    // The PageRank path runs in f64; check that precision too.
    let _guard = POOL_CONFIG.lock().unwrap_or_else(|e| e.into_inner());
    let old_threshold = ahntp_par::par_threshold();
    let old_threads = ahntp_par::threads();
    ahntp_par::set_par_threshold(0);
    let s: CsrMatrix<f64> = CsrMatrix::from_dense(&dense(23, 11, 19));
    let v: Vec<f64> = (0..11).map(|i| f64::from(i as u32) * 0.125 - 0.5).collect();
    ahntp_par::set_threads(1);
    let serial: Vec<u64> = s.mul_vec(&v).iter().map(|x| x.to_bits()).collect();
    for t in [2, 7] {
        ahntp_par::set_threads(t);
        let par: Vec<u64> = s.mul_vec(&v).iter().map(|x| x.to_bits()).collect();
        assert_eq!(serial, par, "f64 mul_vec at {t} threads");
    }
    ahntp_par::set_par_threshold(old_threshold);
    ahntp_par::set_threads(old_threads);
}
