//! Property-based tests for dense and sparse kernels.
//!
//! These pin down the algebraic identities the autograd layer and the motif
//! pipeline rely on: agreement between sparse and dense code paths,
//! transpose involution, distributivity, and softmax/normalisation
//! invariants.

use ahntp_tensor::{CsrMatrix, Tensor};
use proptest::prelude::*;

const DIM: usize = 6;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(rows, cols, v).expect("length matches by construction"))
}

/// Sparse matrices via a dense sample with ~60% zeros.
fn arb_sparse(rows: usize, cols: usize) -> impl Strategy<Value = CsrMatrix<f64>> {
    proptest::collection::vec(
        prop_oneof![
            3 => Just(0.0f32),
            2 => -5.0f32..5.0f32,
        ],
        rows * cols,
    )
    .prop_map(move |v| {
        let t = Tensor::from_vec(rows, cols, v).expect("length matches");
        CsrMatrix::<f64>::from_dense(&t)
    })
}

fn assert_close(a: &Tensor, b: &Tensor, tol: f32, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shapes differ");
    for (i, (&x, &y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert!(
            (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
            "{what}: element {i} differs: {x} vs {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_associative(a in arb_matrix(4, 3), b in arb_matrix(3, 5), c in arb_matrix(5, 2)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert_close(&left, &right, 1e-3, "associativity");
    }

    #[test]
    fn matmul_distributes_over_add(a in arb_matrix(3, 4), b in arb_matrix(4, 3), c in arb_matrix(4, 3)) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        assert_close(&left, &right, 1e-3, "distributivity");
    }

    #[test]
    fn transpose_reverses_product(a in arb_matrix(3, 4), b in arb_matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        assert_close(&left, &right, 1e-4, "(AB)^T = B^T A^T");
    }

    #[test]
    fn fused_transpose_kernels_agree(a in arb_matrix(4, 3), b in arb_matrix(4, 2), c in arb_matrix(5, 3)) {
        assert_close(&a.t_matmul(&b), &a.transpose().matmul(&b), 1e-4, "t_matmul");
        assert_close(&a.matmul_t(&c), &a.matmul(&c.transpose()), 1e-4, "matmul_t");
    }

    #[test]
    fn softmax_rows_are_distributions(a in arb_matrix(4, 5)) {
        let s = a.softmax_rows();
        prop_assert!(s.all_finite());
        for r in 0..4 {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(a in arb_matrix(3, 4), shift in -5.0f32..5.0) {
        let s1 = a.softmax_rows();
        let s2 = a.add_scalar(shift).softmax_rows();
        assert_close(&s1, &s2, 1e-4, "softmax shift invariance");
    }

    #[test]
    fn normalize_rows_is_idempotent(a in arb_matrix(4, 3)) {
        let n1 = a.normalize_rows();
        let n2 = n1.normalize_rows();
        assert_close(&n1, &n2, 1e-5, "normalize idempotence");
    }

    #[test]
    fn concat_split_roundtrip(a in arb_matrix(3, 2), b in arb_matrix(3, 4)) {
        let c = Tensor::concat_cols(&[&a, &b]);
        let parts = c.split_cols(&[2, 4]);
        assert_close(&parts[0], &a, 0.0, "split lhs");
        assert_close(&parts[1], &b, 0.0, "split rhs");
    }

    #[test]
    fn sparse_roundtrip_preserves_dense(m in arb_sparse(DIM, DIM)) {
        let d = m.to_dense();
        let back = CsrMatrix::<f64>::from_dense(&d);
        prop_assert_eq!(back.to_dense(), d);
        prop_assert!(back.validate().is_ok());
    }

    #[test]
    fn sparse_transpose_involution(m in arb_sparse(DIM, DIM)) {
        prop_assert_eq!(m.transpose().transpose().to_dense(), m.to_dense());
        prop_assert!(m.transpose().validate().is_ok());
    }

    #[test]
    fn spmm_agrees_with_dense(a in arb_sparse(5, 6), b in arb_sparse(6, 4)) {
        let sparse = a.spmm(&b).to_dense();
        let dense = a.to_dense().matmul(&b.to_dense());
        assert_close(&sparse, &dense, 1e-4, "spmm vs dense");
        prop_assert!(a.spmm(&b).validate().is_ok());
    }

    #[test]
    fn spmm_masked_agrees_with_unfused(
        a in arb_sparse(5, 5), b in arb_sparse(5, 5), mask in arb_sparse(5, 5)
    ) {
        let pattern = mask.map_values(|_| 1.0);
        let fused = a.spmm_masked(&b, &mask).to_dense();
        let unfused = a.spmm(&b).hadamard(&pattern).to_dense();
        assert_close(&fused, &unfused, 1e-4, "masked spmm");
    }

    #[test]
    fn sparse_add_sub_match_dense(a in arb_sparse(DIM, DIM), b in arb_sparse(DIM, DIM)) {
        assert_close(&a.add(&b).to_dense(), &a.to_dense().add(&b.to_dense()), 1e-5, "add");
        assert_close(&a.sub(&b).to_dense(), &a.to_dense().sub(&b.to_dense()), 1e-5, "sub");
        prop_assert!(a.add(&b).validate().is_ok());
        prop_assert!(a.sub(&b).validate().is_ok());
    }

    #[test]
    fn sparse_hadamard_matches_dense(a in arb_sparse(DIM, DIM), b in arb_sparse(DIM, DIM)) {
        assert_close(&a.hadamard(&b).to_dense(), &a.to_dense().mul(&b.to_dense()), 1e-5, "hadamard");
    }

    #[test]
    fn mul_dense_matches_dense_matmul(m in arb_sparse(5, 6), x in arb_matrix(6, 3)) {
        let mf = m.cast::<f32>();
        assert_close(&mf.mul_dense(&x), &mf.to_dense().matmul(&x), 1e-4, "mul_dense");
        let y = arb_matrix(5, 3);
        let _ = y; // t_mul_dense covered below with x-compatible shape
    }

    #[test]
    fn t_mul_dense_matches_dense(m in arb_sparse(5, 6), x in arb_matrix(5, 3)) {
        let mf = m.cast::<f32>();
        assert_close(
            &mf.t_mul_dense(&x),
            &mf.to_dense().transpose().matmul(&x),
            1e-4,
            "t_mul_dense",
        );
    }

    #[test]
    fn row_normalized_rows_are_stochastic(m in arb_sparse(DIM, DIM)) {
        let positive = m.map_values(f64::abs).prune();
        let n = positive.row_normalized();
        for (r, s) in n.row_sums().iter().enumerate() {
            if positive.row_nnz(r) > 0 {
                prop_assert!((s - 1.0).abs() < 1e-9, "row {r} sums to {s}");
            } else {
                prop_assert_eq!(*s, 0.0);
            }
        }
    }

    #[test]
    fn gather_rows_picks_expected(a in arb_matrix(5, 3), idx in proptest::collection::vec(0usize..5, 1..8)) {
        let g = a.gather_rows(&idx);
        for (out_row, &src) in idx.iter().enumerate() {
            prop_assert_eq!(g.row(out_row), a.row(src));
        }
    }

    /// Banding across the worker pool must never change a single bit:
    /// run the parallelized kernels at 1/2/7 threads (threshold forced to
    /// zero so even these tiny shapes take the parallel path — including
    /// row counts smaller than the thread count) and compare exactly.
    #[test]
    fn parallel_kernels_bitwise_match_serial(
        rows in 1usize..9,
        k in 1usize..7,
        cols in 1usize..8,
        seed in 0u32..1000,
    ) {
        let salt = |i: u32| seed.wrapping_mul(31).wrapping_add(i);
        let cell = |rows: usize, cols: usize, s: u32| -> Tensor {
            let data: Vec<f32> = (0..rows * cols)
                .map(|i| {
                    let h = (i as u32).wrapping_mul(2654435761).wrapping_add(s);
                    if h % 4 == 0 { 0.0 } else { (h % 256) as f32 / 128.0 - 1.0 }
                })
                .collect();
            Tensor::from_vec(rows, cols, data).expect("length matches")
        };
        let a = cell(rows, k, salt(1));
        let a2 = cell(rows, k, salt(4));
        let b = cell(k, cols, salt(2));
        let s = CsrMatrix::<f32>::from_dense(&a);
        let x = cell(rows, cols, salt(3));

        let old_threshold = ahntp_par::par_threshold();
        let old_threads = ahntp_par::threads();
        ahntp_par::set_par_threshold(0);
        let run = || -> Vec<u32> {
            let mut bits = Vec::new();
            let mut push = |t: Tensor| bits.extend(t.as_slice().iter().map(|v| v.to_bits()));
            push(a.matmul(&b));
            push(a.transpose().t_matmul(&b));
            push(a.matmul_t(&b.transpose()));
            push(s.mul_dense(&b));
            push(s.t_mul_dense(&x));
            push(s.spmm(&CsrMatrix::<f32>::from_dense(&b)).to_dense());
            push(a.map(|v| (v * 1.3).exp()));
            push(a.zip(&a2, |p, q| p - 2.0 * q));
            push(a.row_sums());
            push(a.row_norms());
            push(a.softmax_rows());
            push(a.normalize_rows());
            bits
        };
        ahntp_par::set_threads(1);
        let serial = run();
        for t in [2usize, 7] {
            ahntp_par::set_threads(t);
            let par = run();
            prop_assert_eq!(&serial, &par, "kernels differ at {} threads", t);
        }
        ahntp_par::set_par_threshold(old_threshold);
        ahntp_par::set_threads(old_threads);
    }
}
